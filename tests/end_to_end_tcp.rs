//! Full-stack integration over real TCP sockets: server, two clients,
//! display locks, live refresh — the whole paper pipeline on a real
//! network transport.

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("displaydb-it-tcp").join(format!(
        "{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn tcp_display_refresh_end_to_end() {
    let catalog = Arc::new(nms_catalog());
    let (server, addr) = Server::spawn_tcp(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("refresh")),
        "127.0.0.1:0",
    )
    .unwrap();

    let viewer = DbClient::connect(
        Box::new(TcpChannel::connect(addr).unwrap()),
        ClientConfig::named("viewer"),
    )
    .unwrap();
    let updater = DbClient::connect(
        Box::new(TcpChannel::connect(addr).unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();

    // Create a link.
    let mut txn = updater.begin().unwrap();
    let link = txn
        .create(
            updater
                .new_object("Link")
                .unwrap()
                .with(&catalog, "Utilization", 0.1)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    // Viewer display over TCP.
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "tcp-map");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    // Update from the other client.
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.95))
        .unwrap();
    txn.commit().unwrap();

    let handled = display.wait_and_process(Duration::from_secs(10)).unwrap();
    assert!(handled >= 1, "no notification over TCP");
    assert_eq!(
        display.object(do_id).unwrap().attr("Utilization"),
        Some(&Value::Float(0.95))
    );
    assert!(server.core().stats().commits.get() >= 2);
}

#[test]
fn tcp_many_clients_share_one_server() {
    let catalog = Arc::new(nms_catalog());
    let (_server, addr) = Server::spawn_tcp(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("many")),
        "127.0.0.1:0",
    )
    .unwrap();

    // Seed an object.
    let seeder = DbClient::connect(
        Box::new(TcpChannel::connect(addr).unwrap()),
        ClientConfig::named("seeder"),
    )
    .unwrap();
    let mut txn = seeder.begin().unwrap();
    let node = txn
        .create(
            seeder
                .new_object("Node")
                .unwrap()
                .with(&catalog, "Name", "core-1")
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    // Six concurrent clients hammer reads and some writes.
    let mut handles = Vec::new();
    for i in 0..6u64 {
        let catalog = Arc::clone(&catalog);
        handles.push(std::thread::spawn(move || {
            let client = DbClient::connect(
                Box::new(TcpChannel::connect(addr).unwrap()),
                ClientConfig::named(format!("c{i}")),
            )
            .unwrap();
            for round in 0..20 {
                let obj = client.read(node.oid).unwrap();
                assert_eq!(
                    obj.get(&catalog, "Name").unwrap().as_str().unwrap(),
                    "core-1"
                );
                if i == 0 && round % 5 == 0 {
                    let mut txn = client.begin().unwrap();
                    txn.update(node.oid, |o| {
                        o.set(&catalog, "Notes", format!("round {round}"))
                    })
                    .unwrap();
                    txn.commit().unwrap();
                }
            }
            client.cache().stats()
        }));
    }
    for h in handles {
        let stats = h.join().unwrap();
        // Clients should be serving most reads from their caches.
        assert!(stats.hits > 0, "no cache hits at all");
    }
}
