//! Failure injection: dead clients, dying agents, vanished servers.
//!
//! A multi-user interactive system spends its life partially broken —
//! someone's workstation is hung, a window was closed mid-update, the
//! network dropped. These tests pin down the degraded behaviours.

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use displaydb::server::proto::{Envelope, Request, Response};
use displaydb::wire::Channel;
use displaydb::wire::{Decode, Encode};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("displaydb-it-failure")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A client that completes the handshake and a read, then goes silent:
/// it never acknowledges callbacks (a hung workstation).
struct FrozenClient {
    /// Held open so the server keeps the session (and its copy-table
    /// entries) alive.
    _channel: Box<dyn Channel>,
}

impl FrozenClient {
    fn connect_and_cache(hub: &LocalHub, oid: Oid) -> Self {
        let channel: Box<dyn Channel> = Box::new(hub.connect().unwrap());
        channel
            .send(
                Envelope::Req(
                    1,
                    Request::Hello {
                        name: "frozen".into(),
                        resume: None,
                    },
                )
                .encode_to_bytes(),
            )
            .unwrap();
        // Consume the hello ack.
        let frame = channel.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            Envelope::decode_from_bytes(&frame).unwrap(),
            Envelope::Resp(1, Response::HelloAck { .. })
        ));
        // Read the object so the server registers a copy.
        channel
            .send(Envelope::Req(2, Request::Read { txn: None, oid }).encode_to_bytes())
            .unwrap();
        let frame = channel.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            Envelope::decode_from_bytes(&frame).unwrap(),
            Envelope::Resp(2, Response::Object { .. })
        ));
        // From here on: silence. Callbacks will go unacknowledged.
        Self { _channel: channel }
    }
}

#[test]
fn dead_client_delays_but_does_not_block_commits() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp("frozen"));
    config.callback_timeout = Duration::from_millis(300);
    let _server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();

    let writer = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("writer"),
    )
    .unwrap();
    let mut txn = writer.begin().unwrap();
    let link = txn.create(writer.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let _frozen = FrozenClient::connect_and_cache(&hub, link.oid);

    // The writer's update must still commit: the frozen client's callback
    // times out after callback_timeout and the server moves on.
    let started = Instant::now();
    let mut txn = writer.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.9))
        .unwrap();
    txn.commit().unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "commit blocked on a dead client: {elapsed:?}"
    );
    // And the state is durable and readable.
    assert_eq!(
        writer
            .read_fresh(link.oid)
            .unwrap()
            .get(&catalog, "Utilization")
            .unwrap()
            .as_float()
            .unwrap(),
        0.9
    );
}

#[test]
fn dlm_agent_death_degrades_gracefully() {
    let catalog = Arc::new(nms_catalog());
    let db_hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("agent-death")),
        &db_hub,
    )
    .unwrap();
    let dlm_hub = LocalHub::new();
    let mut agent = DlmAgent::spawn(
        Arc::new(DlmCore::new(DlmConfig::default())),
        Box::new(dlm_hub.clone()),
    );

    let viewer = DbClient::connect_with_agent(
        Box::new(db_hub.connect().unwrap()),
        Box::new(dlm_hub.connect().unwrap()),
        ClientConfig::named("viewer"),
    )
    .unwrap();
    let mut txn = viewer.begin().unwrap();
    let link = txn.create(viewer.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "v");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    // The agent dies.
    agent.shutdown();
    drop(agent);
    std::thread::sleep(Duration::from_millis(100));

    // The display keeps serving its pinned state — the display cache does
    // not depend on the notification path.
    assert!(display.object(do_id).is_some());
    // An update transaction must surface a clean error when it tries to
    // report its intent/commit to the dead agent (the caller can retry
    // after reconnecting) — and the abort path must leave the database
    // consistent and reachable.
    let mut txn = viewer.begin().unwrap();
    let result = txn
        .update(link.oid, |o| o.set(&catalog, "Utilization", 0.5))
        .and_then(|()| txn.commit());
    assert!(
        matches!(result, Err(DbError::Disconnected)),
        "expected Disconnected, got {result:?}"
    );
    let current = viewer
        .read_fresh(link.oid)
        .unwrap()
        .get(&catalog, "Utilization")
        .unwrap()
        .as_float()
        .unwrap();
    assert_eq!(current, 0.0, "aborted update must not be visible");
}

#[test]
fn server_death_surfaces_clean_errors() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("server-death")),
        &hub,
    )
    .unwrap();
    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig {
            name: "c".into(),
            cache_bytes: 1 << 20,
            call_timeout: Duration::from_millis(500),
            disk_cache: None,
        },
    )
    .unwrap();
    let mut txn = client.begin().unwrap();
    let link = txn.create(client.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    // Cached reads still work after the server goes away...
    drop(server);
    client.close(); // sever the connection like a broken network would
    assert!(client.cache().contains(link.oid));
    assert!(
        client.read(link.oid).is_ok(),
        "cache hit should not need the server"
    );

    // ...but server-bound operations fail with an error, not a hang.
    let started = Instant::now();
    let err = client.read_fresh(link.oid).unwrap_err();
    assert!(
        matches!(err, DbError::Disconnected | DbError::Timeout(_)),
        "unexpected error: {err:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(2));
    let err = client.begin().expect_err("begin must fail");
    assert!(matches!(err, DbError::Disconnected | DbError::Timeout(_)));
}

#[test]
fn monitor_survives_object_deletion() {
    use displaydb::nms::{MonitorConfig, MonitorProcess, Topology, TopologyConfig};
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("monitor-delete")),
        &hub,
    )
    .unwrap();
    let gen =
        DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen")).unwrap();
    let topo = Topology::generate(
        &gen,
        &TopologyConfig {
            nodes: 4,
            links: 6,
            paths: 0,
            path_len: 0,
            seed: 9,
        },
    )
    .unwrap();
    let monitor_client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("monitor"),
    )
    .unwrap();
    let monitor = MonitorProcess::spawn(
        monitor_client,
        topo.links.clone(),
        MonitorConfig {
            rate_per_sec: 200.0,
            ..MonitorConfig::default()
        },
    );
    // Delete half the links out from under it.
    std::thread::sleep(Duration::from_millis(100));
    let mut txn = gen.begin().unwrap();
    for &link in topo.links.iter().step_by(2) {
        txn.delete(link).unwrap();
    }
    txn.commit().unwrap();

    // The monitor keeps committing on the survivors (aborts on the
    // deleted ones are counted, not fatal).
    let commits_after_delete = monitor.commits();
    let deadline = Instant::now() + Duration::from_secs(5);
    while monitor.commits() < commits_after_delete + 10 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        monitor.commits() >= commits_after_delete + 10,
        "monitor stalled after deletions"
    );
    assert!(monitor.aborts() > 0, "expected aborts on deleted targets");
    monitor.stop();
}

// ---------------------------------------------------------------------------
// Supervision & session recovery (DESIGN.md § 8)
// ---------------------------------------------------------------------------

fn short_timeout(name: &str) -> ClientConfig {
    ClientConfig {
        name: name.into(),
        cache_bytes: 1 << 20,
        call_timeout: Duration::from_millis(300),
        disk_cache: None,
    }
}

fn hub_factory(slot: &Arc<std::sync::Mutex<LocalHub>>) -> ChannelFactory {
    let slot = Arc::clone(slot);
    Arc::new(move || {
        let channel = slot.lock().unwrap().connect()?;
        Ok(Box::new(channel) as Box<dyn Channel>)
    })
}

/// Server restart: the supervisor reconnects automatically; the restarted
/// server recovers committed state from the WAL; the resume token is
/// refused (new incarnation) so the client gets a fresh session whose
/// stale list covers its whole cached manifest.
#[test]
fn supervised_client_rides_through_server_restart() {
    let catalog = Arc::new(nms_catalog());
    let dir = tmp("restart-resume");
    let durable = |dir: &std::path::Path| {
        let mut c = ServerConfig::new(dir);
        c.sync_commits = true;
        c
    };
    let hub_slot = Arc::new(std::sync::Mutex::new(LocalHub::new()));
    let hub0 = hub_slot.lock().unwrap().clone();
    let mut server = Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub0).unwrap();

    let client = DbClient::connect_supervised(
        hub_factory(&hub_slot),
        ReconnectPolicy::fast_test(),
        short_timeout("survivor"),
    )
    .unwrap();
    let mut txn = client.begin().unwrap();
    let link = txn.create(client.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();
    let mut txn = client.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.7))
        .unwrap();
    txn.commit().unwrap();
    assert!(client.cache().contains(link.oid));

    // Kill the server, then restart it over the same data directory on a
    // fresh hub the factory will find.
    let hub2 = LocalHub::new();
    *hub_slot.lock().unwrap() = hub2.clone();
    server.shutdown();
    drop(server);
    let _server2 = Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub2).unwrap();

    // The supervisor must bring the client back without any help.
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.ping().is_err() {
        assert!(
            Instant::now() < deadline,
            "client did not reconnect after server restart"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // WAL recovery: the pre-restart commit is durable and readable.
    assert_eq!(
        client
            .read_fresh(link.oid)
            .unwrap()
            .get(&catalog, "Utilization")
            .unwrap()
            .as_float()
            .unwrap(),
        0.7
    );
    // The restarted server refused the old-incarnation token: fresh
    // session, and every cached copy was conservatively reported stale.
    let recovery = &client.conn_stats().recovery;
    assert!(recovery.reconnect_attempts.get() >= 1);
    assert!(recovery.reconnects_ok.get() >= 1);
    assert_eq!(
        recovery.sessions_resumed.get(),
        0,
        "restart must not resume"
    );
    assert_eq!(client.session().epoch, 0);
    assert!(recovery.resync_objects.get() >= 1, "manifest must go stale");
    // And normal work proceeds on the new session.
    let mut txn = client.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.9))
        .unwrap();
    txn.commit().unwrap();
}

/// DLM agent restart: the agent supervisor reconnects, the DLC replays
/// every live display-lock registration with the new agent, and post-gap
/// update notifications flow again.
#[test]
fn dlm_agent_restart_relocks_and_notifies() {
    use displaydb::viz::Color;
    let catalog = Arc::new(nms_catalog());
    let db_hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("agent-restart")),
        &db_hub,
    )
    .unwrap();
    let db_slot = Arc::new(std::sync::Mutex::new(db_hub));
    let dlm_slot = Arc::new(std::sync::Mutex::new(LocalHub::new()));
    let dlm_hub0 = dlm_slot.lock().unwrap().clone();
    let mut agent = DlmAgent::spawn(
        Arc::new(DlmCore::new(DlmConfig::default())),
        Box::new(dlm_hub0),
    );

    let viewer = DbClient::connect_with_agent_supervised(
        hub_factory(&db_slot),
        hub_factory(&dlm_slot),
        ReconnectPolicy::fast_test(),
        short_timeout("viewer"),
    )
    .unwrap();
    let updater = DbClient::connect_with_agent_supervised(
        hub_factory(&db_slot),
        hub_factory(&dlm_slot),
        ReconnectPolicy::fast_test(),
        short_timeout("updater"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "map");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    // The agent dies and is replaced on a fresh hub.
    let dlm_hub2 = LocalHub::new();
    *dlm_slot.lock().unwrap() = dlm_hub2.clone();
    agent.shutdown();
    drop(agent);
    let agent2 = DlmAgent::spawn(
        Arc::new(DlmCore::new(DlmConfig::default())),
        Box::new(dlm_hub2),
    );

    // The DLC must re-register the viewer's display lock with the new
    // agent without any application involvement.
    let deadline = Instant::now() + Duration::from_secs(10);
    while agent2.core().locked_objects() < 1 {
        assert!(
            Instant::now() < deadline,
            "display lock was not re-registered after agent restart"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Drain the degradation/restore cycle: the pinned DO kept serving,
    // was marked stale, and the marks cleared after resync.
    while display
        .wait_and_process(Duration::from_millis(300))
        .unwrap()
        > 0
    {}
    assert!(display.object(do_id).is_some(), "DO must keep serving");
    assert!(
        display.stats().stale_marks.get() >= 1,
        "expected stale mark"
    );
    assert_eq!(display.stale_count(), 0, "restore must clear stale marks");
    assert!(viewer.conn_stats().recovery.reconnects_ok.get() >= 1);

    // Post-gap notification: an update committed after the restart must
    // reach the display through the new agent. The updater's own agent
    // connection also recovers under supervision, so retry until its
    // commit path is back.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut txn = updater.begin().unwrap();
        let result = txn
            .update(link.oid, |o| o.set(&catalog, "Utilization", 0.95))
            .and_then(|()| txn.commit());
        match result {
            Ok(()) => break,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => panic!("updater never recovered: {e:?}"),
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        display
            .wait_and_process(Duration::from_millis(200))
            .unwrap();
        let color = display.object(do_id).unwrap();
        if color.attr("Color") == Some(&Value::Int(i64::from(Color::RED.to_u32()))) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "post-gap notification never refreshed the display"
        );
    }
}

/// Network outage with a live server: timeouts during the partition
/// window, stale-marked serving while disconnected, then a *resumed*
/// session (same identity, epoch + 1) whose resync refreshes exactly
/// what changed during the gap. Pinned to the legacy (no update log)
/// protocol so the resync-on-resume path keeps coverage — with the
/// log on, a resume becomes a cursor replay instead, which
/// tests/replay_recovery.rs covers.
#[test]
fn partition_serves_stale_then_resumes_and_resyncs() {
    use displaydb::viz::Color;
    use std::sync::atomic::{AtomicBool, Ordering};
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp("partition"));
    config.dlm.log = displaydb::common::UpdateLogConfig::disabled();
    let _server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();

    // First connection goes through a fault-injecting wrapper; reconnect
    // attempts are held off while `gate` is closed, then connect clean.
    let plan = Arc::new(FaultPlan::new());
    let first = Arc::new(AtomicBool::new(true));
    let gate = Arc::new(AtomicBool::new(false));
    let factory: ChannelFactory = {
        let hub = hub.clone();
        let plan = Arc::clone(&plan);
        let first = Arc::clone(&first);
        let gate = Arc::clone(&gate);
        Arc::new(move || {
            if first.swap(false, Ordering::SeqCst) {
                let inner: Box<dyn Channel> = Box::new(hub.connect()?);
                return Ok(
                    Box::new(FaultyChannel::wrap(inner, Arc::clone(&plan))) as Box<dyn Channel>
                );
            }
            if !gate.load(Ordering::SeqCst) {
                return Err(DbError::Disconnected);
            }
            Ok(Box::new(hub.connect()?) as Box<dyn Channel>)
        })
    };
    let client = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        short_timeout("operator"),
    )
    .unwrap();
    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();

    let mut txn = client.begin().unwrap();
    let link = txn.create(client.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&client), Arc::clone(&cache), "map");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    let epoch_before = client.session().epoch;

    // Partition window: frames vanish but the channel stays "up" — RPCs
    // time out rather than hang, and the pinned DO keeps serving.
    plan.partition();
    let err = client.read_fresh(link.oid).unwrap_err();
    assert!(
        matches!(err, DbError::Timeout(_) | DbError::Disconnected),
        "unexpected {err:?}"
    );
    assert!(display.object(do_id).is_some());
    plan.heal();

    // Now the link actually dies. With the gate closed the supervisor
    // keeps retrying, and the display serves its pinned DO marked stale.
    plan.kill_now();
    let deadline = Instant::now() + Duration::from_secs(5);
    while display.stale_count() == 0 {
        display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        assert!(Instant::now() < deadline, "DO was never marked stale");
    }
    assert!(display.object(do_id).is_some(), "degraded DO must serve");
    let err = client.read_fresh(link.oid).unwrap_err();
    assert!(matches!(err, DbError::Timeout(_) | DbError::Disconnected));

    // Meanwhile the rest of the world moves on.
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.95))
        .unwrap();
    txn.commit().unwrap();

    // Let the supervisor through: the session resumes (same identity,
    // epoch + 1), the changed object is reported stale and refreshed,
    // and the stale marks clear.
    gate.store(true, Ordering::SeqCst);
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.ping().is_err() {
        assert!(Instant::now() < deadline, "client never reconnected");
        std::thread::sleep(Duration::from_millis(25));
    }
    let recovery = &client.conn_stats().recovery;
    assert!(recovery.reconnect_attempts.get() >= 1);
    assert_eq!(recovery.sessions_resumed.get(), 1, "session must resume");
    assert_eq!(client.session().epoch, epoch_before + 1);
    assert!(recovery.resync_objects.get() >= 1);
    assert!(recovery.stale_marks.get() >= 1);

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        display
            .wait_and_process(Duration::from_millis(200))
            .unwrap();
        let obj = display.object(do_id).unwrap();
        if !obj.is_stale() && obj.attr("Color") == Some(&Value::Int(i64::from(Color::RED.to_u32())))
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "resync never refreshed the display: {:?}",
            display.object(do_id).unwrap().attrs
        );
    }
}
