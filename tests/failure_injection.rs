//! Failure injection: dead clients, dying agents, vanished servers.
//!
//! A multi-user interactive system spends its life partially broken —
//! someone's workstation is hung, a window was closed mid-update, the
//! network dropped. These tests pin down the degraded behaviours.

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use displaydb::server::proto::{Envelope, Request, Response};
use displaydb::wire::Channel;
use displaydb::wire::{Decode, Encode};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("displaydb-it-failure")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A client that completes the handshake and a read, then goes silent:
/// it never acknowledges callbacks (a hung workstation).
struct FrozenClient {
    /// Held open so the server keeps the session (and its copy-table
    /// entries) alive.
    _channel: Box<dyn Channel>,
}

impl FrozenClient {
    fn connect_and_cache(hub: &LocalHub, oid: Oid) -> Self {
        let channel: Box<dyn Channel> = Box::new(hub.connect().unwrap());
        channel
            .send(
                Envelope::Req(
                    1,
                    Request::Hello {
                        name: "frozen".into(),
                    },
                )
                .encode_to_bytes(),
            )
            .unwrap();
        // Consume the hello ack.
        let frame = channel.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            Envelope::decode_from_bytes(&frame).unwrap(),
            Envelope::Resp(1, Response::HelloAck { .. })
        ));
        // Read the object so the server registers a copy.
        channel
            .send(Envelope::Req(2, Request::Read { txn: None, oid }).encode_to_bytes())
            .unwrap();
        let frame = channel.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(matches!(
            Envelope::decode_from_bytes(&frame).unwrap(),
            Envelope::Resp(2, Response::Object { .. })
        ));
        // From here on: silence. Callbacks will go unacknowledged.
        Self { _channel: channel }
    }
}

#[test]
fn dead_client_delays_but_does_not_block_commits() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp("frozen"));
    config.callback_timeout = Duration::from_millis(300);
    let _server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();

    let writer = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("writer"),
    )
    .unwrap();
    let mut txn = writer.begin().unwrap();
    let link = txn.create(writer.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let _frozen = FrozenClient::connect_and_cache(&hub, link.oid);

    // The writer's update must still commit: the frozen client's callback
    // times out after callback_timeout and the server moves on.
    let started = Instant::now();
    let mut txn = writer.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.9))
        .unwrap();
    txn.commit().unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(3),
        "commit blocked on a dead client: {elapsed:?}"
    );
    // And the state is durable and readable.
    assert_eq!(
        writer
            .read_fresh(link.oid)
            .unwrap()
            .get(&catalog, "Utilization")
            .unwrap()
            .as_float()
            .unwrap(),
        0.9
    );
}

#[test]
fn dlm_agent_death_degrades_gracefully() {
    let catalog = Arc::new(nms_catalog());
    let db_hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("agent-death")),
        &db_hub,
    )
    .unwrap();
    let dlm_hub = LocalHub::new();
    let mut agent = DlmAgent::spawn(
        Arc::new(DlmCore::new(DlmConfig::default())),
        Box::new(dlm_hub.clone()),
    );

    let viewer = DbClient::connect_with_agent(
        Box::new(db_hub.connect().unwrap()),
        Box::new(dlm_hub.connect().unwrap()),
        ClientConfig::named("viewer"),
    )
    .unwrap();
    let mut txn = viewer.begin().unwrap();
    let link = txn.create(viewer.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "v");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    // The agent dies.
    agent.shutdown();
    drop(agent);
    std::thread::sleep(Duration::from_millis(100));

    // The display keeps serving its pinned state — the display cache does
    // not depend on the notification path.
    assert!(display.object(do_id).is_some());
    // An update transaction must surface a clean error when it tries to
    // report its intent/commit to the dead agent (the caller can retry
    // after reconnecting) — and the abort path must leave the database
    // consistent and reachable.
    let mut txn = viewer.begin().unwrap();
    let result = txn
        .update(link.oid, |o| o.set(&catalog, "Utilization", 0.5))
        .and_then(|()| txn.commit());
    assert!(
        matches!(result, Err(DbError::Disconnected)),
        "expected Disconnected, got {result:?}"
    );
    let current = viewer
        .read_fresh(link.oid)
        .unwrap()
        .get(&catalog, "Utilization")
        .unwrap()
        .as_float()
        .unwrap();
    assert_eq!(current, 0.0, "aborted update must not be visible");
}

#[test]
fn server_death_surfaces_clean_errors() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("server-death")),
        &hub,
    )
    .unwrap();
    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig {
            name: "c".into(),
            cache_bytes: 1 << 20,
            call_timeout: Duration::from_millis(500),
            disk_cache: None,
        },
    )
    .unwrap();
    let mut txn = client.begin().unwrap();
    let link = txn.create(client.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    // Cached reads still work after the server goes away...
    drop(server);
    client.close(); // sever the connection like a broken network would
    assert!(client.cache().contains(link.oid));
    assert!(
        client.read(link.oid).is_ok(),
        "cache hit should not need the server"
    );

    // ...but server-bound operations fail with an error, not a hang.
    let started = Instant::now();
    let err = client.read_fresh(link.oid).unwrap_err();
    assert!(
        matches!(err, DbError::Disconnected | DbError::Timeout(_)),
        "unexpected error: {err:?}"
    );
    assert!(started.elapsed() < Duration::from_secs(2));
    let err = client.begin().expect_err("begin must fail");
    assert!(matches!(err, DbError::Disconnected | DbError::Timeout(_)));
}

#[test]
fn monitor_survives_object_deletion() {
    use displaydb::nms::{MonitorConfig, MonitorProcess, Topology, TopologyConfig};
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("monitor-delete")),
        &hub,
    )
    .unwrap();
    let gen =
        DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen")).unwrap();
    let topo = Topology::generate(
        &gen,
        &TopologyConfig {
            nodes: 4,
            links: 6,
            paths: 0,
            path_len: 0,
            seed: 9,
        },
    )
    .unwrap();
    let monitor_client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("monitor"),
    )
    .unwrap();
    let monitor = MonitorProcess::spawn(
        monitor_client,
        topo.links.clone(),
        MonitorConfig {
            rate_per_sec: 200.0,
            ..MonitorConfig::default()
        },
    );
    // Delete half the links out from under it.
    std::thread::sleep(Duration::from_millis(100));
    let mut txn = gen.begin().unwrap();
    for &link in topo.links.iter().step_by(2) {
        txn.delete(link).unwrap();
    }
    txn.commit().unwrap();

    // The monitor keeps committing on the survivors (aborts on the
    // deleted ones are counted, not fatal).
    let commits_after_delete = monitor.commits();
    let deadline = Instant::now() + Duration::from_secs(5);
    while monitor.commits() < commits_after_delete + 10 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        monitor.commits() >= commits_after_delete + 10,
        "monitor stalled after deletions"
    );
    assert!(monitor.aborts() > 0, "expected aborts on deleted targets");
    monitor.stop();
}
