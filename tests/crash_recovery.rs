//! Crash-recovery integration: committed work survives a server
//! restart; uncommitted work does not.

mod support;

use displaydb::nms::{nms_catalog, Topology, TopologyConfig};
use displaydb::prelude::*;
use std::sync::Arc;
use support::TempDir;

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    let mut c = ServerConfig::new(dir);
    c.sync_commits = true;
    c
}

#[test]
fn committed_topology_survives_restart() {
    let catalog = Arc::new(nms_catalog());
    let tmp = TempDir::new("topology");
    let dir = tmp.path().to_path_buf();
    let topo;
    {
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
        let client =
            DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen"))
                .unwrap();
        topo = Topology::generate(
            &client,
            &TopologyConfig {
                nodes: 10,
                links: 15,
                paths: 2,
                path_len: 3,
                seed: 77,
            },
        )
        .unwrap();
        // Simulated crash: the server is dropped without checkpointing.
    }
    let hub = LocalHub::new();
    let server = Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
    assert_eq!(
        server.core().store().object_count(),
        10 + 15 + 2,
        "lost objects across restart"
    );
    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("post-crash"),
    )
    .unwrap();
    // Every link readable with intact references.
    for (i, &link) in topo.links.iter().enumerate() {
        let obj = client.read(link).unwrap();
        let (a, _) = topo.endpoints[i];
        assert_eq!(
            obj.get(&catalog, "Src").unwrap().as_ref_oid().unwrap(),
            topo.nodes[a]
        );
    }
    // New OIDs must not collide with recovered ones.
    let mut txn = client.begin().unwrap();
    let fresh = txn.create(client.new_object("Node").unwrap()).unwrap();
    txn.commit().unwrap();
    assert!(!topo.nodes.contains(&fresh.oid));
    assert!(!topo.links.contains(&fresh.oid));
}

#[test]
fn uncommitted_transaction_is_lost_on_restart() {
    let catalog = Arc::new(nms_catalog());
    let tmp = TempDir::new("uncommitted");
    let dir = tmp.path().to_path_buf();
    let committed_oid;
    {
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
        let client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("writer"),
        )
        .unwrap();
        let mut txn = client.begin().unwrap();
        committed_oid = txn.create(client.new_object("Node").unwrap()).unwrap().oid;
        txn.commit().unwrap();
        // Second transaction never commits before the "crash".
        let mut open_txn = client.begin().unwrap();
        let _ = open_txn.create(client.new_object("Node").unwrap()).unwrap();
        std::mem::forget(open_txn); // don't even send the abort
    }
    let hub = LocalHub::new();
    let server = Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
    assert_eq!(server.core().store().object_count(), 1);
    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("reader"),
    )
    .unwrap();
    assert!(client.read(committed_oid).is_ok());
}

#[test]
fn checkpoint_then_more_commits_then_restart() {
    let catalog = Arc::new(nms_catalog());
    let tmp = TempDir::new("checkpoint");
    let dir = tmp.path().to_path_buf();
    let mut oids = Vec::new();
    {
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
        let client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("writer"),
        )
        .unwrap();
        for batch in 0..3 {
            let mut txn = client.begin().unwrap();
            for i in 0..10 {
                let obj = txn
                    .create(
                        client
                            .new_object("Node")
                            .unwrap()
                            .with(&catalog, "Name", format!("n-{batch}-{i}"))
                            .unwrap(),
                    )
                    .unwrap();
                oids.push(obj.oid);
            }
            txn.commit().unwrap();
            if batch == 1 {
                client.checkpoint().unwrap();
            }
        }
    }
    let hub = LocalHub::new();
    let server = Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
    assert_eq!(server.core().store().object_count(), 30);
    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("reader"),
    )
    .unwrap();
    for oid in oids {
        client.read(oid).unwrap();
    }
}

#[test]
fn updates_and_deletes_replay_in_order() {
    let catalog = Arc::new(nms_catalog());
    let tmp = TempDir::new("ordering");
    let dir = tmp.path().to_path_buf();
    let (kept, deleted);
    {
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
        let client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named("writer"),
        )
        .unwrap();
        let mut txn = client.begin().unwrap();
        kept = txn.create(client.new_object("Link").unwrap()).unwrap().oid;
        deleted = txn.create(client.new_object("Link").unwrap()).unwrap().oid;
        txn.commit().unwrap();
        // Update kept three times; delete the other.
        for util in [0.2, 0.5, 0.8] {
            let mut txn = client.begin().unwrap();
            txn.update(kept, |o| o.set(&catalog, "Utilization", util))
                .unwrap();
            txn.commit().unwrap();
        }
        let mut txn = client.begin().unwrap();
        txn.delete(deleted).unwrap();
        txn.commit().unwrap();
    }
    let hub = LocalHub::new();
    let _server = Server::spawn_local(Arc::clone(&catalog), durable_config(&dir), &hub).unwrap();
    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("reader"),
    )
    .unwrap();
    let obj = client.read(kept).unwrap();
    assert_eq!(
        obj.get(&catalog, "Utilization")
            .unwrap()
            .as_float()
            .unwrap(),
        0.8,
        "last committed update must win"
    );
    assert!(client.read(deleted).is_err(), "deleted object came back");
}
