//! Deterministic crash-point matrix over the durable update log
//! (DESIGN.md § 14): for every named point on the spill path — torn
//! append, unsynced tail, durable-but-unacknowledged record, killed
//! segment rotation — crash there during a live commit, hard-kill the
//! server, restart over the same data directory, and verify the
//! recovery invariants:
//!
//! - **no lost committed update**: the commit whose spill crashed is in
//!   the WAL, so its data survives the restart and reaches a display;
//! - **no duplicate apply**: a reconnecting viewer converges to exactly
//!   the last committed value, whichever recovery path it takes;
//! - **cursor monotonicity**: the gap detector stays silent across the
//!   incarnation change.
//!
//! The crash-point harness is process-global state, so this matrix gets
//! an integration-test binary of its own (one `#[test]`, points run in
//! sequence) — arming here can never bleed into another binary's
//! durable-log traffic.

mod support;

use displaydb::common::crashpoint::{self, CrashGuard, CrashPoint};
use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use displaydb::wire::Channel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use support::TempDir;

type HubSlot = Arc<Mutex<LocalHub>>;

fn gated_slot_factory(slot: &HubSlot) -> (ChannelFactory, Arc<AtomicBool>) {
    let gate = Arc::new(AtomicBool::new(true));
    let factory: ChannelFactory = {
        let slot = Arc::clone(slot);
        let gate = Arc::clone(&gate);
        Arc::new(move || {
            if !gate.load(Ordering::SeqCst) {
                return Err(DbError::Disconnected);
            }
            let channel = slot.lock().unwrap().connect()?;
            Ok(Box::new(channel) as Box<dyn Channel>)
        })
    };
    (factory, gate)
}

fn await_ping(client: &DbClient) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.ping().is_err() {
        assert!(Instant::now() < deadline, "client never reconnected");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn await_value(display: &Display, id: DoId, want: f64, point: CrashPoint) {
    let start = Instant::now();
    loop {
        display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        if display.object(id).unwrap().attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(
            start.elapsed() < Duration::from_secs(15),
            "[{}] display never reached {want}: {:?}",
            point.name(),
            display.object(id).unwrap().attrs
        );
    }
}

#[test]
fn crash_point_matrix_restart_recovers_without_loss_or_duplicates() {
    let catalog = Arc::new(nms_catalog());
    for point in CrashPoint::ALL {
        let guard = CrashGuard::new();
        let tmp = TempDir::new(&format!("matrix-{}", point.name()));
        let config = |dir: &std::path::Path| {
            let mut c = ServerConfig::new(dir);
            c.sync_commits = true;
            c.durable_log = DurableLogConfig {
                sync_every: 1,
                // MidRotation only fires inside a rotation; a one-byte
                // segment target rotates on every append so the armed
                // commit reaches the point deterministically.
                segment_bytes: if point == CrashPoint::MidRotation {
                    1
                } else {
                    256 << 10
                },
                ..DurableLogConfig::enabled()
            };
            c
        };
        let hub_slot: HubSlot = Arc::new(Mutex::new(LocalHub::new()));
        let hub0 = hub_slot.lock().unwrap().clone();
        let mut server =
            Server::spawn_local(Arc::clone(&catalog), config(tmp.path()), &hub0).unwrap();

        let updater = DbClient::connect(
            Box::new(hub0.connect().unwrap()),
            ClientConfig::named("updater"),
        )
        .unwrap();
        let (factory, gate) = gated_slot_factory(&hub_slot);
        let viewer = DbClient::connect_supervised(
            factory,
            ReconnectPolicy::fast_test(),
            ClientConfig {
                name: format!("viewer-{}", point.name()),
                cache_bytes: 1 << 20,
                call_timeout: Duration::from_millis(300),
                disk_cache: None,
            },
        )
        .unwrap();

        // Clean history first, so the crash lands mid-stream rather
        // than on the log's first record.
        let mut txn = updater.begin().unwrap();
        let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
        txn.commit().unwrap();
        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "map");
        let id = display
            .add_object(&width_coded_link("Utilization"), vec![link.oid])
            .unwrap();
        for v in [0.1, 0.2] {
            let mut txn = updater.begin().unwrap();
            txn.update(link.oid, |o| o.set(&catalog, "Utilization", v))
                .unwrap();
            txn.commit().unwrap();
        }
        await_value(&display, id, 0.2, point);

        // Arm, then commit: the spill crashes at the point, the commit
        // itself still succeeds (WAL first, spill containment second),
        // and the unlogged fan-out keeps live viewers converging.
        let fired_before = crashpoint::fired(point);
        crashpoint::arm(point);
        let mut txn = updater.begin().unwrap();
        txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.3))
            .unwrap();
        txn.commit().unwrap_or_else(|e| {
            panic!("[{}] commit must survive a spill crash: {e}", point.name())
        });
        await_value(&display, id, 0.3, point);
        assert_eq!(
            crashpoint::fired(point),
            fired_before + 1,
            "[{}] the armed point must fire exactly once",
            point.name()
        );

        // Hard kill; restart over the partial on-disk state the crash
        // left behind.
        gate.store(false, Ordering::SeqCst);
        let hub2 = LocalHub::new();
        *hub_slot.lock().unwrap() = hub2.clone();
        server.hard_kill();
        drop(server);
        let server2 = Server::spawn_local(Arc::clone(&catalog), config(tmp.path()), &hub2)
            .unwrap_or_else(|e| panic!("[{}] restart must recover: {e}", point.name()));

        // No lost committed update: 0.3 committed before the kill.
        let reader = DbClient::connect(
            Box::new(hub2.connect().unwrap()),
            ClientConfig::named("reader"),
        )
        .unwrap();
        let obj = reader.read(link.oid).unwrap();
        assert_eq!(
            obj.get(&catalog, "Utilization")
                .unwrap()
                .as_float()
                .unwrap(),
            0.3,
            "[{}] committed update lost across the crash",
            point.name()
        );
        assert!(
            server2.core().dlm_recovery().is_some(),
            "[{}] the durable log must come back",
            point.name()
        );

        // A commit the viewer missed, then reconnect: whichever path
        // recovery takes (replay when the surviving window covers the
        // cursor, stale-set resync when the crash surrendered it), the
        // display must land on exactly the last committed value with a
        // silent gap detector — no duplicate, no loss, no stuck replay.
        let mut txn = reader.begin().unwrap();
        txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.4))
            .unwrap();
        txn.commit().unwrap();
        gate.store(true, Ordering::SeqCst);
        await_ping(&viewer);
        await_value(&display, id, 0.4, point);
        assert_eq!(
            viewer.dlc().stats().cursor_gaps.get(),
            0,
            "[{}] cursor must stay monotone across incarnations",
            point.name()
        );

        // The post-restart log must keep accepting appends (head moved
        // past whatever the recovery scan found).
        let head = server2.core().dlm().update_log().head();
        assert!(
            head >= 1,
            "[{}] post-restart appends must land in the log",
            point.name()
        );
        drop(server2);
        drop(guard);
    }
}
