//! Cache-consistency integration: callback invalidation guarantees and
//! display-cache pinning under database-cache pressure.

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("displaydb-it-consistency")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn cached_reads_are_never_stale_after_commit_ack() {
    // With synchronous callbacks (the default), once an updater's commit
    // returns, *no* other client's cache still holds the old state.
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("rowa")), &hub).unwrap();
    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let readers: Vec<Arc<DbClient>> = (0..4)
        .map(|i| {
            DbClient::connect(
                Box::new(hub.connect().unwrap()),
                ClientConfig::named(format!("reader-{i}")),
            )
            .unwrap()
        })
        .collect();

    let mut txn = updater.begin().unwrap();
    let link = txn
        .create(
            updater
                .new_object("Link")
                .unwrap()
                .with(&catalog, "Utilization", 0.0)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    for round in 1..=20 {
        // All readers cache the current state.
        for r in &readers {
            r.read(link.oid).unwrap();
        }
        // Update.
        let target = f64::from(round) / 20.0;
        let mut txn = updater.begin().unwrap();
        txn.update(link.oid, |o| o.set(&catalog, "Utilization", target))
            .unwrap();
        txn.commit().unwrap();
        // Immediately after commit returns, every reader must see the
        // new value (their stale copies were called back synchronously).
        for r in &readers {
            let seen = r
                .read(link.oid)
                .unwrap()
                .get(&catalog, "Utilization")
                .unwrap()
                .as_float()
                .unwrap();
            assert!(
                (seen - target).abs() < 1e-9,
                "round {round}: reader saw stale {seen}, expected {target}"
            );
        }
    }
}

#[test]
fn display_cache_pins_survive_database_cache_thrash() {
    // § 3.2: the display cache is application-managed; database-cache
    // evictions (tiny capacity + a scan of unrelated objects) must not
    // touch pinned display objects.
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("pin")), &hub).unwrap();
    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig {
            name: "tiny-cache".into(),
            cache_bytes: 4 * 1024, // tiny database cache
            call_timeout: Duration::from_secs(30),
            disk_cache: None,
        },
    )
    .unwrap();

    // One watched link + 200 unrelated nodes.
    let mut txn = client.begin().unwrap();
    let link = txn
        .create(
            client
                .new_object("Link")
                .unwrap()
                .with(&catalog, "Utilization", 0.5)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();
    let mut noise = Vec::new();
    let mut txn = client.begin().unwrap();
    for i in 0..200 {
        noise.push(
            txn.create(
                client
                    .new_object("Node")
                    .unwrap()
                    .with(&catalog, "Name", format!("noise-{i}"))
                    .unwrap()
                    .with(&catalog, "Notes", "x".repeat(200))
                    .unwrap(),
            )
            .unwrap()
            .oid,
        );
    }
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&client), Arc::clone(&cache), "pinned");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    // Thrash the database cache with a full scan.
    for &oid in &noise {
        client.read(oid).unwrap();
    }
    assert!(
        client.cache().stats().evictions > 0,
        "database cache never evicted — test setup wrong"
    );
    // The display object is still resident and instantly accessible:
    // zoom/pan would not touch the network.
    let before = client.conn().stats().sent.get();
    let obj = display.object(do_id).unwrap();
    assert_eq!(obj.attr("Utilization"), Some(&Value::Float(0.5)));
    display.set_geometry(do_id, displaydb::viz::Rect::new(0.0, 0.0, 50.0, 50.0));
    assert_eq!(
        client.conn().stats().sent.get(),
        before,
        "display-cache operations must not hit the network"
    );
    assert_eq!(cache.len(), 1);
}

#[test]
fn update_lock_serializes_writers_without_blocking_readers() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp("ulock"));
    config.lock.wait_timeout = Duration::from_millis(500);
    let _server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();
    let a = DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("a")).unwrap();
    let b = DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("b")).unwrap();

    let mut txn = a.begin().unwrap();
    let link = txn.create(a.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    // a takes a U lock (update intention).
    let mut ta = a.begin().unwrap();
    ta.lock_update(link.oid).unwrap();
    // b can still *read* (U is compatible with S)...
    let mut tb = b.begin().unwrap();
    assert!(tb.read(link.oid).is_ok());
    // ...but b cannot take U or X.
    assert!(tb.lock_update(link.oid).is_err());
    tb.abort().unwrap();
    ta.commit().unwrap();
}

#[test]
fn projected_display_suppresses_unrelated_writes_end_to_end() {
    // Tentpole end-to-end check: a display that projects only
    // `Utilization` must receive *zero* DLM events for a commit that
    // touches a different attribute, and exactly one attribute-level
    // delta (applied in place, no resync fallback) for a commit that
    // touches the projected one.
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("proj")), &hub).unwrap();
    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("proj-updater"),
    )
    .unwrap();
    let viewer = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("proj-viewer"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn
        .create(
            updater
                .new_object("Link")
                .unwrap()
                .with(&catalog, "Utilization", 0.10)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "projected");
    let do_id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    // 1. Write outside the projection: no event reaches the viewer.
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Notes", "maintenance window"))
        .unwrap();
    txn.commit().unwrap();
    let events = display
        .wait_and_process(Duration::from_millis(300))
        .unwrap();
    assert_eq!(events, 0, "non-projected write leaked a display event");
    let stats = viewer.dlc().stats();
    assert_eq!(stats.notifications_in.get(), 0, "DLM event not suppressed");
    assert_eq!(stats.deltas_in.get(), 0);

    // 2. Write inside the projection: one delta, applied in place.
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.90))
        .unwrap();
    txn.commit().unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if display.object(do_id).unwrap().attr("Utilization") == Some(&Value::Float(0.90)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "projected write never converged"
        );
        display.wait_and_process(Duration::from_millis(50)).unwrap();
    }
    let stats = viewer.dlc().stats();
    assert!(
        stats.deltas_in.get() >= 1,
        "projected write was not a delta"
    );
    assert_eq!(
        stats.delta_fallbacks.get(),
        0,
        "delta should patch the cached copy in place, not force a re-read"
    );
}

#[test]
fn local_disk_cache_serves_misses_and_honours_callbacks() {
    // Paper footnote 2: the client's local disk as an intermediate
    // hierarchy level. It must serve memory misses without the network
    // and be invalidated by the same callbacks as the memory cache.
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("disk")), &hub).unwrap();
    let disk_dir = tmp("disk-cache-dir");
    let reader = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig {
            name: "disk-reader".into(),
            cache_bytes: 1 << 20,
            call_timeout: Duration::from_secs(30),
            disk_cache: Some((disk_dir.clone(), 1 << 20)),
        },
    )
    .unwrap();
    let writer = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("writer"),
    )
    .unwrap();

    let mut txn = writer.begin().unwrap();
    let link = txn
        .create(
            writer
                .new_object("Link")
                .unwrap()
                .with(&catalog, "Utilization", 0.25)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    // First read populates memory + disk.
    reader.read(link.oid).unwrap();
    assert_eq!(reader.disk_cache().unwrap().stats().objects, 1);

    // Clear memory: the next read must come from disk, not the network.
    reader.cache().clear();
    let sent_before = reader.conn().stats().sent.get();
    let obj = reader.read(link.oid).unwrap();
    assert_eq!(
        obj.get(&catalog, "Utilization")
            .unwrap()
            .as_float()
            .unwrap(),
        0.25
    );
    assert_eq!(
        reader.conn().stats().sent.get(),
        sent_before,
        "disk hit must not touch the network"
    );
    assert_eq!(reader.disk_cache().unwrap().stats().hits, 1);

    // A remote update invalidates BOTH cache levels before the commit
    // acknowledges (synchronous callbacks).
    let mut txn = writer.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.75))
        .unwrap();
    txn.commit().unwrap();
    assert!(!reader.cache().contains(link.oid));
    assert_eq!(
        reader.disk_cache().unwrap().stats().objects,
        0,
        "stale disk entry survived the callback"
    );
    // The next read fetches the fresh state.
    assert_eq!(
        reader
            .read(link.oid)
            .unwrap()
            .get(&catalog, "Utilization")
            .unwrap()
            .as_float()
            .unwrap(),
        0.75
    );
    let _ = std::fs::remove_dir_all(disk_dir);
}
