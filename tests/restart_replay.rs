//! Cross-restart replay: the durable update log (DESIGN.md § 14) lets a
//! reconnecting client with a live cursor catch up by `ReplayFrom` even
//! though the server *process* that issued its resume token is gone.
//!
//! These tests hard-kill a durable-log server (no outbox drain, no
//! graceful shutdown) and assert the three recovery invariants end to
//! end:
//!
//! - **no lost committed update** — everything committed before the kill
//!   is readable after restart and reaches the watching display;
//! - **replay, not resync** — when the durable window still covers the
//!   client's cursor, recovery is an interest-filtered replay
//!   (`cross_restart_replays == 1`, zero resync traffic);
//! - **safe fallback** — when retention evicted the cursor while the
//!   client was away, recovery degrades to exactly the stale-set resync,
//!   never a stuck replay or a cursor-gap storm.
//!
//! The deterministic crash-point matrix (torn appends, unsynced tails,
//! mid-rotation kills) lives in tests/crash_points.rs — its harness is
//! process-global, so it gets a binary of its own.

mod support;

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use displaydb::wire::Channel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use support::TempDir;

fn durable_config(dir: &std::path::Path) -> ServerConfig {
    let mut c = ServerConfig::new(dir);
    c.sync_commits = true;
    c.durable_log = DurableLogConfig {
        // Sync every batch: the hard kill below must not be able to eat
        // a committed record out of the spill.
        sync_every: 1,
        ..DurableLogConfig::enabled()
    };
    c
}

fn short_timeout(name: &str) -> ClientConfig {
    ClientConfig {
        name: name.into(),
        cache_bytes: 1 << 20,
        call_timeout: Duration::from_millis(300),
        disk_cache: None,
    }
}

type HubSlot = Arc<Mutex<LocalHub>>;

/// A supervised-client factory that always dials whatever hub currently
/// sits in `slot` (so a restarted server on a fresh hub is reachable)
/// and refuses to connect while `gate` is false (so the test controls
/// exactly when the reconnect happens).
fn gated_slot_factory(slot: &HubSlot) -> (ChannelFactory, Arc<AtomicBool>) {
    let gate = Arc::new(AtomicBool::new(true));
    let factory: ChannelFactory = {
        let slot = Arc::clone(slot);
        let gate = Arc::clone(&gate);
        Arc::new(move || {
            if !gate.load(Ordering::SeqCst) {
                return Err(DbError::Disconnected);
            }
            let channel = slot.lock().unwrap().connect()?;
            Ok(Box::new(channel) as Box<dyn Channel>)
        })
    };
    (factory, gate)
}

fn await_ping(client: &DbClient) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.ping().is_err() {
        assert!(Instant::now() < deadline, "client never reconnected");
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn await_value(display: &Display, id: DoId, want: f64, deadline: Duration) {
    let start = Instant::now();
    loop {
        display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        if display.object(id).unwrap().attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "display never reached {want}: {:?}",
            display.object(id).unwrap().attrs
        );
    }
}

fn await_cursor(client: &DbClient) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let cursor = client.dlc().cursor();
        if cursor > 0 {
            return cursor;
        }
        assert!(Instant::now() < deadline, "viewer never adopted a cursor");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Hard-kill the server mid-session; restart it over the same data
/// directory; commit an update the viewer missed; reconnect. The stale
/// resume token is refused (fresh process incarnation) but the durable
/// log's incarnation survived and its window covers the viewer's cursor,
/// so recovery is a cross-restart replay — no resync, and the cursor
/// stays monotone because the durable seqno space continues.
#[test]
fn hard_kill_recovers_live_cursor_by_replay() {
    let catalog = Arc::new(nms_catalog());
    let tmp = TempDir::new("xrestart-replay");
    let hub_slot: HubSlot = Arc::new(Mutex::new(LocalHub::new()));
    let hub0 = hub_slot.lock().unwrap().clone();
    let mut server =
        Server::spawn_local(Arc::clone(&catalog), durable_config(tmp.path()), &hub0).unwrap();
    let log_incarnation = server.core().log_incarnation();
    assert_ne!(log_incarnation, 0, "durable log must be live");

    let updater = DbClient::connect(
        Box::new(hub0.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let (factory, gate) = gated_slot_factory(&hub_slot);
    let viewer = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        short_timeout("viewer"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.3))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, id, 0.3, Duration::from_secs(5));
    let cursor_before = await_cursor(&viewer);

    // Crash: no drain, no goodbye. The next hub goes into the slot
    // first so the supervisor can only ever reach the new server.
    gate.store(false, Ordering::SeqCst);
    let hub2 = LocalHub::new();
    *hub_slot.lock().unwrap() = hub2.clone();
    server.hard_kill();
    drop(server);

    let server2 =
        Server::spawn_local(Arc::clone(&catalog), durable_config(tmp.path()), &hub2).unwrap();
    let rec = server2
        .core()
        .dlm_recovery()
        .expect("durable log must report recovery");
    assert!(rec.incarnation_recovered, "log incarnation must survive");
    assert_eq!(server2.core().log_incarnation(), log_incarnation);
    assert!(!rec.window_truncated, "clean kill must keep the window");
    assert!(rec.recovered_entries >= 1, "committed batches must be back");

    // The update the viewer missed lands after the restart, in the same
    // durable seqno space.
    let updater2 = DbClient::connect(
        Box::new(hub2.connect().unwrap()),
        ClientConfig::named("updater2"),
    )
    .unwrap();
    let mut txn = updater2.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.6))
        .unwrap();
    txn.commit().unwrap();

    gate.store(true, Ordering::SeqCst);
    await_ping(&viewer);
    await_value(&display, id, 0.6, Duration::from_secs(10));

    let recovery = &viewer.conn_stats().recovery;
    assert_eq!(
        recovery.sessions_resumed.get(),
        0,
        "the stale resume token must be refused"
    );
    assert_eq!(
        recovery.cross_restart_replays.get(),
        1,
        "recovery must cross the restart on the durable log"
    );
    assert_eq!(recovery.replay_catchups.get(), 1);
    assert_eq!(recovery.replay_truncations.get(), 0);
    assert_eq!(
        recovery.resync_objects.get(),
        0,
        "a covered cursor must not trigger resync re-reads"
    );
    assert_eq!(viewer.dlc().stats().resyncs_in.get(), 0);
    assert_eq!(server2.core().stats().sessions_recovered.get(), 1);

    // Cursor monotonicity across incarnations: the durable seqno space
    // continued, so the replayed suffix acks strictly past the old
    // frontier and the gap detector stays silent.
    let deadline = Instant::now() + Duration::from_secs(5);
    while viewer.dlc().cursor() <= cursor_before {
        assert!(
            Instant::now() < deadline,
            "cursor never advanced past {cursor_before}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(viewer.dlc().stats().cursor_gaps.get(), 0);
    drop(server2);
}

/// While the viewer is away a commit storm rolls the bounded replay
/// window (tiny ring and durable caps) far past its cursor. After the
/// kill+restart the window no longer covers the cursor: recovery must
/// fall back to the stale-set resync — once, cleanly — and never claim
/// a cross-restart replay.
#[test]
fn evicted_cursor_falls_back_to_resync_after_restart() {
    let catalog = Arc::new(nms_catalog());
    let tmp = TempDir::new("xrestart-trunc");
    let config = |dir: &std::path::Path| {
        let mut c = durable_config(dir);
        // A handful of entries of window: the storm below is far
        // bigger, so the warm-up cursor is guaranteed evicted.
        c.dlm.log.max_entries = 8;
        c.durable_log.segment_bytes = 256;
        c.durable_log.max_total_bytes = 512;
        c
    };
    let hub_slot: HubSlot = Arc::new(Mutex::new(LocalHub::new()));
    let hub0 = hub_slot.lock().unwrap().clone();
    let mut server = Server::spawn_local(Arc::clone(&catalog), config(tmp.path()), &hub0).unwrap();

    let updater = DbClient::connect(
        Box::new(hub0.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let (factory, gate) = gated_slot_factory(&hub_slot);
    let viewer = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        short_timeout("trunc"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.01))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, id, 0.01, Duration::from_secs(5));
    let cursor_before = await_cursor(&viewer);

    // Crash while the viewer holds a live cursor; it stays away (gate
    // closed) through the restart and the storm that follows.
    gate.store(false, Ordering::SeqCst);
    let hub2 = LocalHub::new();
    *hub_slot.lock().unwrap() = hub2.clone();
    server.hard_kill();
    drop(server);
    let server2 = Server::spawn_local(Arc::clone(&catalog), config(tmp.path()), &hub2).unwrap();

    // The storm rolls the replay window far past the absent viewer's
    // cursor (ring cap 8 « 61 commits).
    let updater2 = DbClient::connect(
        Box::new(hub2.connect().unwrap()),
        ClientConfig::named("updater2"),
    )
    .unwrap();
    for i in 1..=60u32 {
        let mut txn = updater2.begin().unwrap();
        txn.update(link.oid, |o| {
            o.set(&catalog, "Utilization", f64::from(i % 90) / 100.0)
        })
        .unwrap();
        txn.commit().unwrap();
    }
    let mut txn = updater2.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.77))
        .unwrap();
    txn.commit().unwrap();
    assert!(
        server2
            .core()
            .dlm()
            .update_log()
            .changed_since(cursor_before)
            .is_none(),
        "the storm must have rolled the window past the old cursor"
    );

    gate.store(true, Ordering::SeqCst);
    await_ping(&viewer);
    await_value(&display, id, 0.77, Duration::from_secs(10));

    let recovery = &viewer.conn_stats().recovery;
    assert_eq!(recovery.sessions_resumed.get(), 0);
    assert_eq!(
        recovery.cross_restart_replays.get(),
        0,
        "an uncovered cursor must not be admitted for replay"
    );
    assert_eq!(recovery.replay_catchups.get(), 0);
    assert!(
        recovery.resync_objects.get() >= 1,
        "the fallback must re-read the stale set"
    );
    assert_eq!(server2.core().stats().sessions_recovered.get(), 0);

    // The re-baselined cursor adopts the live seqno space cleanly.
    let mut txn = updater2.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.88))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, id, 0.88, Duration::from_secs(10));
    assert_eq!(viewer.dlc().stats().cursor_gaps.get(), 0);
    drop(server2);
}

/// With the durable log disabled the restart path is byte-for-byte the
/// pre-spill behaviour: `log_incarnation` rides the handshake as 0 and
/// nothing claims a cross-restart replay. (The full rebaseline flow is
/// pinned in tests/replay_recovery.rs; this guards the new field's
/// disabled-mode semantics.)
#[test]
fn disabled_log_advertises_zero_incarnation() {
    let catalog = Arc::new(nms_catalog());
    let tmp = TempDir::new("xrestart-off");
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp.path());
    config.sync_commits = true;
    let server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();
    assert_eq!(server.core().log_incarnation(), 0);
    assert!(server.core().dlm_recovery().is_none());

    let client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("plain"),
    )
    .unwrap();
    assert_eq!(client.session().log_incarnation, 0);
    assert_eq!(client.conn_stats().recovery.cross_restart_replays.get(), 0);
    drop(server);
}
