//! End-to-end notification-path observability (DESIGN.md § 12).
//!
//! A trace id minted at the committing client must be followable across
//! every hop of the notification path — commit, DLM intersect, outbox
//! enqueue/drain, wire send/recv, DLC apply — with monotone timestamps
//! whose consecutive-stage gaps telescope exactly to the end-to-end
//! span. The trace sink is process-global, so these tests serialize on
//! one guard and filter by their own trace ids.

use displaydb::common::stats::{Snapshot, StatsRegistry};
use displaydb::common::trace::{self, Stage, TraceSpan};
use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use displaydb::wire::Channel;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The trace sink and enabled flag are process-global; every test here
/// toggles them, so they serialize on this.
static GUARD: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("displaydb-it-obs").join(format!(
        "{}-{}",
        name,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn await_value(display: &Display, id: DoId, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if display.object(id).expect("object").attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(Instant::now() < deadline, "viewer never reached {want}");
        display
            .wait_and_process(Duration::from_millis(50))
            .expect("process");
    }
}

/// Spans that cover every stage and were minted after `after`.
fn complete_spans_after(after: u64) -> Vec<TraceSpan> {
    let events = trace::events();
    let mut ids: Vec<u64> = events
        .iter()
        .map(|e| e.trace)
        .filter(|&id| id > after)
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids.into_iter()
        .map(|id| TraceSpan::of(id, &events))
        .filter(|span| span.covers(Stage::ALL))
        .collect()
}

/// One committed projected write produces a trace covering all seven
/// stages in order, and its consecutive gaps telescope exactly to the
/// end-to-end span (the "per-stage sums match" invariant).
#[test]
fn traced_update_covers_all_stages_and_gaps_telescope() {
    let _g = locked();
    trace::enable(0);
    trace::clear();

    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("stages")), &hub).unwrap();
    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let viewer = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("viewer"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "obs");
    let do_id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    let marker = trace::next_trace_id();
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.42))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, do_id, 0.42);

    let spans = complete_spans_after(marker);
    assert_eq!(
        spans.len(),
        1,
        "exactly one post-marker commit should cover all stages: {spans:?}"
    );
    let span = &spans[0];
    assert!(span.is_monotone(), "stage timestamps must not decrease");
    assert_eq!(span.stages.len(), Stage::ALL.len());
    // Pipeline order is preserved, not just presence.
    let order: Vec<Stage> = span.stages.iter().map(|&(s, _)| s).collect();
    assert_eq!(order, Stage::ALL.to_vec());
    // Telescoping: the per-stage gaps sum exactly to the end-to-end span.
    let gap_sum: u64 = span.gaps().iter().map(|(_, _, g)| g).sum();
    assert_eq!(gap_sum, span.total_ns());

    trace::disable();
    trace::clear();
}

/// With tracing disabled, commits mint id 0 and a full notification
/// round-trip buffers nothing — the overhead-free default the bench
/// baselines rely on.
#[test]
fn disabled_tracing_buffers_nothing() {
    let _g = locked();
    trace::disable();
    trace::clear();
    assert_eq!(trace::next_trace_id(), 0);

    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("disabled")),
        &hub,
    )
    .unwrap();
    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let viewer = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("viewer"),
    )
    .unwrap();
    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "off");
    let do_id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.9))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, do_id, 0.9);

    assert_eq!(trace::buffered(), 0, "disabled tracing must buffer nothing");
}

/// A supervised client rides through a server restart, and the trace
/// pipeline keeps working across the reconnect: a commit on the *new*
/// connection still produces a complete seven-stage trace.
#[test]
fn trace_survives_supervised_reconnect() {
    let _g = locked();
    trace::enable(0);
    trace::clear();

    let catalog = Arc::new(nms_catalog());
    let dir = tmp("reconnect");
    let durable = |dir: &std::path::Path| {
        let mut c = ServerConfig::new(dir);
        c.sync_commits = true;
        c
    };
    let hub_slot = Arc::new(Mutex::new(LocalHub::new()));
    let factory: ChannelFactory = {
        let slot = Arc::clone(&hub_slot);
        Arc::new(move || {
            let channel = slot.lock().unwrap().connect()?;
            Ok(Box::new(channel) as Box<dyn Channel>)
        })
    };
    let hub0 = hub_slot.lock().unwrap().clone();
    let mut server = Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub0).unwrap();

    let config = |name: &str| ClientConfig {
        name: name.into(),
        cache_bytes: 1 << 20,
        call_timeout: Duration::from_millis(300),
        disk_cache: None,
    };
    let updater = DbClient::connect_supervised(
        Arc::clone(&factory),
        ReconnectPolicy::fast_test(),
        config("updater"),
    )
    .unwrap();
    let viewer = DbClient::connect_supervised(
        Arc::clone(&factory),
        ReconnectPolicy::fast_test(),
        config("viewer"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "obs");
    let do_id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    // Pre-restart sanity: the path traces end to end.
    let marker = trace::next_trace_id();
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.3))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, do_id, 0.3);
    assert_eq!(complete_spans_after(marker).len(), 1);

    // Server restart over the same data directory on a fresh hub.
    let hub2 = LocalHub::new();
    *hub_slot.lock().unwrap() = hub2.clone();
    server.shutdown();
    drop(server);
    let _server2 = Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub2).unwrap();

    let deadline = Instant::now() + Duration::from_secs(10);
    while updater.ping().is_err() || viewer.ping().is_err() {
        assert!(Instant::now() < deadline, "clients never reconnected");
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(viewer.conn_stats().recovery.reconnects_ok.get() >= 1);

    // A commit on the new connection generation must trace end to end:
    // the display lock was re-registered, and the trace id flows through
    // the fresh wire session. The re-registration races the reconnect,
    // so retry the traced write until its span completes.
    let marker = trace::next_trace_id();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut value = 0.5;
    loop {
        value += 0.01;
        let committed = updater.begin().and_then(|mut txn| {
            txn.update(link.oid, |o| o.set(&catalog, "Utilization", value))?;
            txn.commit()
        });
        if committed.is_ok() {
            display
                .wait_and_process(Duration::from_millis(200))
                .unwrap();
            if !complete_spans_after(marker).is_empty() {
                break;
            }
        }
        assert!(
            Instant::now() < deadline,
            "no complete trace after reconnect"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let spans = complete_spans_after(marker);
    assert!(spans.iter().all(TraceSpan::is_monotone));

    trace::disable();
    trace::clear();
}

/// The unified registry snapshots live pipeline counters next to the
/// trace ring, and the JSON document round-trips losslessly.
#[test]
fn registry_snapshot_roundtrips_with_live_pipeline() {
    let _g = locked();
    trace::enable(0);
    trace::clear();

    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("registry")),
        &hub,
    )
    .unwrap();
    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let viewer = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("viewer"),
    )
    .unwrap();

    let registry = StatsRegistry::new();
    registry.register("server", Arc::new(server.core().stats().clone()));
    registry.register("dlm", Arc::new(server.core().dlm().stats().clone()));
    registry.register("viewer.conn", Arc::new(viewer.conn().stats().clone()));
    registry.register("viewer.dlc", Arc::new(viewer.dlc().stats().clone()));

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "obs");
    let do_id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    let marker = trace::next_trace_id();
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.77))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, do_id, 0.77);

    let json = registry.snapshot_json();
    let parsed = Snapshot::parse(&json).unwrap();
    // Live counters made it into the document...
    assert!(parsed.get("server", "commits").unwrap() >= 2);
    assert_eq!(parsed.get("viewer.dlc", "notifications_in"), Some(1));
    // ...alongside the trace ring, which still contains the traced
    // commit at every stage.
    assert!(parsed.trace_enabled);
    for &stage in Stage::ALL {
        assert!(
            parsed
                .events
                .iter()
                .any(|e| e.trace > marker && e.stage == stage),
            "snapshot lost stage {stage:?}"
        );
    }
    // And the document is lossless: parse(to_json(parse(json))) is
    // identical to the first parse.
    assert_eq!(Snapshot::parse(&parsed.to_json()).unwrap(), parsed);

    trace::disable();
    trace::clear();
}
