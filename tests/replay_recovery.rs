//! Replay recovery: cursor catch-up over the DLM update log.
//!
//! PR 6's tentpole turns reconnect recovery from "invalidate and re-read
//! everything" into "replay the logged suffix past my cursor". These
//! tests pin the four load-bearing behaviours end to end, over real
//! server/client pairs:
//!
//! - a resumed session with a retained cursor converges by replay and
//!   never issues a resync;
//! - a truncated cursor falls back to exactly one full resync
//!   (`replay_truncations == 1`), not a storm of them;
//! - replay is interest-filtered — a viewer only receives the suffix
//!   that intersects its registered locks;
//! - outbox overflow in replay mode sweeps to a `ReplayNeeded` marker
//!   the client answers automatically, replacing the legacy
//!   `ResyncRequired` path (pinned separately in tests/overload.rs with
//!   the log disabled);
//! - repeated disconnects keep the cursor monotone with zero gap events
//!   (the gap counter is diagnostic, never fatal).
//!
//! Log-structure invariants (seqno monotonicity, retention caps,
//! truncation detection) are property-tested in crates/dlm/src/log.rs.

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use displaydb::wire::Channel;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("displaydb-it-replay")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn short_timeout(name: &str) -> ClientConfig {
    ClientConfig {
        name: name.into(),
        cache_bytes: 1 << 20,
        call_timeout: Duration::from_millis(300),
        disk_cache: None,
    }
}

/// A supervised-client factory whose connections can be killed on demand
/// (each gets a fresh [`FaultPlan`], exposed through `plan_slot`) and
/// whose reconnects are held off while `gate` is false.
type PlanSlot = Arc<std::sync::Mutex<Arc<FaultPlan>>>;

fn gated_factory(hub: &LocalHub) -> (ChannelFactory, PlanSlot, Arc<AtomicBool>) {
    let plan_slot: PlanSlot = Arc::new(std::sync::Mutex::new(Arc::new(FaultPlan::new())));
    let gate = Arc::new(AtomicBool::new(true));
    let factory: ChannelFactory = {
        let hub = hub.clone();
        let plan_slot = Arc::clone(&plan_slot);
        let gate = Arc::clone(&gate);
        Arc::new(move || {
            if !gate.load(Ordering::SeqCst) {
                return Err(DbError::Disconnected);
            }
            let plan = Arc::new(FaultPlan::new());
            *plan_slot.lock().unwrap() = Arc::clone(&plan);
            let inner: Box<dyn Channel> = Box::new(hub.connect()?);
            Ok(Box::new(FaultyChannel::wrap(inner, plan)) as Box<dyn Channel>)
        })
    };
    (factory, plan_slot, gate)
}

/// Sever the supervised client's current link and close the gate so the
/// supervisor spins until the test reopens it.
fn sever(plan_slot: &PlanSlot, gate: &AtomicBool) {
    gate.store(false, Ordering::SeqCst);
    plan_slot.lock().unwrap().kill_now();
}

fn await_ping(client: &DbClient) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while client.ping().is_err() {
        assert!(Instant::now() < deadline, "client never reconnected");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Drive `display` until the DO's Utilization attribute reaches `want`.
fn await_value(display: &Display, id: DoId, want: f64, deadline: Duration) {
    let start = Instant::now();
    loop {
        display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        if display.object(id).unwrap().attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(
            start.elapsed() < deadline,
            "display never reached {want}: {:?}",
            display.object(id).unwrap().attrs
        );
    }
}

/// Wait until the viewer's DLC cursor has adopted at least one
/// cursor-ack, so "replay from my cursor" is exercised with a real
/// (non-zero) frontier.
fn await_cursor(client: &DbClient) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let cursor = client.dlc().cursor();
        if cursor > 0 {
            return cursor;
        }
        assert!(Instant::now() < deadline, "viewer never adopted a cursor");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Disconnect while the world keeps committing; reconnect resumes the
/// session and converges by replaying the logged suffix — zero resyncs,
/// zero re-read traffic. This is the R4 storm in miniature.
#[test]
fn resume_replays_suffix_without_resync() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("replay")), &hub).unwrap();

    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let (factory, plan_slot, gate) = gated_factory(&hub);
    let viewer = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        short_timeout("viewer"),
    )
    .unwrap();

    let mut oids = Vec::new();
    let mut txn = updater.begin().unwrap();
    for _ in 0..8 {
        oids.push(txn.create(updater.new_object("Link").unwrap()).unwrap().oid);
    }
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let ids: Vec<DoId> = oids
        .iter()
        .map(|&oid| {
            display
                .add_object(&width_coded_link("Utilization"), vec![oid])
                .unwrap()
        })
        .collect();

    // Warm up: one live update lands, the drain-to-empty ack gives the
    // viewer a real cursor to carry into the outage.
    let mut txn = updater.begin().unwrap();
    txn.update(oids[0], |o| o.set(&catalog, "Utilization", 0.01))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, ids[0], 0.01, Duration::from_secs(5));
    let cursor_before = await_cursor(&viewer);

    // Outage: the viewer's link dies while every link keeps changing.
    sever(&plan_slot, &gate);
    for (i, &oid) in oids.iter().enumerate() {
        let mut txn = updater.begin().unwrap();
        let val = 0.5 + i as f64 / 100.0;
        txn.update(oid, |o| o.set(&catalog, "Utilization", val))
            .unwrap();
        txn.commit().unwrap();
    }

    // Reconnect: resume + replay, no resync.
    gate.store(true, Ordering::SeqCst);
    await_ping(&viewer);
    for (i, &id) in ids.iter().enumerate() {
        await_value(
            &display,
            id,
            0.5 + i as f64 / 100.0,
            Duration::from_secs(10),
        );
    }

    let recovery = &viewer.conn_stats().recovery;
    assert_eq!(recovery.sessions_resumed.get(), 1, "session must resume");
    assert!(
        recovery.replay_catchups.get() >= 1,
        "recovery must go through the replay path"
    );
    assert_eq!(recovery.replay_truncations.get(), 0);
    assert_eq!(
        recovery.resync_objects.get(),
        0,
        "replay catch-up must not re-read anything"
    );
    assert_eq!(
        viewer.dlc().stats().resyncs_in.get(),
        0,
        "no resync sweep may reach the viewer"
    );
    assert!(
        viewer.dlc().cursor() > cursor_before,
        "the cursor must advance past the replayed suffix"
    );
    assert_eq!(viewer.dlc().stats().cursor_gaps.get(), 0);
    drop(server);
}

/// Forced truncation (the R4 fault injection): the cursor is evicted
/// from the log while the viewer is away, so resume falls back to
/// exactly one full resync — and only one.
#[test]
fn truncated_cursor_falls_back_to_exactly_one_resync() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("truncate")),
        &hub,
    )
    .unwrap();

    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let (factory, plan_slot, gate) = gated_factory(&hub);
    let viewer = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        short_timeout("trunc"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.01))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, id, 0.01, Duration::from_secs(5));
    await_cursor(&viewer);

    // Outage, a commit the viewer misses, then the log loses the suffix.
    sever(&plan_slot, &gate);
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.95))
        .unwrap();
    txn.commit().unwrap();
    server.core().dlm().update_log().truncate_all();

    gate.store(true, Ordering::SeqCst);
    await_ping(&viewer);
    await_value(&display, id, 0.95, Duration::from_secs(10));

    let recovery = &viewer.conn_stats().recovery;
    assert_eq!(recovery.sessions_resumed.get(), 1, "session must resume");
    assert_eq!(
        recovery.replay_truncations.get(),
        1,
        "truncation must fall back to exactly one full resync"
    );
    assert_eq!(recovery.replay_catchups.get(), 0);
    assert!(
        recovery.resync_objects.get() >= 1,
        "the fallback must actually re-read the stale set"
    );
    drop(server);
}

/// A restarted server refuses the resume token (fresh incarnation,
/// fresh seqno space): recovery is a fresh session + full resync, the
/// cursor re-baselines from zero, and the regression is counted — never
/// a panic, never a stuck replay loop.
#[test]
fn server_restart_rebaselines_the_cursor() {
    let catalog = Arc::new(nms_catalog());
    let dir = tmp("restart");
    let durable = |dir: &std::path::Path| {
        let mut c = ServerConfig::new(dir);
        c.sync_commits = true;
        c
    };
    let hub_slot = Arc::new(std::sync::Mutex::new(LocalHub::new()));
    let hub0 = hub_slot.lock().unwrap().clone();
    let mut server = Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub0).unwrap();

    let slot_factory = || -> ChannelFactory {
        let slot = Arc::clone(&hub_slot);
        Arc::new(move || {
            let channel = slot.lock().unwrap().connect()?;
            Ok(Box::new(channel) as Box<dyn Channel>)
        })
    };
    let client = DbClient::connect_supervised(
        slot_factory(),
        ReconnectPolicy::fast_test(),
        short_timeout("nms"),
    )
    .unwrap();
    // Commits by the watcher itself do not notify the origin, so a
    // separate (also supervised) updater drives the display.
    let updater = DbClient::connect_supervised(
        slot_factory(),
        ReconnectPolicy::fast_test(),
        short_timeout("updater"),
    )
    .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&client), cache, "map");
    let id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.3))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, id, 0.3, Duration::from_secs(5));
    await_cursor(&client);

    // Restart over the same data directory on a fresh hub.
    let hub2 = LocalHub::new();
    *hub_slot.lock().unwrap() = hub2.clone();
    server.shutdown();
    drop(server);
    let server2 = Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub2).unwrap();

    await_ping(&client);
    await_ping(&updater);
    let recovery = &client.conn_stats().recovery;
    assert_eq!(
        recovery.sessions_resumed.get(),
        0,
        "a restarted server must refuse the stale resume token"
    );
    assert_eq!(recovery.replay_catchups.get(), 0);
    assert_eq!(
        recovery.replay_truncations.get(),
        0,
        "a fresh (non-resumed) session is not a truncation event"
    );

    // The new incarnation's acks start over; the re-baselined cursor
    // adopts them without tripping the gap detector.
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.6))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, id, 0.6, Duration::from_secs(10));
    await_cursor(&client);
    assert_eq!(
        client.dlc().stats().cursor_gaps.get(),
        0,
        "re-baselined cursor must adopt the fresh seqno space cleanly"
    );
    drop(server2);
}

/// Replay streams only the suffix that intersects the reconnecting
/// client's registered interests: a viewer watching one link must not
/// receive the flood that hit somebody else's objects while it was away.
#[test]
fn replay_is_interest_filtered() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("filter")), &hub).unwrap();

    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let (factory, plan_slot, gate) = gated_factory(&hub);
    let viewer_a =
        DbClient::connect_supervised(factory, ReconnectPolicy::fast_test(), short_timeout("a"))
            .unwrap();
    let viewer_b =
        DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("b")).unwrap();

    let mut txn = updater.begin().unwrap();
    let oid_a = txn.create(updater.new_object("Link").unwrap()).unwrap().oid;
    let oid_b = txn.create(updater.new_object("Link").unwrap()).unwrap().oid;
    txn.commit().unwrap();

    let cache_a = Arc::new(DisplayCache::new());
    let display_a = Display::open(Arc::clone(&viewer_a), cache_a, "a");
    let id_a = display_a
        .add_object(&width_coded_link("Utilization"), vec![oid_a])
        .unwrap();
    let cache_b = Arc::new(DisplayCache::new());
    let display_b = Display::open(Arc::clone(&viewer_b), cache_b, "b");
    let id_b = display_b
        .add_object(&width_coded_link("Utilization"), vec![oid_b])
        .unwrap();

    let mut txn = updater.begin().unwrap();
    txn.update(oid_a, |o| o.set(&catalog, "Utilization", 0.01))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display_a, id_a, 0.01, Duration::from_secs(5));
    await_cursor(&viewer_a);

    // A goes away; its object changes 3 times, B's changes 40 times.
    sever(&plan_slot, &gate);
    let before = viewer_a.dlc().stats().notifications_in.get();
    for i in 1..=3u32 {
        let mut txn = updater.begin().unwrap();
        txn.update(oid_a, |o| {
            o.set(&catalog, "Utilization", f64::from(i) / 10.0)
        })
        .unwrap();
        txn.commit().unwrap();
    }
    for i in 1..=40u32 {
        let mut txn = updater.begin().unwrap();
        txn.update(oid_b, |o| {
            o.set(&catalog, "Utilization", f64::from(i % 90) / 100.0)
        })
        .unwrap();
        txn.commit().unwrap();
    }

    gate.store(true, Ordering::SeqCst);
    await_ping(&viewer_a);
    await_value(&display_a, id_a, 0.3, Duration::from_secs(10));
    await_value(&display_b, id_b, 0.4, Duration::from_secs(10));

    assert!(
        viewer_a.conn_stats().recovery.replay_catchups.get() >= 1,
        "A must recover by replay"
    );
    let replayed = viewer_a.dlc().stats().notifications_in.get() - before;
    assert!(
        replayed <= 6,
        "replay leaked unwatched events to A: {replayed} notifications \
         for 3 watched updates (40 unwatched committed meanwhile)"
    );
    drop(server);
}

/// Outbox overflow with the log on: the backlog sweeps to a single
/// `ReplayNeeded` marker, the viewer answers it with `ReplayFrom` on its
/// own, and converges by replay — the legacy `ResyncRequired` path
/// (pinned in tests/overload.rs with the log disabled) never fires.
#[test]
fn overflow_sweeps_to_replay_needed_and_converges() {
    let catalog = Arc::new(nms_catalog());
    let fast_hub = LocalHub::new();
    let slow_hub = LocalHub::new();
    let plan = Arc::new(FaultPlan::new());
    let mut config = ServerConfig::new(tmp("overflow-replay"));
    config.dlm.overload.outbox_high_water = 8;
    // Same decoupling as the legacy twin: async callbacks let the storm
    // burst while the viewer's writer is parked in a delayed send.
    config.sync_callbacks = false;
    let server = Server::spawn(
        Arc::clone(&catalog),
        config,
        vec![
            Box::new(fast_hub.clone()),
            Box::new(FaultyListener::wrap(
                Box::new(slow_hub.clone()),
                Arc::clone(&plan),
            )),
        ],
    )
    .unwrap();

    let updater = DbClient::connect(
        Box::new(fast_hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let viewer = DbClient::connect(
        Box::new(slow_hub.connect().unwrap()),
        ClientConfig::named("viewer"),
    )
    .unwrap();

    let mut oids = Vec::new();
    let mut txn = updater.begin().unwrap();
    for _ in 0..40 {
        oids.push(txn.create(updater.new_object("Link").unwrap()).unwrap().oid);
    }
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let ids: Vec<DoId> = oids
        .iter()
        .map(|&oid| {
            display
                .add_object(&width_coded_link("Utilization"), vec![oid])
                .unwrap()
        })
        .collect();

    // Flush cached copies and drain before arming the delay (see the
    // legacy twin for why this is paced commit-by-commit).
    for &oid in &oids {
        let mut txn = updater.begin().unwrap();
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.01))
            .unwrap();
        txn.commit().unwrap();
    }
    await_value(&display, *ids.last().unwrap(), 0.01, Duration::from_secs(5));
    while display
        .wait_and_process(Duration::from_millis(200))
        .unwrap()
        > 0
    {}

    // Park the writer and land the whole storm behind it in one commit.
    plan.set_delay(1000, Duration::from_millis(400));
    let mut txn = updater.begin().unwrap();
    for &oid in &oids {
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.95))
            .unwrap();
    }
    txn.commit().unwrap();
    let overload = &server.core().dlm().stats().overload;
    assert!(overload.overflows.get() >= 1, "outbox never overflowed");

    plan.clear_delay();
    for &id in &ids {
        await_value(&display, id, 0.95, Duration::from_secs(30));
    }
    assert!(
        viewer.dlc().stats().replays_requested.get() >= 1,
        "the sweep must arrive as a ReplayNeeded the viewer answers"
    );
    assert_eq!(
        viewer.dlc().stats().resyncs_in.get(),
        0,
        "with the log on, overflow must never fall back to resync"
    );
    drop(server);
}

/// Wait until the viewer holds a positive cursor on every shard, so the
/// resume token carries a real per-shard frontier into the outage.
fn await_shard_cursors(client: &DbClient, shards: u32) -> Vec<(u32, u64)> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let cursors = client.dlc().cursors();
        if (0..shards).all(|s| cursors.iter().any(|&(cs, c)| cs == s && c > 0)) {
            return cursors;
        }
        assert!(
            Instant::now() < deadline,
            "viewer never adopted cursors on all {shards} shards: {cursors:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Shard-parallel recovery: on a 4-shard DLM, one shard's log loses the
/// viewer's cursor during the outage while the other three retain it.
/// The resume must replay the caught-up shards (cursor-vector admission)
/// and sweep only the truncated shard to a scoped resync — the session
/// never falls back to the legacy whole-session resync.
#[test]
fn shard_parallel_replay_with_one_truncated_shard() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp("shard-replay"));
    config.dlm.shards = 4;
    let server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();

    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let (factory, plan_slot, gate) = gated_factory(&hub);
    let viewer = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        short_timeout("shards"),
    )
    .unwrap();

    // Create links until every shard owns at least one; watch one per
    // shard so both replay paths have interest on every shard.
    let map = server.core().dlm().map();
    let mut by_shard: Vec<Option<Oid>> = vec![None; 4];
    let mut txn = updater.begin().unwrap();
    while by_shard.iter().any(Option::is_none) {
        let oid = txn.create(updater.new_object("Link").unwrap()).unwrap().oid;
        let slot = &mut by_shard[map.shard_of(oid) as usize];
        if slot.is_none() {
            *slot = Some(oid);
        }
    }
    txn.commit().unwrap();
    let oids: Vec<Oid> = by_shard.into_iter().map(Option::unwrap).collect();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let ids: Vec<DoId> = oids
        .iter()
        .map(|&oid| {
            display
                .add_object(&width_coded_link("Utilization"), vec![oid])
                .unwrap()
        })
        .collect();

    // Warm up every shard so each per-shard cursor is real (non-zero).
    for (i, &oid) in oids.iter().enumerate() {
        let mut txn = updater.begin().unwrap();
        txn.update(oid, |o| {
            o.set(&catalog, "Utilization", 0.01 + i as f64 / 100.0)
        })
        .unwrap();
        txn.commit().unwrap();
    }
    for (i, &id) in ids.iter().enumerate() {
        await_value(
            &display,
            id,
            0.01 + i as f64 / 100.0,
            Duration::from_secs(5),
        );
    }
    await_shard_cursors(&viewer, 4);

    // Outage: every shard misses one commit, then shard 2's log loses
    // its suffix (the other shards keep theirs).
    sever(&plan_slot, &gate);
    for (i, &oid) in oids.iter().enumerate() {
        let mut txn = updater.begin().unwrap();
        txn.update(oid, |o| {
            o.set(&catalog, "Utilization", 0.5 + i as f64 / 100.0)
        })
        .unwrap();
        txn.commit().unwrap();
    }
    let truncated_shard = 2usize;
    server
        .core()
        .dlm()
        .update_log_of(truncated_shard)
        .truncate_all();

    gate.store(true, Ordering::SeqCst);
    await_ping(&viewer);
    for (i, &id) in ids.iter().enumerate() {
        await_value(
            &display,
            id,
            0.5 + i as f64 / 100.0,
            Duration::from_secs(10),
        );
    }

    let recovery = &viewer.conn_stats().recovery;
    assert_eq!(recovery.sessions_resumed.get(), 1, "session must resume");
    assert!(
        recovery.replay_catchups.get() >= 1,
        "caught-up shards must admit the cursor vector for replay"
    );
    assert_eq!(
        recovery.replay_truncations.get(),
        0,
        "one truncated shard must not demote the whole session to resync"
    );
    assert!(
        viewer.dlc().stats().resyncs_in.get() >= 1,
        "the truncated shard must sweep to a scoped resync"
    );
    // The shard logs share one stats handle, so the aggregate view pins
    // the split: exactly one shard hit the truncated path, and the
    // three caught-up shards each served a replay slice.
    let log_stats = server.core().dlm().update_log_of(truncated_shard).stats();
    assert_eq!(
        log_stats.truncated_replays.get(),
        1,
        "exactly one shard (the truncated one) may fall back"
    );
    assert!(
        log_stats.replays_served.get() >= 3,
        "every caught-up shard must serve a replay slice, got {}",
        log_stats.replays_served.get()
    );
    drop(server);
}

/// Kill the viewer's link repeatedly under a continuous update stream:
/// every cycle converges by replay, the cursor never regresses within
/// the incarnation, and the gap detector stays silent — the worst-case
/// flapping client is panic-free.
#[test]
fn repeated_disconnects_keep_the_cursor_monotone() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let server =
        Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp("flap")), &hub).unwrap();

    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let (factory, plan_slot, gate) = gated_factory(&hub);
    let viewer =
        DbClient::connect_supervised(factory, ReconnectPolicy::fast_test(), short_timeout("flap"))
            .unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let id = display
        .add_object(&width_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.01))
        .unwrap();
    txn.commit().unwrap();
    await_value(&display, id, 0.01, Duration::from_secs(5));
    let mut last_cursor = await_cursor(&viewer);

    for cycle in 1..=3u32 {
        sever(&plan_slot, &gate);
        let want = f64::from(cycle) / 5.0;
        let mut txn = updater.begin().unwrap();
        txn.update(link.oid, |o| o.set(&catalog, "Utilization", want))
            .unwrap();
        txn.commit().unwrap();

        gate.store(true, Ordering::SeqCst);
        await_ping(&viewer);
        await_value(&display, id, want, Duration::from_secs(10));
        let deadline = Instant::now() + Duration::from_secs(5);
        while viewer.dlc().cursor() <= last_cursor {
            assert!(
                Instant::now() < deadline,
                "cycle {cycle}: cursor never advanced past {last_cursor}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
        last_cursor = viewer.dlc().cursor();
    }

    let recovery = &viewer.conn_stats().recovery;
    assert_eq!(recovery.sessions_resumed.get(), 3);
    assert!(
        recovery.replay_catchups.get() >= 3,
        "every cycle must converge by replay"
    );
    assert_eq!(viewer.dlc().stats().cursor_gaps.get(), 0);
    assert_eq!(viewer.dlc().stats().resyncs_in.get(), 0);
    drop(server);
}
