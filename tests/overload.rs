//! Overload protection: bounded outboxes, overflow-to-resync, admission
//! control, slow-consumer isolation, and shutdown under stall.
//!
//! The scenario behind all of these is the paper's § 5 storm: hundreds of
//! updates per second fanning out to interactive viewers, one of which is
//! on a congested link or a hung workstation. The server must (a) keep
//! the healthy viewers fast, (b) keep its own memory bounded, and (c)
//! bring the slow viewer back to a *correct* view once it recovers —
//! without ever replaying the backlog it missed.

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("displaydb-it-overload")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn client_on(hub: &LocalHub, name: &str) -> Arc<DbClient> {
    DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named(name)).unwrap()
}

/// Drive `display` until the DO's Utilization attribute reaches `want`
/// (or panic at the deadline).
fn await_value(display: &Display, id: DoId, want: f64, deadline: Duration) -> Duration {
    let start = Instant::now();
    loop {
        display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        if display.object(id).unwrap().attr("Utilization") == Some(&Value::Float(want)) {
            return start.elapsed();
        }
        assert!(
            start.elapsed() < deadline,
            "display never reached {want}: {:?}",
            display.object(id).unwrap().attrs
        );
    }
}

fn link_display(viewer: &Arc<DbClient>, oid: Oid, name: &str) -> (Arc<Display>, DoId) {
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(viewer), cache, name);
    let id = display
        .add_object(&width_coded_link("Utilization"), vec![oid])
        .unwrap();
    (display, id)
}

/// One viewer sits behind a link where every server→client frame costs
/// 20 ms of *sender* time. Without per-client outboxes that cost lands in
/// the notification fan-out path and every commit pays it; with them, the
/// slow client's writer thread absorbs the delay and both the update
/// storm and the healthy viewer stay fast.
#[test]
fn slow_client_does_not_degrade_fast_client() {
    let catalog = Arc::new(nms_catalog());
    let fast_hub = LocalHub::new();
    let slow_hub = LocalHub::new();
    let plan = Arc::new(FaultPlan::new());
    let server = Server::spawn(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("slow-fast")),
        vec![
            Box::new(fast_hub.clone()),
            Box::new(FaultyListener::wrap(
                Box::new(slow_hub.clone()),
                Arc::clone(&plan),
            )),
        ],
    )
    .unwrap();

    let updater = client_on(&fast_hub, "updater");
    let fast = client_on(&fast_hub, "fast-viewer");
    let slow = client_on(&slow_hub, "slow-viewer");

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();

    let (fast_display, fast_id) = link_display(&fast, link.oid, "fast");
    let (_slow_display, _slow_id) = link_display(&slow, link.oid, "slow");

    // Warm-up commit while the link is still clean: flushes the slow
    // viewer's cached copy so no storm commit waits on a delayed
    // invalidation callback.
    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.01))
        .unwrap();
    txn.commit().unwrap();

    // Now every server→slow-viewer frame stalls its sender for 20 ms.
    plan.set_delay(1000, Duration::from_millis(20));

    let storm = 100u32;
    let storm_start = Instant::now();
    for i in 1..=storm {
        let mut txn = updater.begin().unwrap();
        let util = if i == storm {
            0.95
        } else {
            f64::from(i % 90) / 100.0
        };
        txn.update(link.oid, |o| o.set(&catalog, "Utilization", util))
            .unwrap();
        txn.commit().unwrap();
    }
    let storm_elapsed = storm_start.elapsed();
    // 100 notifications × 20 ms = 2 s of injected delay. If any of it
    // leaked into the commit/fan-out path the storm could not finish in
    // well under that.
    assert!(
        storm_elapsed < Duration::from_secs(2),
        "slow client's delay leaked into the commit path: {storm_elapsed:?}"
    );

    // The healthy viewer sees the final state promptly.
    let latency = await_value(&fast_display, fast_id, 0.95, Duration::from_secs(2));
    assert!(
        latency < Duration::from_secs(2),
        "fast viewer degraded: {latency:?}"
    );

    plan.clear_delay();
    drop(server);
}

/// A storm against a viewer whose channel is stalled: the bounded outbox
/// overflows, sweeps the backlog into exactly one resync marker, and the
/// viewer converges to the correct final view by re-reading — the lost
/// per-object events are never replayed.
#[test]
fn overflow_sweeps_to_one_resync_and_converges() {
    let catalog = Arc::new(nms_catalog());
    let fast_hub = LocalHub::new();
    let slow_hub = LocalHub::new();
    let plan = Arc::new(FaultPlan::new());
    let mut config = ServerConfig::new(tmp("overflow"));
    config.dlm.overload.outbox_high_water = 8;
    // This test pins the *legacy* overflow recovery (sweep to one
    // ResyncRequired). With the update log on, overflow sweeps to a
    // ReplayNeeded marker instead — that path is covered by
    // tests/replay_recovery.rs.
    config.dlm.log = displaydb::common::UpdateLogConfig::disabled();
    // Async invalidation callbacks: with synchronous ones each storm
    // commit waits ~one injected delay for the viewer's callback ack,
    // which paces enqueues at exactly the stalled writer's drain rate —
    // the queue would never build. Decoupled, the storm bursts and the
    // backlog piles up behind the parked writer deterministically.
    config.sync_callbacks = false;
    let server = Server::spawn(
        Arc::clone(&catalog),
        config,
        vec![
            Box::new(fast_hub.clone()),
            Box::new(FaultyListener::wrap(
                Box::new(slow_hub.clone()),
                Arc::clone(&plan),
            )),
        ],
    )
    .unwrap();

    let updater = client_on(&fast_hub, "updater");
    let viewer = client_on(&slow_hub, "viewer");

    // A storm on one object coalesces in place (latest wins) and never
    // overflows — the sweep is for bursts across *many* objects, so
    // build a 40-link topology the viewer watches in full.
    let mut oids = Vec::new();
    let mut txn = updater.begin().unwrap();
    for _ in 0..40 {
        oids.push(txn.create(updater.new_object("Link").unwrap()).unwrap().oid);
    }
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "map");
    let ids: Vec<DoId> = oids
        .iter()
        .map(|&oid| {
            display
                .add_object(&width_coded_link("Utilization"), vec![oid])
                .unwrap()
        })
        .collect();

    // Flush the viewer's cached copies before arming the delay (see
    // above), and drain the resulting notifications. One commit per
    // link: each commit is a full client→server round-trip, which paces
    // the enqueues so the (healthy, undelayed) writer drains between
    // them — a single 40-write burst here can trip the high-water mark
    // on its own and deliver a pre-storm resync marker, breaking the
    // exactly-one count below.
    for &oid in &oids {
        let mut txn = updater.begin().unwrap();
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.01))
            .unwrap();
        txn.commit().unwrap();
    }
    await_value(&display, *ids.last().unwrap(), 0.01, Duration::from_secs(5));
    while display
        .wait_and_process(Duration::from_millis(200))
        .unwrap()
        > 0
    {}

    // Stall the viewer's channel hard: the outbox writer parks in one
    // 400 ms send while the whole storm (40 distinct objects) lands in
    // the queue behind it and trips the high-water mark. One commit over
    // all 40 links makes the burst land atomically relative to the
    // parked writer — commit-by-commit the storm only stays ahead of the
    // 400 ms park on an unloaded machine, and a second drain mid-storm
    // would mean a second sweep (and a second resync marker) below.
    plan.set_delay(1000, Duration::from_millis(400));
    let mut txn = updater.begin().unwrap();
    for &oid in &oids {
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.95))
            .unwrap();
    }
    txn.commit().unwrap();
    let overload = &server.core().dlm().stats().overload;
    assert!(overload.overflows.get() >= 1, "outbox never overflowed");
    assert!(
        overload.queue_depth.high_water() <= 8 + 1,
        "outbox depth exceeded the high-water mark: {}",
        overload.queue_depth.high_water()
    );

    // Storm over; the link heals and the viewer catches up — every one
    // of the 40 links, though the per-object events were swept away.
    plan.clear_delay();
    for &id in &ids {
        await_value(&display, id, 0.95, Duration::from_secs(30));
    }
    assert_eq!(
        viewer.dlc().stats().resyncs_in.get(),
        1,
        "the swept backlog must arrive as exactly one resync"
    );
    assert!(overload.resyncs_sent.get() >= 1);
    drop(server);
}

/// Past the per-client in-flight cap the server sheds with a retryable
/// `Overloaded` error; `Connection::call` retries with backoff, so the
/// application never sees the shed — only the counters do.
#[test]
fn admission_control_sheds_and_the_client_retries_through() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp("admission"));
    config.dlm.overload.max_in_flight = 2;
    let server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();

    let client = client_on(&hub, "pusher");
    let mut txn = client.begin().unwrap();
    let link = txn.create(client.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();
    let oid = link.oid;

    // 8 threads × 40 uncached reads against an in-flight cap of 2.
    let mut handles = Vec::new();
    for _ in 0..8 {
        let client = Arc::clone(&client);
        handles.push(std::thread::spawn(move || {
            for _ in 0..40 {
                client.cache().invalidate(&[oid]);
                match client.read_fresh(oid) {
                    Ok(_) => {}
                    // The retry loop gave up: the server stayed saturated
                    // across the whole backoff window. Legitimate under
                    // extreme scheduling; the next call gets a new window.
                    Err(DbError::Overloaded) => {}
                    Err(e) => panic!("unexpected error under load: {e:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let sheds = server.core().dlm().stats().overload.sheds.get();
    let retries = client.conn_stats().overload_retries.get();
    assert!(sheds >= 1, "cap of 2 with 8 threads must shed");
    assert!(retries >= 1, "client must have retried shed requests");
    // The connection is still healthy for ordinary work.
    client.ping().unwrap();
    drop(server);
}

/// `Server::shutdown` must complete promptly even when a client's outbox
/// writer is parked inside a stalled send: the drain phase is bounded by
/// `drain_timeout` and close never joins the stuck writer.
#[test]
fn shutdown_completes_under_a_stalled_client() {
    let catalog = Arc::new(nms_catalog());
    let fast_hub = LocalHub::new();
    let slow_hub = LocalHub::new();
    let plan = Arc::new(FaultPlan::new());
    let mut config = ServerConfig::new(tmp("stalled-shutdown"));
    config.dlm.overload.drain_timeout = Duration::from_millis(200);
    let mut server = Server::spawn(
        Arc::clone(&catalog),
        config,
        vec![
            Box::new(fast_hub.clone()),
            Box::new(FaultyListener::wrap(
                Box::new(slow_hub.clone()),
                Arc::clone(&plan),
            )),
        ],
    )
    .unwrap();

    let updater = client_on(&fast_hub, "updater");
    let viewer = client_on(&slow_hub, "stalled-viewer");

    let mut txn = updater.begin().unwrap();
    let link = txn.create(updater.new_object("Link").unwrap()).unwrap();
    txn.commit().unwrap();
    let (_display, _id) = link_display(&viewer, link.oid, "map");

    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(&catalog, "Utilization", 0.01))
        .unwrap();
    txn.commit().unwrap();

    // Every further frame to the viewer costs its sender 2 s; queue a
    // burst so the outbox is non-empty and its writer is mid-stall when
    // shutdown starts.
    plan.set_delay(1000, Duration::from_secs(2));
    for i in 1..=10u32 {
        let mut txn = updater.begin().unwrap();
        txn.update(link.oid, |o| {
            o.set(&catalog, "Utilization", f64::from(i) / 100.0)
        })
        .unwrap();
        txn.commit().unwrap();
    }

    let start = Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    // Budget: accept-thread join (≤ ~100 ms) + bounded drain (200 ms per
    // stalled session) + scheduling slack — but nowhere near the 2 s
    // per-frame stall, let alone the 20 s backlog.
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown wedged behind a stalled client: {elapsed:?}"
    );
    drop(server);
}
