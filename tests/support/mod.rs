//! Shared helpers for the integration-test binaries.
#![allow(dead_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// RAII scratch directory: created unique on construction, removed on
/// drop (including panic unwinds), so failed runs do not accumulate
/// state under the system temp dir or poison a later run that reuses
/// the same name.
pub struct TempDir(PathBuf);

impl TempDir {
    /// A fresh directory namespaced by test binary, pid, and a
    /// process-wide counter (tests in one binary run concurrently).
    pub fn new(prefix: &str) -> Self {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join("displaydb-it").join(format!(
            "{prefix}-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
