//! Protocol-level integration: the two DLM deployments (integrated vs
//! agent), eager shipping, and message accounting.

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("displaydb-it-protocols")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct Deployment {
    _server: Server,
    _agent: Option<DlmAgent>,
    db_hub: LocalHub,
    dlm_hub: Option<LocalHub>,
    catalog: Arc<Catalog>,
}

impl Deployment {
    fn integrated(name: &str, dlm: DlmConfig) -> Self {
        let catalog = Arc::new(nms_catalog());
        let db_hub = LocalHub::new();
        let mut config = ServerConfig::new(tmp(name));
        config.dlm = dlm;
        let server = Server::spawn_local(Arc::clone(&catalog), config, &db_hub).unwrap();
        Self {
            _server: server,
            _agent: None,
            db_hub,
            dlm_hub: None,
            catalog,
        }
    }

    fn agent(name: &str, dlm: DlmConfig) -> Self {
        let catalog = Arc::new(nms_catalog());
        let db_hub = LocalHub::new();
        let server =
            Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(tmp(name)), &db_hub)
                .unwrap();
        let dlm_hub = LocalHub::new();
        let agent = DlmAgent::spawn(Arc::new(DlmCore::new(dlm)), Box::new(dlm_hub.clone()));
        Self {
            _server: server,
            _agent: Some(agent),
            db_hub,
            dlm_hub: Some(dlm_hub),
            catalog,
        }
    }

    fn client(&self, name: &str) -> Arc<DbClient> {
        match &self.dlm_hub {
            Some(dlm_hub) => DbClient::connect_with_agent(
                Box::new(self.db_hub.connect().unwrap()),
                Box::new(dlm_hub.connect().unwrap()),
                ClientConfig::named(name),
            )
            .unwrap(),
            None => DbClient::connect(
                Box::new(self.db_hub.connect().unwrap()),
                ClientConfig::named(name),
            )
            .unwrap(),
        }
    }
}

/// Both deployments must produce the same observable display behaviour.
fn refresh_scenario(deployment: &Deployment) {
    let viewer = deployment.client("viewer");
    let updater = deployment.client("updater");
    let catalog = &deployment.catalog;

    let mut txn = updater.begin().unwrap();
    let link = txn
        .create(
            updater
                .new_object("Link")
                .unwrap()
                .with(catalog, "Utilization", 0.2)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "view");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    // Agent-mode lock requests are fire-and-forget: allow settling.
    std::thread::sleep(Duration::from_millis(100));

    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(catalog, "Utilization", 0.9))
        .unwrap();
    txn.commit().unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        if display.object(do_id).unwrap().attr("Utilization") == Some(&Value::Float(0.9)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "display never refreshed"
        );
    }
}

#[test]
fn integrated_deployment_refreshes() {
    let d = Deployment::integrated("integrated", DlmConfig::default());
    refresh_scenario(&d);
}

#[test]
fn agent_deployment_refreshes() {
    let d = Deployment::agent("agent", DlmConfig::default());
    refresh_scenario(&d);
}

#[test]
fn agent_deployment_eager_shipping_refreshes() {
    let d = Deployment::agent(
        "agent-eager",
        DlmConfig {
            eager_shipping: true,
            ..DlmConfig::default()
        },
    );
    refresh_scenario(&d);
}

#[test]
fn eager_shipping_eliminates_read_roundtrip() {
    // The § 4.3 claim: eager shipping removes two of the three messages
    // on the refresh path (the read request and its reply). The claim is
    // about *whole-object* watching, so the display class here leaves
    // its compute step undeclared — a projectable class (DESIGN.md § 10)
    // gets in-place deltas and needs no read round-trip in either mode,
    // collapsing the comparison to 0 vs 0.
    let whole_object_link = || {
        displaydb::display::schema::DisplayClassBuilder::new("WholeObjectLink")
            .project(&["Utilization"])
            .compute("Color", |ctx| {
                let u = ctx.max_float("Utilization")?;
                Ok(Value::Int(i64::from(
                    displaydb::viz::utilization_color(u).to_u32(),
                )))
            })
            .build()
    };
    let run = |eager: bool, name: &str| -> u64 {
        let d = Deployment::integrated(
            name,
            DlmConfig {
                eager_shipping: eager,
                ..DlmConfig::default()
            },
        );
        let viewer = d.client("viewer");
        let updater = d.client("updater");
        let catalog = &d.catalog;

        let mut txn = updater.begin().unwrap();
        let link = txn
            .create(
                updater
                    .new_object("Link")
                    .unwrap()
                    .with(catalog, "Utilization", 0.2)
                    .unwrap(),
            )
            .unwrap();
        txn.commit().unwrap();

        let cache = Arc::new(DisplayCache::new());
        let display = Display::open(Arc::clone(&viewer), cache, "view");
        let do_id = display
            .add_object(&whole_object_link(), vec![link.oid])
            .unwrap();

        // Steady state reached; now count the viewer's outgoing frames
        // during 10 refresh rounds.
        let sent_before = viewer.conn().stats().sent.get();
        for i in 0..10 {
            let mut txn = updater.begin().unwrap();
            txn.update(link.oid, |o| {
                o.set(catalog, "Utilization", 0.3 + f64::from(i) * 0.05)
            })
            .unwrap();
            txn.commit().unwrap();
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            loop {
                display.wait_and_process(Duration::from_millis(50)).unwrap();
                let now = display.object(do_id).unwrap();
                if now.attr("Utilization") == Some(&Value::Float(0.3 + f64::from(i) * 0.05)) {
                    break;
                }
                assert!(std::time::Instant::now() < deadline);
            }
        }
        viewer.conn().stats().sent.get() - sent_before
    };

    let lazy_sent = run(false, "lazy-count");
    let eager_sent = run(true, "eager-count");
    // Lazy: each refresh issues a read request (+ callback acks). Eager:
    // only callback acks remain.
    assert!(
        eager_sent < lazy_sent,
        "eager shipping should reduce viewer messages: lazy={lazy_sent} eager={eager_sent}"
    );
}

#[test]
fn dlc_dedup_reduces_agent_traffic() {
    // § 4.2.1: one DLM lock message per object regardless of how many
    // local displays watch it.
    let d = Deployment::agent("dedup", DlmConfig::default());
    let viewer = d.client("viewer");
    let catalog = &d.catalog;

    let mut txn = viewer.begin().unwrap();
    let mut links = Vec::new();
    for _ in 0..5 {
        links.push(
            txn.create(
                viewer
                    .new_object("Link")
                    .unwrap()
                    .with(catalog, "Utilization", 0.5)
                    .unwrap(),
            )
            .unwrap()
            .oid,
        );
    }
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let class = color_coded_link("Utilization");
    let mut displays = Vec::new();
    for w in 0..4 {
        let display = Display::open(Arc::clone(&viewer), Arc::clone(&cache), format!("w{w}"));
        for &link in &links {
            display.add_object(&class, vec![link]).unwrap();
        }
        displays.push(display);
    }
    let stats = viewer.dlc().stats();
    assert_eq!(stats.local_lock_requests.get(), 4 * 5);
    assert_eq!(
        stats.dlm_lock_messages.get(),
        5,
        "DLC should deduplicate per-object lock traffic"
    );
    // Releases follow the same rule: only the last display frees the
    // object.
    for d in &displays {
        d.close().unwrap();
    }
    assert_eq!(stats.dlm_release_messages.get(), 5);
}
