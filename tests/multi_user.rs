//! Multi-user convergence: the paper's § 4.3 test setup — several
//! concurrent users plus a high-rate monitor process — must leave every
//! display consistent with the database once the system quiesces.

use displaydb::nms::{
    nms_catalog, spawn_refresher, MonitorConfig, MonitorProcess, NetworkMap, Topology,
    TopologyConfig, UserConfig, UserSession,
};
use displaydb::prelude::*;
use displaydb::viz::Rect;
use std::sync::Arc;
use std::time::Duration;

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("displaydb-it-multiuser")
        .join(format!("{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn four_users_one_monitor_converge() {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(tmp("converge"));
    config.lock.wait_timeout = Duration::from_secs(5);
    let _server = Server::spawn_local(Arc::clone(&catalog), config, &hub).unwrap();

    let gen =
        DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen")).unwrap();
    let topo = Topology::generate(
        &gen,
        &TopologyConfig {
            nodes: 12,
            links: 20,
            paths: 0,
            path_len: 0,
            seed: 1996,
        },
    )
    .unwrap();

    // The monitor process, high update rate (paper: "relatively high
    // update rate caused by the updating process").
    let monitor_client = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("monitor"),
    )
    .unwrap();
    let monitor = MonitorProcess::spawn(
        monitor_client,
        topo.links.clone(),
        MonitorConfig {
            rate_per_sec: 60.0,
            batch: 2,
            walk: 0.3,
            ..MonitorConfig::default()
        },
    );

    // Four users, each with their own client, map display and refresher.
    let mut user_threads = Vec::new();
    for u in 0..4u64 {
        let hub = hub.clone();
        let topo = topo.clone();
        user_threads.push(std::thread::spawn(move || {
            let client = DbClient::connect(
                Box::new(hub.connect().unwrap()),
                ClientConfig::named(format!("user-{u}")),
            )
            .unwrap();
            let cache = Arc::new(DisplayCache::new());
            let map = NetworkMap::build(&client, &cache, &topo, Rect::new(0.0, 0.0, 200.0, 200.0))
                .unwrap();
            let refresher = spawn_refresher(Arc::clone(&map.display));
            let objects: Vec<(Oid, DoId)> = topo
                .links
                .iter()
                .copied()
                .zip(map.link_dos.iter().copied())
                .collect();
            let report = UserSession::new(
                Arc::clone(&client),
                Arc::clone(&map.display),
                objects.clone(),
                UserConfig {
                    actions: 40,
                    update_fraction: 0.25,
                    zoom_fraction: 0.25,
                    think_time: Duration::from_millis(5),
                    seed: 100 + u,
                    ..UserConfig::default()
                },
            )
            .run()
            .unwrap();
            // Let in-flight notifications drain, then stop refreshing.
            std::thread::sleep(Duration::from_millis(800));
            refresher.stop();
            (client, map, objects, report)
        }));
    }

    let results: Vec<_> = user_threads
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();
    let monitor_commits = monitor.commits();
    monitor.stop();
    assert!(monitor_commits > 10, "monitor barely ran");

    // Quiesce: process any stragglers, then check convergence: every
    // display object equals the current database state.
    std::thread::sleep(Duration::from_millis(300));
    for (client, map, objects, report) in &results {
        map.display.process_pending().unwrap();
        for (oid, do_id) in objects {
            let db_util = client
                .read_fresh(*oid)
                .unwrap()
                .get(&catalog, "Utilization")
                .unwrap()
                .as_float()
                .unwrap();
            let display_util = map
                .display
                .object(*do_id)
                .unwrap()
                .attr("Utilization")
                .unwrap()
                .as_float()
                .unwrap();
            assert!(
                (db_util - display_util).abs() < 1e-9,
                "display diverged from database: {db_util} vs {display_util} on {oid}"
            );
        }
        // Progress sanity.
        let total = report.monitor.len() + report.zoom.len() + report.update.len();
        assert_eq!(total, 40);
    }
}

#[test]
fn display_locks_never_block_the_monitor() {
    // Display locks are non-restrictive: a wall of viewers must not slow
    // the updater's locks (compatibility with X, § 3.3).
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(tmp("nonblock")),
        &hub,
    )
    .unwrap();
    let gen =
        DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named("gen")).unwrap();
    let topo = Topology::generate(
        &gen,
        &TopologyConfig {
            nodes: 6,
            links: 10,
            paths: 0,
            path_len: 0,
            seed: 5,
        },
    )
    .unwrap();

    // Eight viewer clients, each display-locking every link.
    let mut viewers = Vec::new();
    for v in 0..8 {
        let client = DbClient::connect(
            Box::new(hub.connect().unwrap()),
            ClientConfig::named(format!("viewer-{v}")),
        )
        .unwrap();
        let cache = Arc::new(DisplayCache::new());
        let map =
            NetworkMap::build(&client, &cache, &topo, Rect::new(0.0, 0.0, 100.0, 100.0)).unwrap();
        viewers.push((client, map));
    }

    // The updater commits 50 transactions; none may fail or block.
    let updater = DbClient::connect(
        Box::new(hub.connect().unwrap()),
        ClientConfig::named("updater"),
    )
    .unwrap();
    let started = std::time::Instant::now();
    for i in 0..50 {
        let mut txn = updater.begin().unwrap();
        txn.update(topo.links[i % topo.links.len()], |o| {
            o.set(&catalog, "Utilization", (i as f64 / 50.0).clamp(0.0, 1.0))
        })
        .unwrap();
        txn.commit().unwrap();
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "updates crawled: {elapsed:?}"
    );
}
