//! The paper's motivating scenario (§ 1): a network operations console.
//!
//! A synthetic topology is generated and displayed as a network map with
//! color-coded links. A monitor process — "a separate process that was
//! continuously modifying attribute values ... simulating real-time
//! network monitoring" (§ 4.3) — commits utilization updates; the map
//! refreshes live via display-lock notifications and is rendered as
//! ASCII frames ('.' = low, '+' = moderate, '#' = high utilization).
//!
//! Run with: `cargo run --example network_monitor`

use displaydb::nms::{
    nms_catalog, spawn_refresher, MonitorConfig, MonitorProcess, NetworkMap, Topology,
    TopologyConfig,
};
use displaydb::prelude::*;
use displaydb::viz::Rect;
use std::sync::Arc;
use std::time::Duration;

fn main() -> DbResult<()> {
    let catalog = Arc::new(nms_catalog());
    let data_dir = std::env::temp_dir().join(format!("displaydb-nms-{}", std::process::id()));
    let hub = LocalHub::new();
    let _server = Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(&data_dir), &hub)?;

    // Operator client builds the network and the map display.
    let operator = DbClient::connect(Box::new(hub.connect()?), ClientConfig::named("operator"))?;
    let topo = Topology::generate(
        &operator,
        &TopologyConfig {
            nodes: 14,
            links: 24,
            paths: 3,
            path_len: 3,
            seed: 1996,
        },
    )?;
    println!(
        "topology: {} nodes, {} links, {} paths",
        topo.nodes.len(),
        topo.links.len(),
        topo.paths.len()
    );

    let display_cache = Arc::new(DisplayCache::new());
    let map = NetworkMap::build(
        &operator,
        &display_cache,
        &topo,
        Rect::new(0.0, 0.0, 640.0, 240.0),
    )?;
    let refresher = spawn_refresher(Arc::clone(&map.display));

    // The monitoring feed runs as its own client.
    let feed = DbClient::connect(Box::new(hub.connect()?), ClientConfig::named("telemetry"))?;
    let monitor = MonitorProcess::spawn(
        feed,
        topo.links.clone(),
        MonitorConfig {
            rate_per_sec: 40.0,
            batch: 3,
            walk: 0.35,
            ..MonitorConfig::default()
        },
    );

    // Show a few live frames.
    for frame in 1..=4 {
        std::thread::sleep(Duration::from_millis(600));
        println!("--- frame {frame} ---------------------------------------------");
        print!("{}", map.render_ascii(80, 24, 10.0));
        println!(
            "monitor: {} commits, {} objects updated | display: {} refreshes",
            monitor.commits(),
            monitor.objects_updated(),
            map.display.stats().refreshes.get()
        );
    }

    monitor.stop();
    refresher.stop();

    let stats = map.display.stats();
    if let Some(s) = stats.refresh_latency.summary() {
        println!(
            "\ncommit→screen refresh latency (ms, p50/p95/p99): {}",
            s.fmt_ms()
        );
    }
    println!(
        "database cache: {} objects / {} bytes; display cache: {} objects / {} bytes (ratio {:.1}x)",
        operator.cache().len(),
        operator.cache().used_bytes(),
        display_cache.len(),
        display_cache.used_bytes(),
        operator.cache().used_bytes() as f64 / display_cache.used_bytes().max(1) as f64,
    );
    map.display.close()?;
    let _ = std::fs::remove_dir_all(&data_dir);
    Ok(())
}
