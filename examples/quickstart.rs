//! Quickstart: one viewer, one updater, a live color-coded link.
//!
//! Reproduces figure 1 of the paper in miniature: a `Link` database
//! object with a `Utilization` attribute, displayed through a
//! `ColorCodedLink` display class. A second client updates the
//! utilization; the display lock notification refreshes the viewer
//! without polling.
//!
//! Run with: `cargo run --example quickstart`

use displaydb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> DbResult<()> {
    // --- Server -----------------------------------------------------------
    let catalog = Arc::new(displaydb::nms::nms_catalog());
    let data_dir =
        std::env::temp_dir().join(format!("displaydb-quickstart-{}", std::process::id()));
    let hub = LocalHub::new();
    let _server = Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(&data_dir), &hub)?;
    println!("server up (data dir: {})", data_dir.display());

    // --- Two clients ------------------------------------------------------
    let viewer = DbClient::connect(Box::new(hub.connect()?), ClientConfig::named("viewer"))?;
    let updater = DbClient::connect(Box::new(hub.connect()?), ClientConfig::named("updater"))?;

    // --- A Link object ----------------------------------------------------
    let link_oid = {
        let mut txn = updater.begin()?;
        let link = txn.create(
            updater
                .new_object("Link")?
                .with(&catalog, "Name", "atl-dca-oc48")?
                .with(&catalog, "Utilization", 0.15)?
                .with(&catalog, "CircuitId", "CKT-96-000001")?,
        )?;
        txn.commit()?;
        link.oid
    };
    println!("created {link_oid}");

    // --- The viewer's display ---------------------------------------------
    let display_cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), display_cache, "link-monitor");
    let class = color_coded_link("Utilization");
    let do_id = display.add_object(&class, vec![link_oid])?;

    let describe = |label: &str| {
        let obj = display.object(do_id).expect("display object");
        let util = obj.attr("Utilization").cloned();
        let color = match obj.attr("Color") {
            Some(Value::Int(rgb)) => format!("#{rgb:06x}"),
            _ => "?".into(),
        };
        println!("{label}: utilization={util:?} color={color}");
    };
    describe("initial ");

    // --- Updates propagate ------------------------------------------------
    for target in [0.55, 0.92] {
        let mut txn = updater.begin()?;
        txn.update(link_oid, |obj| obj.set(&catalog, "Utilization", target))?;
        txn.commit()?;
        // The viewer holds a display lock: the post-commit notification
        // arrives and the display refreshes itself.
        let handled = display.wait_and_process(Duration::from_secs(5))?;
        assert!(handled > 0, "no notification arrived");
        describe(&format!("util→{target:.2}"));
    }

    let stats = display.stats();
    println!(
        "display refreshed {} time(s); refresh latency {}",
        stats.refreshes.get(),
        stats
            .refresh_latency
            .summary()
            .map(|s| format!("p50/p95/p99 = {} ms", s.fmt_ms()))
            .unwrap_or_default()
    );
    println!(
        "viewer database cache: {} objects; display cache: {} objects",
        viewer.cache().len(),
        display.cache().len()
    );
    display.close()?;
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("done.");
    Ok(())
}
