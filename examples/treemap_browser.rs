//! Hardware-hierarchy browsing: Tree-Map + PDQ tree-browser (paper § 4).
//!
//! The prototype displayed "complex hardware hierarchies" with two
//! visualization techniques. This example generates a site → building →
//! room → rack → device containment hierarchy, renders a load-weighted
//! treemap of it (live: a monitor process keeps changing device loads),
//! and browses it with PDQ dynamic queries ("show only racks whose load
//! exceeds 0.5").
//!
//! Run with: `cargo run --example treemap_browser`

use displaydb::nms::topology::{HardwareConfig, HardwareTree};
use displaydb::nms::{nms_catalog, MonitorConfig, MonitorProcess};
use displaydb::prelude::*;
use displaydb::viz::pdq::{PdqBrowser, PdqNode, RangeFilter};
use displaydb::viz::render::PpmRenderer;
use displaydb::viz::{slice_and_dice, squarify, Color, Rect, Scene, Shape};
use std::sync::Arc;
use std::time::Duration;

fn main() -> DbResult<()> {
    let catalog = Arc::new(nms_catalog());
    let data_dir = std::env::temp_dir().join(format!("displaydb-treemap-{}", std::process::id()));
    let hub = LocalHub::new();
    let _server = Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(&data_dir), &hub)?;
    let client = DbClient::connect(Box::new(hub.connect()?), ClientConfig::named("browser"))?;

    // 1 site → 2 buildings → 2 rooms → 3 racks → 4 devices.
    let hw = HardwareTree::generate(&client, &HardwareConfig::default())?;
    println!(
        "hardware hierarchy: {} objects, {} leaves",
        hw.all.len(),
        hw.leaves().len()
    );

    // Live load updates on the devices.
    let feed = DbClient::connect(Box::new(hub.connect()?), ClientConfig::named("feed"))?;
    let monitor = MonitorProcess::spawn(
        feed,
        hw.leaves(),
        MonitorConfig {
            rate_per_sec: 50.0,
            batch: 4,
            walk: 0.4,
            attr: "LoadPct".into(),
            ..MonitorConfig::default()
        },
    );
    std::thread::sleep(Duration::from_millis(400));

    // ---- Tree-Map -------------------------------------------------------
    let canvas = Rect::new(0.0, 0.0, 640.0, 360.0);
    let tree = hw.to_tree(&client, true)?; // weights = live LoadPct
    let cells = squarify(&tree, canvas);
    println!(
        "squarified treemap: {} cells ({} leaves)",
        cells.len(),
        cells.iter().filter(|c| c.is_leaf).count()
    );

    // Render to a PPM image, shading leaves by their load.
    let mut scene = Scene::new();
    for cell in &cells {
        if !cell.is_leaf {
            continue;
        }
        let load = client
            .read(cell.data)?
            .get(&catalog, "LoadPct")?
            .as_float()?;
        scene.add(
            Shape::Rect {
                rect: cell.rect.inset(1.0),
                fill: displaydb::viz::color::utilization_ramp(load),
                border: Some(Color::BLACK),
            },
            cell.depth as i32,
        );
    }
    let mut renderer = PpmRenderer::new(640, 360);
    renderer.draw_scene(&scene);
    let out = std::env::temp_dir().join("displaydb-treemap.ppm");
    std::fs::write(&out, renderer.to_ppm())?;
    println!("treemap image written to {}", out.display());

    // Compare with the original slice-and-dice layout.
    let sad = slice_and_dice(&tree, canvas);
    let aspect = |r: Rect| (r.w / r.h).max(r.h / r.w);
    let avg = |cells: &[displaydb::viz::treemap::LayoutCell<Oid>]| {
        let leaves: Vec<f32> = cells
            .iter()
            .filter(|c| c.is_leaf && c.rect.area() > 0.0)
            .map(|c| aspect(c.rect))
            .collect();
        leaves.iter().sum::<f32>() / leaves.len() as f32
    };
    println!(
        "mean leaf aspect ratio: slice-and-dice {:.2} vs squarified {:.2}",
        avg(&sad),
        avg(&cells)
    );

    // ---- PDQ tree-browser ------------------------------------------------
    // Build the browsable tree with live LoadPct attributes.
    fn to_pdq(
        client: &Arc<DbClient>,
        catalog: &Catalog,
        hw: &HardwareTree,
        idx: usize,
        kids: &[Vec<usize>],
    ) -> DbResult<PdqNode<Oid>> {
        let (oid, _, _, _) = hw.structure[idx];
        let obj = client.read(oid)?;
        let name = obj.get(catalog, "Name")?.as_str()?.to_string();
        let load = obj.get(catalog, "LoadPct")?.as_float()?;
        let mut node = PdqNode::new(oid, name).with_attr("load", load);
        node.children = kids[idx]
            .iter()
            .map(|&k| to_pdq(client, catalog, hw, k, kids))
            .collect::<DbResult<Vec<_>>>()?;
        Ok(node)
    }
    let mut kids: Vec<Vec<usize>> = vec![Vec::new(); hw.structure.len()];
    for (idx, &(_, parent, depth, _)) in hw.structure.iter().enumerate() {
        if depth > 0 {
            kids[parent].push(idx);
        }
    }
    let root = to_pdq(&client, &catalog, &hw, 0, &kids)?;

    let mut browser = PdqBrowser::new();
    let full = browser.layout(&root, Rect::new(0.0, 0.0, 1000.0, 600.0));
    println!(
        "\nPDQ browser, no filters: {} visible nodes",
        full.cells.len()
    );

    browser.prune = true;
    browser.add_filter(4, RangeFilter::new("load", 0.5, 1.0)); // devices (level 4)
    let filtered = browser.layout(&root, Rect::new(0.0, 0.0, 1000.0, 600.0));
    println!(
        "dynamic query `device load >= 0.5` with pruning: {} visible, {} pruned",
        filtered.cells.len(),
        filtered.pruned_count
    );
    for level in 0..=4 {
        let at_level = filtered.cells.iter().filter(|c| c.level == level).count();
        println!("  level {level}: {at_level} nodes");
    }

    monitor.stop();
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("done.");
    Ok(())
}
