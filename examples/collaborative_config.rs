//! Collaborative configuration management with the early-notify
//! protocol (§ 3.3).
//!
//! Two operators look at the same links. When operator A starts editing
//! one (acquires an exclusive lock), operator B's display immediately
//! marks it "being updated" — deterring a conflicting edit. After A
//! commits, B's display clears the mark and refreshes to the new state;
//! after an abort it simply clears the mark.
//!
//! This example also demonstrates the **agent** deployment: the Display
//! Lock Manager runs as a standalone service beside the database server
//! (the paper's figure 3 architecture), and updating clients report
//! their own intents and commits to it.
//!
//! Run with: `cargo run --example collaborative_config`

use displaydb::nms::nms_catalog;
use displaydb::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> DbResult<()> {
    let catalog = Arc::new(nms_catalog());
    let data_dir = std::env::temp_dir().join(format!("displaydb-collab-{}", std::process::id()));

    // Database server and, separately, the DLM agent (early-notify,
    // eager shipping off).
    let db_hub = LocalHub::new();
    let _server = Server::spawn_local(Arc::clone(&catalog), ServerConfig::new(&data_dir), &db_hub)?;
    let dlm_hub = LocalHub::new();
    let _agent = DlmAgent::spawn(
        Arc::new(DlmCore::new(DlmConfig {
            protocol: NotifyProtocol::EarlyNotify,
            ..DlmConfig::default()
        })),
        Box::new(dlm_hub.clone()),
    );
    println!("database server and DLM agent up (agent deployment, early-notify)");

    // Two operators, each with a DB connection and a DLM connection.
    let connect = |name: &str| -> DbResult<Arc<DbClient>> {
        DbClient::connect_with_agent(
            Box::new(db_hub.connect()?),
            Box::new(dlm_hub.connect()?),
            ClientConfig::named(name),
        )
    };
    let alice = connect("alice")?;
    let bob = connect("bob")?;

    // Alice provisions a couple of links.
    let mut txn = alice.begin()?;
    let mut links = Vec::new();
    for i in 0..3 {
        let link = txn.create(
            alice
                .new_object("Link")?
                .with(&catalog, "Name", format!("backbone-{i}"))?
                .with(&catalog, "Utilization", 0.3)?,
        )?;
        links.push(link.oid);
    }
    txn.commit()?;

    // Bob's display watches all of them.
    let bob_cache = Arc::new(DisplayCache::new());
    let bob_display = Display::open(Arc::clone(&bob), bob_cache, "bob-console");
    let class = width_coded_link("Utilization");
    let mut bob_dos = Vec::new();
    for &link in &links {
        bob_dos.push(bob_display.add_object(&class, vec![link])?);
    }
    // Display-lock requests are fire-and-forget; give the agent a moment.
    std::thread::sleep(Duration::from_millis(100));

    // --- Alice starts editing backbone-0 ------------------------------
    let mut edit = alice.begin()?;
    edit.lock_exclusive(links[0])?;
    bob_display.wait_and_process(Duration::from_secs(5))?;
    let marked = bob_display.object(bob_dos[0]).unwrap().marked_by;
    println!("alice locked backbone-0 → bob sees it marked by {marked:?}");
    assert!(marked.is_some());

    // Bob's tooling steers him away from marked objects (conflict
    // avoidance — the paper: "update conflicts and therefore transaction
    // aborts can be significantly decreased").
    let victim = bob_dos
        .iter()
        .zip(&links)
        .find(|(do_id, _)| {
            bob_display
                .object(**do_id)
                .is_some_and(|o| o.marked_by.is_none())
        })
        .map(|(_, oid)| *oid)
        .expect("an unmarked link");
    let mut bob_txn = bob.begin()?;
    bob_txn.update(victim, |o| o.set(&catalog, "Utilization", 0.6))?;
    bob_txn.commit()?;
    println!("bob edited an unmarked link instead ({victim}) — no conflict");

    // --- Alice commits -------------------------------------------------
    edit.update(links[0], |o| o.set(&catalog, "Utilization", 0.85))?;
    edit.commit()?;
    // Bob gets Resolved(committed) + Updated: the mark clears and the
    // width refreshes.
    let mut waited = 0;
    while waited < 50 {
        bob_display.wait_and_process(Duration::from_millis(100))?;
        let obj = bob_display.object(bob_dos[0]).unwrap();
        if obj.marked_by.is_none() && obj.attr("Utilization") == Some(&Value::Float(0.85)) {
            break;
        }
        waited += 1;
    }
    let obj = bob_display.object(bob_dos[0]).unwrap();
    println!(
        "alice committed → bob sees utilization={:?}, width={:?}, mark cleared={}",
        obj.attr("Utilization"),
        obj.attr("Width"),
        obj.marked_by.is_none()
    );
    assert_eq!(obj.attr("Utilization"), Some(&Value::Float(0.85)));
    assert!(obj.marked_by.is_none());

    // --- An aborted edit just clears the mark ---------------------------
    let mut doomed = alice.begin()?;
    doomed.lock_exclusive(links[1])?;
    bob_display.wait_and_process(Duration::from_secs(5))?;
    assert!(bob_display.object(bob_dos[1]).unwrap().marked_by.is_some());
    doomed.abort()?;
    let mut waited = 0;
    while waited < 50 && bob_display.object(bob_dos[1]).unwrap().marked_by.is_some() {
        bob_display.wait_and_process(Duration::from_millis(100))?;
        waited += 1;
    }
    println!(
        "alice aborted → bob's mark cleared={}, value untouched={:?}",
        bob_display.object(bob_dos[1]).unwrap().marked_by.is_none(),
        bob_display.object(bob_dos[1]).unwrap().attr("Utilization"),
    );

    bob_display.close()?;
    let _ = std::fs::remove_dir_all(&data_dir);
    println!("done.");
    Ok(())
}
