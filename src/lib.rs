//! # displaydb
//!
//! A faithful, from-scratch reproduction of
//! *"Consistency and Performance of Concurrent Interactive Database
//! Applications"* (Stathatos, Kelley, Roussopoulos, Baras — ICDE 1996):
//! **display schemas**, **display caching**, and **display locks** for
//! multi-user interactive database applications, together with every
//! substrate the paper depended on — a client-server object DBMS with
//! WAL durability and callback cache consistency, the Display Lock
//! Manager (both as a standalone agent and integrated into the server's
//! lock manager), headless Tree-Map / PDQ tree-browser visualization,
//! and a network-management application.
//!
//! ## Quick start
//!
//! ```no_run
//! use displaydb::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. A server over the NMS schema.
//! let catalog = Arc::new(displaydb::nms::nms_catalog());
//! let hub = LocalHub::new();
//! let _server = Server::spawn_local(
//!     Arc::clone(&catalog),
//!     ServerConfig::new("/tmp/displaydb-demo"),
//!     &hub,
//! ).unwrap();
//!
//! // 2. A client with a database cache and a display cache.
//! let client = DbClient::connect(
//!     Box::new(hub.connect().unwrap()),
//!     ClientConfig::named("operator"),
//! ).unwrap();
//! let display_cache = Arc::new(DisplayCache::new());
//!
//! // 3. A display showing a color-coded link (figure 1 of the paper).
//! let display = Display::open(Arc::clone(&client), display_cache, "map");
//! // ... create a Link object, then:
//! // display.add_object(&color_coded_link("Utilization"), vec![link_oid]);
//! // display.wait_and_process(timeout);   // live refresh on updates
//! ```
//!
//! See `examples/` for full runnable scenarios and `displaydb-bench` for
//! the experiment harness that regenerates the paper's evaluation.

pub use displaydb_client as client;
pub use displaydb_common as common;
pub use displaydb_display as display;
pub use displaydb_dlm as dlm;
pub use displaydb_lockmgr as lockmgr;
pub use displaydb_nms as nms;
pub use displaydb_schema as schema;
pub use displaydb_server as server;
pub use displaydb_storage as storage;
pub use displaydb_viz as viz;
pub use displaydb_wire as wire;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use displaydb_client::{
        ChannelFactory, ClientConfig, ClientTxn, DbClient, DlcEvent, SessionInfo, Supervisor,
    };
    pub use displaydb_common::backoff::ReconnectPolicy;
    pub use displaydb_common::metrics::RecoveryStats;
    pub use displaydb_common::{ClientId, DbError, DbResult, DisplayId, Oid, TxnId};
    pub use displaydb_common::{DurableLogConfig, OverloadConfig};
    pub use displaydb_display::schema::{color_coded_link, width_coded_link};
    pub use displaydb_display::{
        Display, DisplayCache, DisplayClassBuilder, DisplayClassDef, DisplayObject, DoId,
    };
    pub use displaydb_dlm::{DlmAgent, DlmConfig, DlmCore, DlmEvent, NotifyProtocol, UpdateInfo};
    pub use displaydb_schema::{AttrType, Catalog, DbObject, Value};
    pub use displaydb_server::{Server, ServerConfig};
    pub use displaydb_wire::{
        FaultPlan, FaultyChannel, FaultyListener, LocalHub, MeteredChannel, SimNetConfig,
        TcpChannel, WireMeter,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let _ = Oid::new(1);
        let _ = DisplayCache::new();
        let config = DlmConfig::default();
        assert_eq!(config.protocol, NotifyProtocol::PostCommit);
    }
}
