//! MPMC channels with the `crossbeam-channel` API shape.
//!
//! Backed by a `Mutex<VecDeque>` + `Condvar`; both [`Sender`] and
//! [`Receiver`] are cloneable, and disconnection is observed when the last
//! handle on the other side drops. Capacity on [`bounded`] channels is
//! enforced by [`Sender::try_send`] (returns [`TrySendError::Full`]);
//! blocking [`Sender::send`] stays non-blocking and ignores the bound —
//! the workspace's backpressure points all go through `try_send`.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
    /// `Some(cap)` for [`bounded`] channels; checked only by `try_send`.
    cap: Option<usize>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when every sender is dropped.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC); the channel
/// disconnects for senders when every receiver is dropped.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`]; carries the unsent message.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is bounded and at capacity.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and every sender has been dropped.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline expired with nothing queued.
    Timeout,
    /// Empty and every sender has been dropped.
    Disconnected,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

impl<T> std::fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Full(_) => write!(f, "sending on a full channel"),
            Self::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TrySendError<T> {}

fn shared<T>(cap: Option<usize>) -> Arc<Shared<T>> {
    Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
            cap,
        }),
        cv: Condvar::new(),
    })
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let s = shared(cap);
    (
        Sender {
            shared: Arc::clone(&s),
        },
        Receiver { shared: s },
    )
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a bounded channel. The capacity is enforced by
/// [`Sender::try_send`]; the blocking [`Sender::send`] ignores it (it
/// never blocks in this stand-in), matching how the workspace uses these
/// channels — backpressure points call `try_send`, RPC reply slots and
/// accept queues use `send`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap))
}

impl<T> Sender<T> {
    /// Queue a message; fails only when every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.receivers == 0 {
            return Err(SendError(value));
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Queue a message without blocking; on a bounded channel at
    /// capacity, fails with [`TrySendError::Full`] instead of growing the
    /// queue.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = st.cap {
            if st.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.cv.notify_one();
        Ok(())
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            self.shared.cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Take a queued message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        match st.queue.pop_front() {
            Some(v) => Ok(v),
            None if st.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Block until a message arrives or the channel disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self.shared.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Block with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = st.queue.pop_front() {
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .shared
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain everything currently queued without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers += 1;
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .receivers -= 1;
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sender").finish()
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Receiver").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_when_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn disconnect_when_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(7).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(2)), Ok(7));
        t.join().unwrap();
    }

    #[test]
    fn try_send_honors_bound_then_frees_on_recv() {
        let (tx, rx) = bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(5).unwrap();
        let a = rx.try_recv().ok();
        let b = rx2.try_recv().ok();
        assert!(a.is_some() ^ b.is_some());
        // Dropping one receiver clone keeps the channel alive.
        drop(rx2);
        tx.send(6).unwrap();
        assert_eq!(rx.recv(), Ok(6));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(t.join().unwrap(), Ok(42));
    }
}
