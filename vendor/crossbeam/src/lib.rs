//! Offline stand-in for the `crossbeam` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! API-compatible implementations of exactly the surface it uses. For
//! `crossbeam` that is the [`channel`] module: cloneable MPMC senders and
//! receivers with blocking, timed and non-blocking receive.

pub mod channel;
