//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/type surface the workspace's benches use with a
//! simple calibrated-loop timer: each benchmark closure is warmed up, run
//! for a short measured window, and reported as mean ns/iter on stdout.
//! Under `cargo test` (which executes `harness = false` bench binaries)
//! the iteration budget collapses to a smoke run so the suite stays fast.

use std::time::{Duration, Instant};

/// Measurement configuration and sink.
pub struct Criterion {
    /// Target measurement window per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--test` is what cargo passes when running bench targets during
        // `cargo test`; keep that mode to a smoke run.
        let smoke = std::env::args().any(|a| a == "--test");
        Self {
            measure_for: if smoke {
                Duration::from_millis(2)
            } else {
                Duration::from_millis(200)
            },
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { c: self }
    }

    /// Run one named benchmark.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        run_bench(&id.to_string(), self.measure_for, f);
    }

    /// Run one named benchmark with an input.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_bench(&id.to_string(), self.measure_for, |b| f(b, input));
    }
}

/// A named group; shares [`Criterion`]'s configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Record the per-iteration payload (reported, not enforced).
    pub fn throughput(&mut self, t: Throughput) {
        match t {
            Throughput::Bytes(n) => println!("  throughput: {n} bytes/iter"),
            Throughput::Elements(n) => println!("  throughput: {n} elements/iter"),
        }
    }

    /// Shrink or grow the sample budget (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one named benchmark in the group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnMut(&mut Bencher)) {
        self.c.bench_function(id, f);
    }

    /// Run one named benchmark with an input in the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) {
        self.c.bench_with_input(id, input, f);
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench(name: &str, measure_for: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up / calibration pass.
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = (measure_for.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    b.iters = target;
    b.elapsed = Duration::ZERO;
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / target as f64;
    println!("  bench {name}: {ns:.0} ns/iter ({target} iters)");
}

/// Passed to benchmark closures; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over the calibrated iteration count.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }

    /// Time `routine` over per-iteration inputs built by `setup`
    /// (setup time excluded).
    pub fn iter_batched<I, T>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> T,
        _size: BatchSize,
    ) {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Batch sizing hint (ignored by the stand-in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Per-iteration payload for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier with a parameter, e.g. `BenchmarkId::new("get", 64)`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// Re-export for benches that use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_closures() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(1),
        };
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(8));
        group.bench_with_input(BenchmarkId::new("in", 4), &4u64, |b, &n| b.iter(|| n * 2));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
