//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's API shape: `lock()`
//! returns a guard directly (poisoning is swallowed — a panicking thread
//! does not wedge the lock for everyone else), and [`Condvar::wait`] takes
//! the guard by `&mut` instead of by value.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive; `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar`] can
/// temporarily take the underlying std guard during a wait.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A condition variable compatible with [`Mutex`]/[`MutexGuard`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and sleep until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Like [`Condvar::wait`], with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock; `read()`/`write()` never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_timeout_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let res = {
            let mut g = pair.0.lock();
            pair.1.wait_for(&mut g, Duration::from_millis(10))
        };
        assert!(res.timed_out());

        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            let r = pair.1.wait_for(&mut g, Duration::from_secs(2));
            assert!(!r.timed_out(), "missed the notify");
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
