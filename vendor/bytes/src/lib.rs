//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable immutable byte buffer (shared via
//! `Arc`), [`BytesMut`] a growable builder that freezes into one, and
//! [`BufMut`] the little-endian append trait the wire codec writes through.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// A new buffer holding `self[range]`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Self::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        *self.data == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Little-endian append operations shared by growable buffers.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Clear the buffer, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_equality() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_u16_le(0x0302);
        m.put_u64_le(0x0b0a090807060504);
        m.put_f64_le(1.5);
        assert_eq!(m.len(), 19);
        let b = m.freeze();
        assert_eq!(&b[..3], &[1, 2, 3]);
        assert_eq!(b.clone(), b);
        assert_eq!(b.slice(1..3), Bytes::copy_from_slice(&[2, 3]));
    }

    #[test]
    fn from_and_deref() {
        let b = Bytes::from(vec![9u8; 4]);
        assert_eq!(b.len(), 4);
        assert!(b.iter().all(|&x| x == 9));
        assert_eq!(b.to_vec(), vec![9u8; 4]);
    }
}
