//! Offline stand-in for the `rand` crate (0.10 API names).
//!
//! Provides [`rngs::StdRng`] (xoshiro256**), [`SeedableRng::seed_from_u64`]
//! and the [`RngExt::random_range`] sampling extension over integer and
//! float ranges — the surface the workspace's topology/workload generators
//! use. Deterministic for a given seed, which is exactly what the
//! experiment harness wants.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw word from the generator.
    fn next_u64(&mut self) -> u64;

    /// Next `u32` (upper bits of a word).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Derive a full seed from a single `u64` (splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Standard generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The default deterministic generator: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from `rng` uniformly over the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                start + (end - start) * unit as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods for any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform draw from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random() < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Compatibility alias: pre-0.10 code spells the extension trait `Rng`.
pub use self::RngExt as Rng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.random_range(-0.3f64..0.3);
            assert!((-0.3..0.3).contains(&f));
            let g = rng.random_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
            let s = rng.random_range(0.5f32..2.0);
            assert!((0.5..2.0).contains(&s));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
