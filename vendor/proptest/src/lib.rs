//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API the workspace uses —
//! [`Strategy`] with `prop_map`/`prop_filter`, [`any`], range and string
//! strategies, [`collection::vec`], `prop_oneof!`, and the `proptest!` /
//! `prop_assert!` macros — over a deterministic per-test RNG. Failing
//! inputs are reported with their case index and seed; there is no
//! shrinking. Case count defaults to 64 and can be raised with
//! `PROPTEST_CASES`.

use std::marker::PhantomData;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn below(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (regenerating, bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Chain a dependent strategy.
    fn prop_flat_map<U, S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy<Value = U>,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
#[derive(Clone)]
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(0, self.options.len());
        self.options[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (edge-case-biased for numbers).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Bias 1-in-8 toward boundary values to shake out edge bugs.
                if rng.next_u64().is_multiple_of(8) {
                    const EDGES: [$t; 4] = [0, 1, <$t>::MAX, <$t>::MIN];
                    EDGES[(rng.next_u64() % 4) as usize]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64().is_multiple_of(2)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        if rng.next_u64().is_multiple_of(8) {
            const EDGES: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NAN,
                f64::EPSILON,
            ];
            EDGES[(rng.next_u64() % 8) as usize]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128 + 1) as u128;
                let v = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + v) as $t
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * (rng.unit() as $t)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// String pattern strategies: supports the `.{lo,hi}` regex form the
/// workspace uses (a bounded-length string of arbitrary characters). Other
/// patterns fall back to a short arbitrary string.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = if lo == hi { lo } else { rng.below(lo, hi + 1) };
        let mut s = String::with_capacity(len * 2);
        for _ in 0..len {
            // Mostly printable ASCII; 1-in-8 multi-byte to exercise UTF-8.
            if rng.next_u64().is_multiple_of(8) {
                const WIDE: [char; 8] = ['é', 'λ', 'Ω', 'ß', '中', '∞', '🦀', '\u{200b}'];
                s.push(WIDE[(rng.next_u64() % 8) as usize]);
            } else {
                s.push((0x20 + (rng.next_u64() % 0x5f)) as u8 as char);
            }
        }
        s
    }
}

/// Parse `.{lo,hi}` patterns; `None` for anything else.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element-count bounds for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.below(self.size.lo, self.size.hi + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner + macros
// ---------------------------------------------------------------------------

/// Test-execution plumbing used by the `proptest!` macro.
pub mod test_runner {
    use super::TestRng;

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Run `f` over the configured number of deterministic cases,
    /// panicking with case/seed context on the first failure.
    pub fn run(name: &str, mut f: impl FnMut(&mut TestRng) -> Result<(), String>) {
        let cases: u64 = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        let seed: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name));
        for case in 0..cases {
            let mut rng = TestRng::new(seed.wrapping_add(case.wrapping_mul(0x9e37_79b9)));
            if let Err(msg) = f(&mut rng) {
                panic!(
                    "proptest `{name}` failed at case {case}/{cases} \
                     (rerun with PROPTEST_SEED={seed}): {msg}"
                );
            }
        }
    }
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |prop_rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), prop_rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property test (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assert_eq failed at {}:{}: {:?} != {:?}",
                file!(), line!(), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assert_eq failed at {}:{}: {:?} != {:?}: {}",
                file!(), line!(), l, r, format!($($fmt)+)
            ));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assert_ne failed at {}:{}: both {:?}",
                file!(),
                line!(),
                l
            ));
        }
    }};
}

/// Everything a property test needs, re-exported flat.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, Strategy, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let v = crate::Strategy::generate(&(3u64..9), &mut rng);
            assert!((3..9).contains(&v));
            let xs = crate::Strategy::generate(&crate::collection::vec(0u8..5, 1..4), &mut rng);
            assert!((1..4).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let s = crate::Strategy::generate(&".{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    proptest! {
        #[test]
        fn macro_machinery_works(x in 0u64..100, (a, b) in (0u8..4, any::<bool>()),
                                 s in ".{1,8}") {
            prop_assert!(x < 100);
            prop_assert!(a < 4, "a was {}", a);
            prop_assert_eq!(b, b);
            prop_assert!(!s.is_empty());
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u64..10).prop_map(|n| n * 2),
            (100u64..110).prop_map(|n| n),
        ]) {
            prop_assert!(v < 20 || (100..110).contains(&v));
        }
    }
}
