//! Findings, the committed allowlist, and human-readable rendering.

/// Rule identifiers (stable strings — they key allowlist entries).
pub mod rules {
    /// A lock acquired while a same-or-lower-ranked lock is held.
    pub const ORDER: &str = "lock-order-inversion";
    /// A cycle in the observed acquisition graph (unranked locks).
    pub const CYCLE: &str = "lock-order-cycle";
    /// A potentially blocking operation under a live guard.
    pub const BLOCKING: &str = "blocking-under-guard";
    /// A poison-propagating `.lock().unwrap()` on a request path.
    pub const POISON: &str = "poison-unwrap";
}

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (see [`rules`]).
    pub rule: &'static str,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The lock involved: a registry name like `conn.pending`, or a
    /// `file.receiver` key for unranked locks.
    pub lock: String,
    /// Rule-specific detail (the other lock, the blocking call, …).
    pub detail: String,
}

impl Finding {
    /// Render as a compiler-style warning line.
    pub fn render(&self) -> String {
        format!(
            "warning[{}]: {}\n  --> {}:{}\n",
            self.rule,
            self.message(),
            self.file,
            self.line
        )
    }

    fn message(&self) -> String {
        match self.rule {
            rules::ORDER => format!(
                "acquiring '{}' while holding '{}' violates the declared hierarchy",
                self.detail, self.lock
            ),
            rules::CYCLE => format!("acquisition cycle: {}", self.detail),
            rules::BLOCKING => format!(
                "potentially blocking call `{}` while holding '{}'",
                self.detail, self.lock
            ),
            rules::POISON => format!(
                "`{}` propagates poisoning on a request path; use lock_or_recover() \
                 (or an OrderedMutex, whose lock() recovers)",
                self.detail
            ),
            _ => self.detail.clone(),
        }
    }
}

/// One allowlist entry: `rule:path-suffix:needle`.
///
/// A finding is allowlisted when the rule matches exactly, the file path
/// ends with (or contains) `path-suffix`, and — if `needle` is nonempty
/// — the lock name or detail contains `needle`. Lines starting with `#`
/// and blank lines are comments.
#[derive(Clone, Debug)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub needle: String,
    /// Source line in the allowlist file (for stale-entry reporting).
    pub line: u32,
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parse the allowlist file contents.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, ':');
            let rule = parts.next().unwrap_or_default().trim().to_string();
            let path = parts.next().unwrap_or_default().trim().to_string();
            let needle = parts.next().unwrap_or_default().trim().to_string();
            entries.push(AllowEntry {
                rule,
                path,
                needle,
                line: idx as u32 + 1,
            });
        }
        Allowlist { entries }
    }

    /// The index of the first entry covering `finding`, if any.
    pub fn matches(&self, finding: &Finding) -> Option<usize> {
        self.entries.iter().position(|e| {
            e.rule == finding.rule
                && (e.path.is_empty() || finding.file.contains(&e.path))
                && (e.needle.is_empty()
                    || finding.lock.contains(&e.needle)
                    || finding.detail.contains(&e.needle))
        })
    }
}
