//! Workspace lock-safety linter.
//!
//! Static companion to the runtime lock-ordering audit in
//! `displaydb_common::sync` (`--features lock-audit`): the runtime layer
//! catches whatever ordering a test actually executes; this layer reads
//! every source file and flags what *could* execute. Both are keyed by
//! the same declared registry — parsed from `common/src/sync.rs`, never
//! duplicated — so the two layers cannot drift.
//!
//! See `DESIGN.md` §11 for the hierarchy, the rule set, and the
//! allowlist policy.

pub mod lexer;
pub mod registry;
pub mod report;
pub mod scan;

pub use registry::Registry;
pub use report::{Allowlist, Finding};
pub use scan::{analyze, Analysis, ScanOptions, SourceFile};

/// Lex and analyze `(path, contents)` pairs against the registry parsed
/// from `sync_source`. The main entry point for both the CLI and the
/// self-tests.
pub fn check_sources(
    sync_source: &str,
    files: &[(String, String)],
    opts: &ScanOptions,
) -> Analysis {
    let registry = Registry::parse(sync_source);
    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(p, text)| SourceFile::new(p.clone(), text))
        .collect();
    analyze(&sources, &registry, opts)
}
