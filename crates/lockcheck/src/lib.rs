//! Compatibility shim: `lockcheck` is now the lock rule family of the
//! workspace invariant linter in `crates/invcheck` (DESIGN.md §15).
//!
//! Everything re-exported here keeps the historical `lockcheck::…`
//! paths compiling. New code should depend on `invcheck` directly.

pub use invcheck::lexer;
pub use invcheck::registry;
pub use invcheck::report;
pub use invcheck::scan;

pub use invcheck::{analyze, Analysis, Registry, ScanOptions, SourceFile};
pub use invcheck::{Allowlist, Finding};

/// Lex and analyze `(path, contents)` pairs against the registry parsed
/// from `sync_source`, lock rules only (the historical behaviour).
pub fn check_sources(
    sync_source: &str,
    files: &[(String, String)],
    opts: &ScanOptions,
) -> Analysis {
    invcheck::check_sources(sync_source, files, opts)
}
