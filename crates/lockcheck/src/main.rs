//! `lockcheck` CLI — deprecated shim.
//!
//! The linter moved to `crates/invcheck`, which runs the lock family
//! alongside durability, protocol, and trace rules; this binary keeps
//! the historical lock-only invocation working for old scripts. Use
//! `cargo run -p invcheck -- --workspace` instead (DESIGN.md §15).

use invcheck::{Allowlist, Registry, ScanOptions, SourceFile, Workspace};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    eprintln!("note: lockcheck is a shim over `invcheck --rules lock`; see DESIGN.md §15");
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut deny = false;
    let mut workspace = false;
    let mut dump_edges = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--deny-warnings" => deny = true,
            "--edges" => dump_edges = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage("--root requires a path"),
            },
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => return usage("--allowlist requires a path"),
            },
            "--help" | "-h" => {
                return usage("");
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace to scan the workspace");
    }

    let sync_path = root.join("crates/common/src/sync.rs");
    let sync_source = match std::fs::read_to_string(&sync_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lockcheck: cannot read {}: {e}", sync_path.display());
            return ExitCode::from(2);
        }
    };
    let registry = Registry::parse(&sync_source);
    if registry.entries.is_empty() {
        eprintln!(
            "lockcheck: no LockRank constants found in {}",
            sync_path.display()
        );
        return ExitCode::from(2);
    }

    // The allowlist moved to invcheck.allow; the historical name is
    // still honoured.
    let allowlist_path = allowlist_path.unwrap_or_else(|| {
        let primary = root.join("invcheck.allow");
        if primary.exists() {
            primary
        } else {
            root.join("lockcheck.allow")
        }
    });
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };

    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            eprintln!("lockcheck: cannot read {}: {e}", crates_dir.display());
            return ExitCode::from(2);
        }
    };
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir.file_name().map(|n| n.to_string_lossy().to_string());
        if matches!(name.as_deref(), Some("invcheck" | "lockcheck")) {
            continue;
        }
        collect_rs(&dir.join("src"), &root, &mut files);
    }

    let sources: Vec<SourceFile> = files
        .iter()
        .map(|(p, text)| SourceFile::new(p.clone(), text.as_str()))
        .collect();
    let ws = Workspace::new(&sync_source, sources, ScanOptions::default());
    let analysis = invcheck::run(&ws, &["lock"]);

    if dump_edges {
        for (a, b) in &analysis.edges {
            println!("edge: {a} -> {b}");
        }
    }

    let mut used = vec![false; allowlist.entries.len()];
    let mut denied = 0usize;
    let mut allowed = 0usize;
    for f in &analysis.findings {
        match allowlist.matches(f) {
            Some(idx) => {
                used[idx] = true;
                allowed += 1;
            }
            None => {
                denied += 1;
                print!("{}", f.render());
            }
        }
    }
    for (idx, entry) in allowlist.entries.iter().enumerate() {
        if !used[idx] {
            eprintln!(
                "note: stale allowlist entry at {}:{} ({}:{}:{}) matches no finding \
                 (it may belong to another rule family; run invcheck)",
                allowlist_path.display(),
                entry.line,
                entry.rule,
                entry.path,
                entry.needle
            );
        }
    }
    println!(
        "lockcheck: {} file(s), {} lock(s) in registry, {} finding(s) ({} allowlisted)",
        files.len(),
        registry.entries.len(),
        denied + allowed,
        allowed
    );
    if denied > 0 && deny {
        eprintln!("lockcheck: {denied} unallowlisted finding(s) with --deny-warnings");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

/// Recursively collect `.rs` files under `dir` as repo-relative paths.
fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = rd.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&p, root, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            if let Ok(text) = std::fs::read_to_string(&p) {
                let rel = p
                    .strip_prefix(root)
                    .unwrap_or(&p)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, text));
            }
        }
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("lockcheck: {err}");
    }
    eprintln!(
        "usage: lockcheck --workspace [--deny-warnings] [--edges] [--root PATH] [--allowlist PATH]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
