//! Client-side transactions.
//!
//! Writes are shipped to the server's transaction workspace as they
//! happen (so locks are acquired at write time — enabling grant-time
//! callbacks and early-notify marks); commit makes them durable. After a
//! successful commit the local database cache is refreshed with the
//! written states, and — in the agent deployment — the client reports the
//! update set (and, earlier, its write intents) to the DLM itself, as the
//! paper's clients did.

use crate::client::DbClient;
use displaydb_common::{DbError, DbResult, Oid, TxnId};
use displaydb_dlm::UpdateInfo;
use displaydb_schema::DbObject;
use displaydb_server::proto::{Request, Response, WireLockMode};
use displaydb_wire::Encode;
use std::collections::HashMap;
use std::sync::Arc;

/// An open transaction. Dropping it without committing aborts it
/// (best-effort).
pub struct ClientTxn {
    client: Arc<DbClient>,
    id: TxnId,
    finished: bool,
    /// Local view of this transaction's writes (`None` = deleted).
    local: HashMap<Oid, Option<DbObject>>,
    /// Objects exclusively locked, in acquisition order (for DLM intent
    /// reporting in the agent deployment).
    x_locked: Vec<Oid>,
}

impl ClientTxn {
    pub(crate) fn new(client: Arc<DbClient>, id: TxnId) -> Self {
        Self {
            client,
            id,
            finished: false,
            local: HashMap::new(),
            x_locked: Vec::new(),
        }
    }

    /// The transaction id.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Read within the transaction: own writes first, then the client
    /// cache, then a server read that is re-entrant with this
    /// transaction's locks.
    pub fn read(&self, oid: Oid) -> DbResult<DbObject> {
        if let Some(view) = self.local.get(&oid) {
            return view.clone().ok_or(DbError::ObjectNotFound(oid));
        }
        self.client.read_in_txn(self.id, oid)
    }

    /// Acquire an update-intention lock (deters write-write conflicts
    /// without blocking readers).
    pub fn lock_update(&mut self, oid: Oid) -> DbResult<()> {
        self.client
            .conn()
            .call(Request::Lock {
                txn: self.id,
                oid,
                mode: WireLockMode::Update,
            })
            .map(|_| ())
    }

    /// Acquire an exclusive lock explicitly (writes do this implicitly).
    pub fn lock_exclusive(&mut self, oid: Oid) -> DbResult<()> {
        self.client.conn().call(Request::Lock {
            txn: self.id,
            oid,
            mode: WireLockMode::Exclusive,
        })?;
        self.note_x_lock(oid)?;
        Ok(())
    }

    fn note_x_lock(&mut self, oid: Oid) -> DbResult<()> {
        if !self.x_locked.contains(&oid) {
            self.x_locked.push(oid);
            // Agent deployment: the client itself reports write intents so
            // the DLM can run the early-notify protocol (§ 3.3).
            if self.client.reports_to_dlm() {
                self.client
                    .dlc()
                    .backend()
                    .report_intent(vec![oid], self.id)?;
            }
        }
        Ok(())
    }

    /// Create a new persistent object; returns it with its assigned OID.
    pub fn create(&mut self, obj: DbObject) -> DbResult<DbObject> {
        match self.client.conn().call(Request::Create {
            txn: self.id,
            object: obj.encode_to_bytes().to_vec(),
        })? {
            Response::Created { oid } => {
                let mut obj = obj;
                obj.oid = oid;
                self.local.insert(oid, Some(obj.clone()));
                self.x_locked.push(oid);
                Ok(obj)
            }
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Write an object's full state (implicitly X-locks it).
    pub fn write(&mut self, obj: DbObject) -> DbResult<()> {
        if obj.oid.raw() == 0 {
            return Err(DbError::InvalidArgument(
                "object has no oid; use create()".into(),
            ));
        }
        self.client.conn().call(Request::Write {
            txn: self.id,
            object: obj.encode_to_bytes().to_vec(),
        })?;
        self.note_x_lock(obj.oid)?;
        self.local.insert(obj.oid, Some(obj));
        Ok(())
    }

    /// Read-modify-write helper: applies `f` to the current state and
    /// writes the result.
    pub fn update(
        &mut self,
        oid: Oid,
        f: impl FnOnce(&mut DbObject) -> DbResult<()>,
    ) -> DbResult<()> {
        let mut obj = self.read(oid)?;
        f(&mut obj)?;
        self.write(obj)
    }

    /// Delete an object (implicitly X-locks it).
    pub fn delete(&mut self, oid: Oid) -> DbResult<()> {
        self.client
            .conn()
            .call(Request::Delete { txn: self.id, oid })?;
        self.note_x_lock(oid)?;
        self.local.insert(oid, None);
        Ok(())
    }

    /// Commit. On success the client cache reflects the written states and
    /// (agent deployment) the DLM is informed of the update set.
    pub fn commit(mut self) -> DbResult<()> {
        // Mint a trace id at the committing client (0 when tracing is
        // off): the server stamps the notification fan-out with it, and
        // in the agent deployment the client's own commit report carries
        // it to the DLM agent.
        let trace = displaydb_common::trace::next_trace_id();
        self.client.conn().call(Request::Commit {
            txn: self.id,
            trace,
        })?;
        self.finished = true;
        // Refresh the local cache with the now-committed states.
        let mut updates: Vec<UpdateInfo> = Vec::with_capacity(self.local.len());
        for (oid, view) in &self.local {
            match view {
                Some(obj) => {
                    self.client.cache_committed(obj);
                    updates.push(
                        UpdateInfo::eager(*oid, obj.encode_to_bytes().to_vec()).with_trace(trace),
                    );
                }
                None => {
                    self.client.uncache_deleted(*oid);
                    updates.push(UpdateInfo::deletion(*oid).with_trace(trace));
                }
            }
        }
        if self.client.reports_to_dlm() {
            let backend = self.client.dlc().backend();
            if !self.x_locked.is_empty() {
                backend.report_resolution(self.x_locked.clone(), self.id, true)?;
            }
            if !updates.is_empty() {
                backend.report_commit(updates)?;
            }
        }
        Ok(())
    }

    /// Abort, discarding all writes.
    pub fn abort(mut self) -> DbResult<()> {
        self.abort_inner()
    }

    fn abort_inner(&mut self) -> DbResult<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        self.client.conn().call(Request::Abort { txn: self.id })?;
        if self.client.reports_to_dlm() && !self.x_locked.is_empty() {
            self.client
                .dlc()
                .backend()
                .report_resolution(self.x_locked.clone(), self.id, false)?;
        }
        Ok(())
    }
}

impl Drop for ClientTxn {
    fn drop(&mut self) {
        if !self.finished {
            let _ = self.abort_inner();
        }
    }
}

impl std::fmt::Debug for ClientTxn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientTxn")
            .field("id", &self.id)
            .field("writes", &self.local.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConfig;
    use displaydb_lockmgr::LockManagerConfig;
    use displaydb_schema::class::ClassBuilder;
    use displaydb_schema::{AttrType, Catalog, Value};
    use displaydb_server::{Server, ServerConfig};
    use displaydb_wire::LocalHub;
    use std::path::PathBuf;
    use std::time::Duration;

    fn catalog() -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("Link")
                .attr("Name", AttrType::Str)
                .attr("Utilization", AttrType::Float),
        )
        .unwrap();
        Arc::new(c)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-client-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn setup(name: &str) -> (Server, LocalHub, Arc<Catalog>) {
        let cat = catalog();
        let hub = LocalHub::new();
        let server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp(name)), &hub).unwrap();
        (server, hub, cat)
    }

    fn client(hub: &LocalHub, name: &str) -> Arc<DbClient> {
        DbClient::connect(Box::new(hub.connect().unwrap()), ClientConfig::named(name)).unwrap()
    }

    #[test]
    fn create_commit_read_through_cache() {
        let (_server, hub, cat) = setup("txn-basic");
        let c = client(&hub, "c1");
        let mut txn = c.begin().unwrap();
        let obj = txn
            .create(
                c.new_object("Link")
                    .unwrap()
                    .with(&cat, "Name", "uplink")
                    .unwrap(),
            )
            .unwrap();
        let oid = obj.oid;
        // Transaction sees its own write.
        assert_eq!(
            txn.read(oid).unwrap().get(&cat, "Name").unwrap(),
            &Value::Str("uplink".into())
        );
        txn.commit().unwrap();
        // Cache was primed by the commit: this read is a cache hit.
        let sent_before = c.conn().stats().sent.get();
        let back = c.read(oid).unwrap();
        assert_eq!(back.get(&cat, "Name").unwrap().as_str().unwrap(), "uplink");
        assert_eq!(
            c.conn().stats().sent.get(),
            sent_before,
            "read hit the network"
        );
    }

    #[test]
    fn cached_read_avoids_server_after_first_fetch() {
        let (_server, hub, cat) = setup("txn-cache");
        let c1 = client(&hub, "writer");
        let c2 = client(&hub, "reader");
        let mut txn = c1.begin().unwrap();
        let obj = txn.create(c1.new_object("Link").unwrap()).unwrap();
        txn.commit().unwrap();
        let _ = &cat;

        // First read: network. Second: cache.
        c2.read(obj.oid).unwrap();
        let sent = c2.conn().stats().sent.get();
        c2.read(obj.oid).unwrap();
        c2.read(obj.oid).unwrap();
        assert_eq!(c2.conn().stats().sent.get(), sent);
        assert_eq!(c2.cache().stats().hits, 2);
    }

    #[test]
    fn callback_invalidates_reader_cache_on_update() {
        let (_server, hub, cat) = setup("txn-callback");
        let c1 = client(&hub, "writer");
        let c2 = client(&hub, "reader");

        let mut txn = c1.begin().unwrap();
        let obj = txn.create(c1.new_object("Link").unwrap()).unwrap();
        let oid = obj.oid;
        txn.commit().unwrap();

        // Reader caches the object.
        c2.read(oid).unwrap();
        assert!(c2.cache().contains(oid));

        // Writer updates it; the synchronous callback protocol guarantees
        // the reader's copy is gone by the time commit returns.
        let mut txn = c1.begin().unwrap();
        txn.update(oid, |o| o.set(&cat, "Utilization", 0.9))
            .unwrap();
        txn.commit().unwrap();

        assert!(
            !c2.cache().contains(oid),
            "reader cache still holds the stale object"
        );
        // Reader's next read re-fetches the new state.
        let fresh = c2.read(oid).unwrap();
        assert_eq!(
            fresh.get(&cat, "Utilization").unwrap().as_float().unwrap(),
            0.9
        );
    }

    #[test]
    fn abort_discards_writes() {
        let (_server, hub, cat) = setup("txn-abort");
        let c = client(&hub, "c1");
        let mut txn = c.begin().unwrap();
        let obj = txn.create(c.new_object("Link").unwrap()).unwrap();
        let oid = obj.oid;
        txn.abort().unwrap();
        assert!(matches!(
            c.read_fresh(oid),
            Err(DbError::Rejected(_)) | Err(DbError::ObjectNotFound(_))
        ));
        let _ = &cat;
    }

    #[test]
    fn drop_aborts_uncommitted() {
        let (server, hub, _cat) = setup("txn-drop");
        let c = client(&hub, "c1");
        {
            let mut txn = c.begin().unwrap();
            let _ = txn.create(c.new_object("Link").unwrap()).unwrap();
            // dropped here
        }
        // Server state: no object, no active txn.
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(server.core().store().object_count(), 0);
    }

    #[test]
    fn update_helper_roundtrips() {
        let (_server, hub, cat) = setup("txn-update");
        let c = client(&hub, "c1");
        let mut txn = c.begin().unwrap();
        let obj = txn.create(c.new_object("Link").unwrap()).unwrap();
        txn.commit().unwrap();

        let mut txn = c.begin().unwrap();
        txn.update(obj.oid, |o| o.set(&cat, "Utilization", 0.42))
            .unwrap();
        txn.commit().unwrap();
        assert_eq!(
            c.read_fresh(obj.oid)
                .unwrap()
                .get(&cat, "Utilization")
                .unwrap()
                .as_float()
                .unwrap(),
            0.42
        );
    }

    #[test]
    fn delete_in_txn() {
        let (_server, hub, _cat) = setup("txn-delete");
        let c = client(&hub, "c1");
        let mut txn = c.begin().unwrap();
        let obj = txn.create(c.new_object("Link").unwrap()).unwrap();
        txn.commit().unwrap();

        let mut txn = c.begin().unwrap();
        txn.delete(obj.oid).unwrap();
        // Within the txn the object is gone.
        assert!(txn.read(obj.oid).is_err());
        txn.commit().unwrap();
        assert!(!c.cache().contains(obj.oid));
        assert!(c.read(obj.oid).is_err());
    }

    #[test]
    fn txn_read_is_reentrant_with_own_exclusive_lock() {
        // Regression: a transaction that X-locks an object and then reads
        // it with a cold cache must not block behind its own lock.
        let cat = catalog();
        let hub = LocalHub::new();
        let mut config = ServerConfig::new(tmp("txn-reentrant-read"));
        config.lock = LockManagerConfig {
            wait_timeout: Duration::from_millis(300),
            deadlock_detection: true,
        };
        let _server = Server::spawn_local(Arc::clone(&cat), config, &hub).unwrap();
        let c = client(&hub, "c1");
        let mut txn = c.begin().unwrap();
        let obj = txn.create(c.new_object("Link").unwrap()).unwrap();
        txn.commit().unwrap();

        let mut txn = c.begin().unwrap();
        txn.lock_exclusive(obj.oid).unwrap();
        c.cache().clear(); // force the read to the server
        let started = std::time::Instant::now();
        let read = txn.read(obj.oid).unwrap();
        assert_eq!(read.oid, obj.oid);
        assert!(
            started.elapsed() < Duration::from_millis(200),
            "read self-blocked behind own X lock"
        );
        txn.commit().unwrap();
    }

    #[test]
    fn write_conflicts_respect_locks() {
        let cat = catalog();
        let hub = LocalHub::new();
        let mut config = ServerConfig::new(tmp("txn-conflict"));
        config.lock = LockManagerConfig {
            wait_timeout: Duration::from_millis(300),
            deadlock_detection: true,
        };
        let _server = Server::spawn_local(Arc::clone(&cat), config, &hub).unwrap();
        let c1 = client(&hub, "c1");
        let c2 = client(&hub, "c2");

        let mut txn = c1.begin().unwrap();
        let obj = txn.create(c1.new_object("Link").unwrap()).unwrap();
        txn.commit().unwrap();

        let mut t1 = c1.begin().unwrap();
        t1.lock_exclusive(obj.oid).unwrap();
        let mut t2 = c2.begin().unwrap();
        // t2's write must time out while t1 holds X.
        let err = t2.lock_exclusive(obj.oid).unwrap_err();
        assert!(err.is_retryable(), "{err:?}");
        t1.commit().unwrap();
        // After t1 commits, t2 can retry on a fresh txn.
        let mut t3 = c2.begin().unwrap();
        t3.lock_exclusive(obj.oid).unwrap();
        t3.commit().unwrap();
    }
}
