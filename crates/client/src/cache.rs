//! The client database cache.
//!
//! This is the third level of the paper's memory hierarchy (figure 2):
//! whole database objects cached in the client's main memory. Its
//! defining properties — the ones the paper's § 2.2 critique hinges on —
//! are implemented faithfully:
//!
//! * **whole-object granularity**: every attribute is cached even if the
//!   GUI needs two of them;
//! * **application has no pin control**: entries are evicted LRU under
//!   byte pressure and invalidated by server callbacks at any time;
//! * **inter-transaction reuse**: a hit costs no server round-trip
//!   (avoidance-based consistency keeps hits valid).

use displaydb_common::lru::{LruCache, LruStats};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::Oid;
use displaydb_schema::DbObject;

/// Thread-safe, byte-bounded LRU cache of decoded objects.
pub struct ClientCache {
    inner: OrderedMutex<LruCache<Oid, DbObject>>,
}

impl ClientCache {
    /// Create a cache bounded to `capacity_bytes`.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            inner: OrderedMutex::new(ranks::CLIENT_CACHE, LruCache::new(capacity_bytes)),
        }
    }

    /// Look up an object (LRU touch on hit).
    pub fn get(&self, oid: Oid) -> Option<DbObject> {
        self.inner.lock().get(&oid).cloned()
    }

    /// Insert (or refresh) an object; its footprint is measured with
    /// [`DbObject::size_bytes`].
    pub fn insert(&self, obj: DbObject) {
        let size = obj.size_bytes();
        self.inner.lock().insert(obj.oid, obj, size);
    }

    /// Patch a cached object in place from an attribute-level delta
    /// (`(layout index, encoded Value)` pairs). Returns `false` — the
    /// caller must fall back to a full re-read — when the object is not
    /// cached, an index falls outside its layout, or a value fails to
    /// decode. The patch is all-or-nothing: a bad pair leaves the cached
    /// object untouched.
    pub fn apply_delta(&self, oid: Oid, changed: &[(u16, Vec<u8>)]) -> bool {
        use displaydb_wire::Decode;
        let mut inner = self.inner.lock();
        let Some(obj) = inner.get(&oid) else {
            return false;
        };
        let mut patched = obj.clone();
        for (attr, bytes) in changed {
            let idx = *attr as usize;
            if idx >= patched.values.len() {
                return false;
            }
            match displaydb_schema::Value::decode_from_bytes(bytes) {
                Ok(v) => patched.values[idx] = v,
                Err(_) => return false,
            }
        }
        let size = patched.size_bytes();
        inner.insert(oid, patched, size);
        true
    }

    /// Drop objects (server callback or local knowledge of staleness).
    pub fn invalidate(&self, oids: &[Oid]) {
        let mut inner = self.inner.lock();
        for oid in oids {
            inner.remove(oid);
        }
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Whether `oid` is cached (no LRU effect).
    pub fn contains(&self, oid: Oid) -> bool {
        self.inner.lock().contains(&oid)
    }

    /// Every cached oid, most-recently-used first (no LRU effect) — the
    /// manifest a resuming session presents to the server so it can
    /// rebuild copy-table entries and report which copies went stale.
    pub fn oids(&self) -> Vec<Oid> {
        self.inner.lock().keys_mru().copied().collect()
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Bytes used by cached objects.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used_bytes()
    }

    /// Configured capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.inner.lock().capacity_bytes()
    }

    /// Hit/miss/eviction statistics.
    pub fn stats(&self) -> LruStats {
        self.inner.lock().stats()
    }
}

impl std::fmt::Debug for ClientCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("ClientCache")
            .field("objects", &inner.len())
            .field("used_bytes", &inner.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_schema::class::ClassBuilder;
    use displaydb_schema::{AttrType, Catalog};

    fn obj(cat: &Catalog, oid: u64, payload: &str) -> DbObject {
        let mut o = DbObject::new_named(cat, "Blob").unwrap();
        o.oid = Oid::new(oid);
        o.set(cat, "Data", payload).unwrap();
        o
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define(ClassBuilder::new("Blob").attr("Data", AttrType::Str))
            .unwrap();
        c
    }

    #[test]
    fn insert_get_invalidate() {
        let cat = catalog();
        let cache = ClientCache::new(10_000);
        cache.insert(obj(&cat, 1, "one"));
        assert!(cache.contains(Oid::new(1)));
        assert_eq!(
            cache
                .get(Oid::new(1))
                .unwrap()
                .get(&cat, "Data")
                .unwrap()
                .as_str()
                .unwrap(),
            "one"
        );
        cache.invalidate(&[Oid::new(1)]);
        assert!(cache.get(Oid::new(1)).is_none());
    }

    #[test]
    fn byte_pressure_evicts_lru() {
        let cat = catalog();
        // Each object is ~48 + 24 + len bytes; cap at ~3 small objects.
        let cache = ClientCache::new(300);
        for i in 0..5 {
            cache.insert(obj(&cat, i, "xxxxxxxxxx"));
        }
        assert!(cache.len() < 5, "no eviction happened");
        assert!(cache.used_bytes() <= 300);
        assert!(cache.stats().evictions > 0);
        // Most recent insert survives.
        assert!(cache.contains(Oid::new(4)));
    }

    #[test]
    fn refresh_replaces_in_place() {
        let cat = catalog();
        let cache = ClientCache::new(10_000);
        cache.insert(obj(&cat, 1, "old"));
        cache.insert(obj(&cat, 1, "new"));
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache
                .get(Oid::new(1))
                .unwrap()
                .get(&cat, "Data")
                .unwrap()
                .as_str()
                .unwrap(),
            "new"
        );
    }

    #[test]
    fn apply_delta_patches_cached_object() {
        use displaydb_wire::Encode;
        let cat = catalog();
        let cache = ClientCache::new(10_000);
        cache.insert(obj(&cat, 1, "old"));
        let donor = obj(&cat, 2, "patched");
        let bytes = donor.values[0].encode_to_bytes().to_vec();
        assert!(cache.apply_delta(Oid::new(1), &[(0, bytes)]));
        assert_eq!(
            cache
                .get(Oid::new(1))
                .unwrap()
                .get(&cat, "Data")
                .unwrap()
                .as_str()
                .unwrap(),
            "patched"
        );
    }

    #[test]
    fn apply_delta_rejects_uncached_and_out_of_range() {
        let cat = catalog();
        let cache = ClientCache::new(10_000);
        assert!(!cache.apply_delta(Oid::new(9), &[]), "uncached object");
        cache.insert(obj(&cat, 1, "old"));
        assert!(
            !cache.apply_delta(Oid::new(1), &[(7, vec![])]),
            "index outside the layout"
        );
        assert_eq!(
            cache
                .get(Oid::new(1))
                .unwrap()
                .get(&cat, "Data")
                .unwrap()
                .as_str()
                .unwrap(),
            "old",
            "failed patch must leave the object untouched"
        );
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let cat = catalog();
        let cache = ClientCache::new(10_000);
        cache.insert(obj(&cat, 1, "x"));
        cache.get(Oid::new(1));
        cache.get(Oid::new(2));
        let s = cache.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }
}
