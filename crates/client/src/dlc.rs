//! The Display Lock Client (DLC).
//!
//! The paper's § 4.2.1 observation: one client application usually runs
//! *several* displays (windows) that may share database objects. Treating
//! each display as a separate DLM client would multiply messages; instead
//! a single DLC per client
//!
//! * keeps a local table `object → {displays}` and forwards a lock or
//!   release to the DLM **only on the 0→1 and 1→0 transitions**, and
//! * receives each update notification **once** and dispatches it locally
//!   to every display that depends on the object.
//!
//! The DLC speaks to either DLM deployment through the [`DlmBackend`]
//! trait: the integrated server (lock requests ride the main connection)
//! or the standalone agent (a dedicated connection, as in the paper).

use displaydb_common::metrics::{Counter, Gauge};
use displaydb_common::{DbResult, DisplayId, Oid, OverloadConfig, TxnId};
use displaydb_dlm::{DlmAgentConnection, DlmEvent, UpdateInfo};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How the DLC reaches the DLM.
pub trait DlmBackend: Send + Sync {
    /// Forward a display-lock request.
    fn lock(&self, oids: Vec<Oid>) -> DbResult<()>;
    /// Forward a release.
    fn release(&self, oids: Vec<Oid>) -> DbResult<()>;
    /// Report a committed update (agent deployment only; the integrated
    /// server notifies from its own commit path, so this is a no-op
    /// there).
    fn report_commit(&self, updates: Vec<UpdateInfo>) -> DbResult<()>;
    /// Report an update intention (agent deployment only).
    fn report_intent(&self, oids: Vec<Oid>, txn: TxnId) -> DbResult<()>;
    /// Report an intention's resolution (agent deployment only).
    fn report_resolution(&self, oids: Vec<Oid>, txn: TxnId, committed: bool) -> DbResult<()>;
}

/// Agent deployment: the backend is a dedicated DLM connection.
impl DlmBackend for DlmAgentConnection {
    fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
        DlmAgentConnection::lock(self, oids)
    }
    fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
        DlmAgentConnection::release(self, oids)
    }
    fn report_commit(&self, updates: Vec<UpdateInfo>) -> DbResult<()> {
        DlmAgentConnection::report_commit(self, updates)
    }
    fn report_intent(&self, oids: Vec<Oid>, txn: TxnId) -> DbResult<()> {
        DlmAgentConnection::report_intent(self, oids, txn)
    }
    fn report_resolution(&self, oids: Vec<Oid>, txn: TxnId, committed: bool) -> DbResult<()> {
        DlmAgentConnection::report_resolution(self, oids, txn, committed)
    }
}

/// What a display receives from its DLC subscription: either a DLM
/// notification for an object it watches, or a connection-health
/// transition broadcast by the supervisor (crate::supervisor).
#[derive(Clone, Debug)]
pub enum DlcEvent {
    /// A display-lock notification from the DLM.
    Dlm(DlmEvent),
    /// The connection (server or DLM agent) died; displays should keep
    /// serving their pinned objects but mark them stale.
    Degraded,
    /// The connection is back and display locks have been re-registered;
    /// any object that changed during the outage has already been
    /// resynced via `Dlm(Updated)` events, so remaining stale marks can
    /// be cleared.
    Restored,
    /// The server demoted this client to resync-only delivery because it
    /// persistently overflowed its notification outbox. Per-object
    /// notifications may have been collapsed into resync sweeps; displays
    /// should render their content as stale until refreshes land.
    Lagging,
}

/// Counters demonstrating the hierarchical dedup benefit (experiment A2).
#[derive(Clone, Debug, Default)]
pub struct DlcStats {
    /// Lock requests the displays issued to the DLC.
    pub local_lock_requests: Counter,
    /// Lock messages the DLC actually sent to the DLM (0→1 transitions).
    pub dlm_lock_messages: Counter,
    /// Release messages sent to the DLM (1→0 transitions).
    pub dlm_release_messages: Counter,
    /// Notifications received from the DLM.
    pub notifications_in: Counter,
    /// Notification deliveries to local displays (fan-out).
    pub notifications_dispatched: Counter,
    /// Resync sweeps received (the server collapsed a notification burst
    /// into one "re-read these objects" marker).
    pub resyncs_in: Counter,
    /// Events dropped because a display's bounded queue was full. A
    /// display that stops draining its queue loses notifications rather
    /// than growing client memory without bound; its view is restored by
    /// the next refresh cycle or reconnect resync.
    pub display_queue_drops: Counter,
    /// Depth of the per-display event queues, sampled at enqueue time.
    /// The high-water side is the memory-bound evidence.
    pub display_queue_depth: Gauge,
}

struct DlcState {
    /// object -> displays that depend on it.
    deps: HashMap<Oid, HashSet<DisplayId>>,
    /// display -> its event queue.
    subscribers: HashMap<DisplayId, crossbeam::channel::Sender<DlcEvent>>,
}

/// The per-client display lock client.
pub struct Dlc {
    backend: Arc<dyn DlmBackend>,
    state: Mutex<DlcState>,
    stats: DlcStats,
    /// Capacity of each display's event queue (bounded so a display that
    /// stops polling cannot grow client memory without limit).
    queue_capacity: usize,
}

impl Dlc {
    /// Create a DLC over a backend, with the default display-queue
    /// capacity from [`OverloadConfig`].
    pub fn new(backend: Arc<dyn DlmBackend>) -> Self {
        Self::with_queue_capacity(backend, OverloadConfig::default().display_queue_capacity)
    }

    /// Create a DLC with an explicit per-display queue capacity.
    pub fn with_queue_capacity(backend: Arc<dyn DlmBackend>, queue_capacity: usize) -> Self {
        Self {
            backend,
            state: Mutex::new(DlcState {
                deps: HashMap::new(),
                subscribers: HashMap::new(),
            }),
            stats: DlcStats::default(),
            queue_capacity: queue_capacity.max(1),
        }
    }

    /// DLC statistics.
    pub fn stats(&self) -> &DlcStats {
        &self.stats
    }

    /// The backend (for reporting commits in the agent deployment).
    pub fn backend(&self) -> &Arc<dyn DlmBackend> {
        &self.backend
    }

    /// Register a display; notifications for its objects arrive on the
    /// returned receiver. The queue is bounded (`queue_capacity` events,
    /// default [`OverloadConfig::display_queue_capacity`]): a display
    /// that stops draining loses events past the bound instead of
    /// growing memory, and recovers via the next refresh or resync.
    pub fn register_display(&self, display: DisplayId) -> crossbeam::channel::Receiver<DlcEvent> {
        let (tx, rx) = crossbeam::channel::bounded(self.queue_capacity);
        self.state.lock().subscribers.insert(display, tx);
        rx
    }

    /// Non-blocking enqueue onto one display's bounded queue. Full means
    /// the display is not draining; dropping there isolates the slow
    /// display instead of stalling the dispatch thread (which is the
    /// connection reader in the integrated deployment).
    fn offer(&self, tx: &crossbeam::channel::Sender<DlcEvent>, event: DlcEvent) -> bool {
        match tx.try_send(event) {
            Ok(()) => {
                self.stats.display_queue_depth.set(tx.len() as u64);
                true
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => {
                self.stats.display_queue_drops.inc();
                false
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
        }
    }

    /// Acquire display locks for `display` on `oids`. Only objects not
    /// already locked by *any* display of this client generate DLM
    /// traffic.
    pub fn acquire(&self, display: DisplayId, oids: &[Oid]) -> DbResult<()> {
        self.stats.local_lock_requests.add(oids.len() as u64);
        let new: Vec<Oid> = {
            let mut state = self.state.lock();
            oids.iter()
                .copied()
                .filter(|&oid| {
                    let deps = state.deps.entry(oid).or_default();
                    let was_empty = deps.is_empty();
                    deps.insert(display);
                    was_empty
                })
                .collect()
        };
        if !new.is_empty() {
            self.stats.dlm_lock_messages.add(new.len() as u64);
            self.backend.lock(new)?;
        }
        Ok(())
    }

    /// Release `display`'s interest in `oids`; objects no local display
    /// needs anymore are released at the DLM.
    pub fn release(&self, display: DisplayId, oids: &[Oid]) -> DbResult<()> {
        let gone: Vec<Oid> = {
            let mut state = self.state.lock();
            oids.iter()
                .copied()
                .filter(|oid| {
                    if let Some(deps) = state.deps.get_mut(oid) {
                        deps.remove(&display);
                        if deps.is_empty() {
                            state.deps.remove(oid);
                            return true;
                        }
                    }
                    false
                })
                .collect()
        };
        if !gone.is_empty() {
            self.stats.dlm_release_messages.add(gone.len() as u64);
            self.backend.release(gone)?;
        }
        Ok(())
    }

    /// Unregister a display entirely, releasing everything it watched.
    pub fn release_display(&self, display: DisplayId) -> DbResult<()> {
        let watched: Vec<Oid> = {
            let state = self.state.lock();
            state
                .deps
                .iter()
                .filter(|(_, deps)| deps.contains(&display))
                .map(|(&oid, _)| oid)
                .collect()
        };
        self.release(display, &watched)?;
        self.state.lock().subscribers.remove(&display);
        Ok(())
    }

    /// Objects currently display-locked by this client (after dedup).
    pub fn locked_objects(&self) -> usize {
        self.state.lock().deps.len()
    }

    /// Dispatch an incoming DLM event to every dependent display.
    pub fn dispatch(&self, event: DlmEvent) {
        self.stats.notifications_in.inc();
        let oid = match &event {
            DlmEvent::Updated(u) => u.oid,
            DlmEvent::Marked { oid, .. } | DlmEvent::Resolved { oid, .. } => *oid,
            // Ready is a connection-level handshake ack, not an object
            // notification; it never reaches the dispatch path.
            DlmEvent::Ready => return,
            // The server's outbox overflowed and swept queued per-object
            // notifications into one marker: answer by forcing re-reads
            // of the watched subset (the same machinery a reconnect
            // uses), which converges the view without ever replaying the
            // lost burst.
            DlmEvent::ResyncRequired { oids } => {
                self.stats.resyncs_in.inc();
                self.resync(oids);
                return;
            }
            // The server demoted this client to resync-only delivery;
            // every display should render stale until refreshes land.
            DlmEvent::Lagging => {
                self.broadcast(DlcEvent::Lagging);
                return;
            }
        };
        let targets: Vec<crossbeam::channel::Sender<DlcEvent>> = {
            let state = self.state.lock();
            state
                .deps
                .get(&oid)
                .map(|displays| {
                    displays
                        .iter()
                        .filter_map(|d| state.subscribers.get(d).cloned())
                        .collect()
                })
                .unwrap_or_default()
        };
        for tx in targets {
            if self.offer(&tx, DlcEvent::Dlm(event.clone())) {
                self.stats.notifications_dispatched.inc();
            }
        }
    }

    /// Send a connection-health event to *every* registered display,
    /// regardless of watched objects.
    pub fn broadcast(&self, event: DlcEvent) {
        let targets: Vec<crossbeam::channel::Sender<DlcEvent>> =
            self.state.lock().subscribers.values().cloned().collect();
        for tx in targets {
            let _ = self.offer(&tx, event.clone());
        }
    }

    /// Every object some display of this client currently watches.
    pub fn watched_objects(&self) -> Vec<Oid> {
        self.state.lock().deps.keys().copied().collect()
    }

    /// Re-register every live display-lock registration with the DLM —
    /// the recovery step after a reconnect, when the server (or agent)
    /// has lost this client's lock table. Returns how many objects were
    /// re-locked.
    pub fn relock_all(&self) -> DbResult<usize> {
        let watched = self.watched_objects();
        if watched.is_empty() {
            return Ok(0);
        }
        let n = watched.len();
        self.stats.dlm_lock_messages.add(n as u64);
        self.backend.lock(watched)?;
        Ok(n)
    }

    /// After a reconnect, force dependent displays to refresh `oids`
    /// (those the server reported stale, or everything watched when the
    /// outage left us with no version information). Only watched objects
    /// generate events; returns how many did.
    pub fn resync(&self, oids: &[Oid]) -> usize {
        let watched: std::collections::HashSet<Oid> = {
            let state = self.state.lock();
            oids.iter()
                .copied()
                .filter(|oid| state.deps.contains_key(oid))
                .collect()
        };
        for &oid in &watched {
            self.dispatch(DlmEvent::Updated(UpdateInfo::lazy(oid)));
        }
        watched.len()
    }
}

impl std::fmt::Debug for Dlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dlc")
            .field("locked_objects", &self.locked_objects())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_common::DbError;

    #[derive(Default)]
    struct MockBackend {
        locks: Mutex<Vec<Oid>>,
        releases: Mutex<Vec<Oid>>,
    }

    impl DlmBackend for MockBackend {
        fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
            self.locks.lock().extend(oids);
            Ok(())
        }
        fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
            self.releases.lock().extend(oids);
            Ok(())
        }
        fn report_commit(&self, _: Vec<UpdateInfo>) -> DbResult<()> {
            Ok(())
        }
        fn report_intent(&self, _: Vec<Oid>, _: TxnId) -> DbResult<()> {
            Ok(())
        }
        fn report_resolution(&self, _: Vec<Oid>, _: TxnId, _: bool) -> DbResult<()> {
            Ok(())
        }
    }

    fn o(i: u64) -> Oid {
        Oid::new(i)
    }

    fn d(i: u64) -> DisplayId {
        DisplayId::new(i)
    }

    #[test]
    fn dedup_one_lock_per_object() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire(d(1), &[o(1), o(2)]).unwrap();
        dlc.acquire(d(2), &[o(1), o(3)]).unwrap(); // o(1) already locked
        assert_eq!(backend.locks.lock().len(), 3, "o(1) must not lock twice");
        assert_eq!(dlc.stats().local_lock_requests.get(), 4);
        assert_eq!(dlc.stats().dlm_lock_messages.get(), 3);
    }

    #[test]
    fn release_only_on_last_display() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire(d(1), &[o(1)]).unwrap();
        dlc.acquire(d(2), &[o(1)]).unwrap();
        dlc.release(d(1), &[o(1)]).unwrap();
        assert!(backend.releases.lock().is_empty(), "d(2) still watches");
        dlc.release(d(2), &[o(1)]).unwrap();
        assert_eq!(*backend.releases.lock(), vec![o(1)]);
        assert_eq!(dlc.locked_objects(), 0);
    }

    #[test]
    fn dispatch_fans_out_to_dependent_displays_only() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        let r1 = dlc.register_display(d(1));
        let r2 = dlc.register_display(d(2));
        let r3 = dlc.register_display(d(3));
        dlc.acquire(d(1), &[o(5)]).unwrap();
        dlc.acquire(d(2), &[o(5)]).unwrap();
        dlc.acquire(d(3), &[o(6)]).unwrap();

        dlc.dispatch(DlmEvent::Updated(UpdateInfo::lazy(o(5))));
        assert!(r1.try_recv().is_ok());
        assert!(r2.try_recv().is_ok());
        assert!(r3.try_recv().is_err());
        assert_eq!(dlc.stats().notifications_in.get(), 1);
        assert_eq!(dlc.stats().notifications_dispatched.get(), 2);
    }

    #[test]
    fn release_display_cleans_everything() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1), o(2), o(3)]).unwrap();
        dlc.release_display(d(1)).unwrap();
        assert_eq!(dlc.locked_objects(), 0);
        assert_eq!(backend.releases.lock().len(), 3);
        dlc.dispatch(DlmEvent::Updated(UpdateInfo::lazy(o(1))));
        assert!(r1.try_recv().is_err());
    }

    #[test]
    fn reacquire_after_release_sends_again() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1)]).unwrap();
        dlc.release(d(1), &[o(1)]).unwrap();
        dlc.acquire(d(1), &[o(1)]).unwrap();
        assert_eq!(backend.locks.lock().len(), 2);
    }

    #[test]
    fn relock_resync_and_broadcast_after_reconnect() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1), o(2)]).unwrap();
        assert_eq!(dlc.relock_all().unwrap(), 2, "replays all registrations");
        assert_eq!(backend.locks.lock().len(), 4);

        // Resync only touches watched objects.
        assert_eq!(dlc.resync(&[o(1), o(9)]), 1);
        match r1.try_recv().unwrap() {
            DlcEvent::Dlm(DlmEvent::Updated(u)) => assert_eq!(u.oid, o(1)),
            other => panic!("unexpected {other:?}"),
        }

        dlc.broadcast(DlcEvent::Degraded);
        assert!(matches!(r1.try_recv().unwrap(), DlcEvent::Degraded));
        dlc.broadcast(DlcEvent::Restored);
        assert!(matches!(r1.try_recv().unwrap(), DlcEvent::Restored));
    }

    #[test]
    fn resync_required_forces_rereads_of_watched_objects_only() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1), o(2)]).unwrap();

        // A sweep covering one watched and one unwatched object yields
        // exactly one forced re-read.
        dlc.dispatch(DlmEvent::ResyncRequired {
            oids: vec![o(2), o(9)],
        });
        match r1.try_recv().unwrap() {
            DlcEvent::Dlm(DlmEvent::Updated(u)) => {
                assert_eq!(u.oid, o(2));
                assert!(u.payload.is_none(), "resync re-reads, never ships state");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(r1.try_recv().is_err());
        assert_eq!(dlc.stats().resyncs_in.get(), 1);
    }

    #[test]
    fn lagging_broadcasts_to_every_display() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        let r1 = dlc.register_display(d(1));
        let r2 = dlc.register_display(d(2));
        dlc.acquire(d(1), &[o(1)]).unwrap(); // d(2) watches nothing

        dlc.dispatch(DlmEvent::Lagging);
        assert!(matches!(r1.try_recv().unwrap(), DlcEvent::Lagging));
        assert!(matches!(r2.try_recv().unwrap(), DlcEvent::Lagging));
    }

    #[test]
    fn full_display_queue_drops_instead_of_blocking() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::with_queue_capacity(backend, 2);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1)]).unwrap();

        // Three sends into a capacity-2 queue: the third must drop, not
        // stall the dispatching thread.
        for _ in 0..3 {
            dlc.dispatch(DlmEvent::Updated(UpdateInfo::lazy(o(1))));
        }
        assert_eq!(dlc.stats().notifications_dispatched.get(), 2);
        assert_eq!(dlc.stats().display_queue_drops.get(), 1);
        assert_eq!(dlc.stats().display_queue_depth.high_water(), 2);
        assert!(r1.try_recv().is_ok());
        assert!(r1.try_recv().is_ok());
        assert!(r1.try_recv().is_err());
    }

    #[test]
    fn backend_error_propagates() {
        struct FailBackend;
        impl DlmBackend for FailBackend {
            fn lock(&self, _: Vec<Oid>) -> DbResult<()> {
                Err(DbError::Disconnected)
            }
            fn release(&self, _: Vec<Oid>) -> DbResult<()> {
                Ok(())
            }
            fn report_commit(&self, _: Vec<UpdateInfo>) -> DbResult<()> {
                Ok(())
            }
            fn report_intent(&self, _: Vec<Oid>, _: TxnId) -> DbResult<()> {
                Ok(())
            }
            fn report_resolution(&self, _: Vec<Oid>, _: TxnId, _: bool) -> DbResult<()> {
                Ok(())
            }
        }
        let dlc = Dlc::new(Arc::new(FailBackend));
        let _r = dlc.register_display(d(1));
        assert!(dlc.acquire(d(1), &[o(1)]).is_err());
    }
}
