//! The Display Lock Client (DLC).
//!
//! The paper's § 4.2.1 observation: one client application usually runs
//! *several* displays (windows) that may share database objects. Treating
//! each display as a separate DLM client would multiply messages; instead
//! a single DLC per client
//!
//! * keeps a local table `object → {displays}` and forwards a lock or
//!   release to the DLM **only on the 0→1 and 1→0 transitions**, and
//! * receives each update notification **once** and dispatches it locally
//!   to every display that depends on the object.
//!
//! The DLC speaks to either DLM deployment through the [`DlmBackend`]
//! trait: the integrated server (lock requests ride the main connection)
//! or the standalone agent (a dedicated connection, as in the paper).

use displaydb_common::metrics::{Counter, Gauge};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{DbResult, DisplayId, Oid, OverloadConfig, TxnId};
use displaydb_dlm::{DlmAgentConnection, DlmEvent, UpdateInfo};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How the DLC reaches the DLM.
pub trait DlmBackend: Send + Sync {
    /// Forward a display-lock request.
    fn lock(&self, oids: Vec<Oid>) -> DbResult<()>;
    /// Forward a display-lock request with an attribute projection: the
    /// DLM should only notify for changes touching `attrs` (layout
    /// indices), as deltas tagged with `version`. The default falls back
    /// to a plain (full-interest) lock for backends that predate
    /// projections.
    fn lock_projected(&self, oids: Vec<Oid>, attrs: Vec<u16>, version: u32) -> DbResult<()> {
        let _ = (attrs, version);
        self.lock(oids)
    }
    /// Forward a release.
    fn release(&self, oids: Vec<Oid>) -> DbResult<()>;
    /// Report a committed update (agent deployment only; the integrated
    /// server notifies from its own commit path, so this is a no-op
    /// there).
    fn report_commit(&self, updates: Vec<UpdateInfo>) -> DbResult<()>;
    /// Report an update intention (agent deployment only).
    fn report_intent(&self, oids: Vec<Oid>, txn: TxnId) -> DbResult<()>;
    /// Report an intention's resolution (agent deployment only).
    fn report_resolution(&self, oids: Vec<Oid>, txn: TxnId, committed: bool) -> DbResult<()>;
    /// Ask the DLM to replay every logged update after `cursor` that
    /// intersects this client's interests. The suffix (or a
    /// `ResyncRequired` fallback when the cursor was truncated) arrives
    /// on the notification stream. Backends that predate the update log
    /// report `Disconnected` so callers fall back to a full resync.
    ///
    /// `incarnation` names the log incarnation the cursor was acked
    /// under (DESIGN.md § 14); 0 means "don't care" — correct whenever
    /// cursor and log provably share a lifetime (same live connection,
    /// or an in-process backend).
    fn replay_from(&self, cursor: u64, incarnation: u64) -> DbResult<()> {
        let _ = (cursor, incarnation);
        Err(displaydb_common::DbError::Disconnected)
    }
    /// Shard-aware replay (DESIGN.md § 16): replay one shard's log from
    /// that shard's cursor. The default maps shard 0 onto the legacy
    /// single-cursor [`Self::replay_from`] — correct against an unsharded
    /// DLM, whose only seqno space *is* shard 0 — and reports
    /// `Disconnected` for any other shard so callers fall back to a
    /// resync.
    fn replay_from_shard(&self, shard: u32, cursor: u64, incarnation: u64) -> DbResult<()> {
        if shard == 0 {
            self.replay_from(cursor, incarnation)
        } else {
            let _ = (cursor, incarnation);
            Err(displaydb_common::DbError::Disconnected)
        }
    }
    /// Fan a recovery out across shards: replay each `(shard, cursor)`
    /// pair. Backends with a shard-vector wire request override this
    /// with one message; the default loops over
    /// [`Self::replay_from_shard`].
    fn replay_from_shards(&self, cursors: &[(u32, u64)]) -> DbResult<()> {
        for &(shard, cursor) in cursors {
            self.replay_from_shard(shard, cursor, 0)?;
        }
        Ok(())
    }
}

/// Agent deployment: the backend is a dedicated DLM connection.
impl DlmBackend for DlmAgentConnection {
    fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
        DlmAgentConnection::lock(self, oids)
    }
    fn lock_projected(&self, oids: Vec<Oid>, attrs: Vec<u16>, version: u32) -> DbResult<()> {
        DlmAgentConnection::lock_projected(self, oids, attrs, version)
    }
    fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
        DlmAgentConnection::release(self, oids)
    }
    fn report_commit(&self, updates: Vec<UpdateInfo>) -> DbResult<()> {
        DlmAgentConnection::report_commit(self, updates)
    }
    fn report_intent(&self, oids: Vec<Oid>, txn: TxnId) -> DbResult<()> {
        DlmAgentConnection::report_intent(self, oids, txn)
    }
    fn report_resolution(&self, oids: Vec<Oid>, txn: TxnId, committed: bool) -> DbResult<()> {
        DlmAgentConnection::report_resolution(self, oids, txn, committed)
    }
    fn replay_from(&self, cursor: u64, incarnation: u64) -> DbResult<()> {
        DlmAgentConnection::replay_from(self, cursor, incarnation)
    }
    // The agent deployment stays single-shard (one DLM process, one
    // log): the default shard-0 mapping of `replay_from_shard` is
    // exactly right, so no override.
}

/// What a display receives from its DLC subscription: either a DLM
/// notification for an object it watches, or a connection-health
/// transition broadcast by the supervisor (crate::supervisor).
#[derive(Clone, Debug)]
pub enum DlcEvent {
    /// A display-lock notification from the DLM.
    Dlm(DlmEvent),
    /// The connection (server or DLM agent) died; displays should keep
    /// serving their pinned objects but mark them stale.
    Degraded,
    /// The connection is back and display locks have been re-registered;
    /// any object that changed during the outage has already been
    /// resynced via `Dlm(Updated)` events, so remaining stale marks can
    /// be cleared.
    Restored,
    /// The server demoted this client to resync-only delivery because it
    /// persistently overflowed its notification outbox. Per-object
    /// notifications may have been collapsed into resync sweeps; displays
    /// should render their content as stale until refreshes land.
    Lagging,
}

/// Counters demonstrating the hierarchical dedup benefit (experiment A2).
#[derive(Clone, Debug, Default)]
pub struct DlcStats {
    /// Lock requests the displays issued to the DLC.
    pub local_lock_requests: Counter,
    /// Lock messages the DLC actually sent to the DLM (0→1 transitions).
    pub dlm_lock_messages: Counter,
    /// Release messages sent to the DLM (1→0 transitions).
    pub dlm_release_messages: Counter,
    /// Notifications received from the DLM.
    pub notifications_in: Counter,
    /// Notification deliveries to local displays (fan-out).
    pub notifications_dispatched: Counter,
    /// Resync sweeps received (the server collapsed a notification burst
    /// into one "re-read these objects" marker).
    pub resyncs_in: Counter,
    /// Attribute-level delta notifications received.
    pub deltas_in: Counter,
    /// Deltas that could not be applied (stale projection version,
    /// uncached object) and fell back to a forced re-read.
    pub delta_fallbacks: Counter,
    /// Cursor acknowledgements received (the server confirming every
    /// logged update through a seqno reached this client).
    pub cursor_acks_in: Counter,
    /// `ReplayNeeded` markers answered with a `ReplayFrom{cursor}`.
    pub replays_requested: Counter,
    /// Cursor acks that regressed (lower seqno than already recorded).
    /// Expected exactly when the DLM restarted with a fresh seqno space;
    /// counted and ignored — the cursor stays monotone within an
    /// incarnation and resets only on a full resync.
    pub cursor_gaps: Counter,
    /// Events dropped because a display's bounded queue was full. A
    /// display that stops draining its queue loses notifications rather
    /// than growing client memory without bound; its view is restored by
    /// the next refresh cycle or reconnect resync.
    pub display_queue_drops: Counter,
    /// Depth of the per-display event queues, sampled at enqueue time.
    /// The high-water side is the memory-bound evidence.
    pub display_queue_depth: Gauge,
}

impl DlcStats {
    /// Counter values for reports and the unified stats registry.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("local_lock_requests", self.local_lock_requests.get()),
            ("dlm_lock_messages", self.dlm_lock_messages.get()),
            ("dlm_release_messages", self.dlm_release_messages.get()),
            ("notifications_in", self.notifications_in.get()),
            (
                "notifications_dispatched",
                self.notifications_dispatched.get(),
            ),
            ("resyncs_in", self.resyncs_in.get()),
            ("deltas_in", self.deltas_in.get()),
            ("delta_fallbacks", self.delta_fallbacks.get()),
            ("cursor_acks_in", self.cursor_acks_in.get()),
            ("replays_requested", self.replays_requested.get()),
            ("cursor_gaps", self.cursor_gaps.get()),
            ("display_queue_drops", self.display_queue_drops.get()),
            (
                "display_queue_high_water",
                self.display_queue_depth.high_water(),
            ),
        ]
    }
}

impl displaydb_common::stats::StatsSource for DlcStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

/// Per-object projection bookkeeping (§ 4.2.1 extended with attribute
/// projections): which displays narrowed their interest, and what the
/// DLM currently has registered for this object.
#[derive(Default)]
struct OidProjection {
    /// display -> its projected attrs (sorted). Displays watching the
    /// whole object appear in `deps` only.
    by_display: HashMap<DisplayId, Vec<u16>>,
    /// The union + version currently registered with the DLM; `None`
    /// while the object is registered with full interest (some display
    /// wants every attribute, or interest was widened).
    registered: Option<(Vec<u16>, u32)>,
}

struct DlcState {
    /// object -> displays that depend on it.
    deps: HashMap<Oid, HashSet<DisplayId>>,
    /// object -> projection bookkeeping (only for objects at least one
    /// display watches through a projection).
    proj: HashMap<Oid, OidProjection>,
    /// display -> its event queue.
    subscribers: HashMap<DisplayId, crossbeam::channel::Sender<DlcEvent>>,
}

/// Applies an attribute-level delta to the client's object cache;
/// returns `false` when the object is not cached (or not patchable), in
/// which case the DLC falls back to a forced re-read. `Arc` so dispatch
/// can clone the hook out and invoke it without holding the hook mutex
/// (the hook takes cache locks of its own).
type DeltaHook = Arc<dyn Fn(Oid, &[(u16, Vec<u8>)]) -> bool + Send + Sync>;

/// The per-client display lock client.
pub struct Dlc {
    backend: Arc<dyn DlmBackend>,
    state: OrderedMutex<DlcState>,
    stats: DlcStats,
    /// Capacity of each display's event queue (bounded so a display that
    /// stops polling cannot grow client memory without limit).
    queue_capacity: usize,
    /// Monotonic projection-registry version; bumped whenever a
    /// registration changes so stale in-flight deltas are detectable.
    version_gen: std::sync::atomic::AtomicU32,
    delta_hook: OrderedMutex<Option<DeltaHook>>,
    /// Last update-log seqno the server acknowledged as fully
    /// delivered, per DLM shard (DESIGN.md §§ 13, 16): index = shard,
    /// grown on demand as tagged acks arrive. An unsharded DLM only
    /// ever acks shard 0, so the vector degenerates to the old single
    /// cursor. Carried in the resume token (as a cursor vector) so
    /// reconnects can recover with a shard-parallel replay instead of a
    /// full resync. Leaf lock: taken alone, updated, released — never
    /// nested.
    cursors: OrderedMutex<Vec<u64>>,
}

impl Dlc {
    /// Create a DLC over a backend, with the default display-queue
    /// capacity from [`OverloadConfig`].
    pub fn new(backend: Arc<dyn DlmBackend>) -> Self {
        Self::with_queue_capacity(backend, OverloadConfig::default().display_queue_capacity)
    }

    /// Create a DLC with an explicit per-display queue capacity.
    pub fn with_queue_capacity(backend: Arc<dyn DlmBackend>, queue_capacity: usize) -> Self {
        Self {
            backend,
            state: OrderedMutex::new(
                ranks::DLC_STATE,
                DlcState {
                    deps: HashMap::new(),
                    proj: HashMap::new(),
                    subscribers: HashMap::new(),
                },
            ),
            stats: DlcStats::default(),
            queue_capacity: queue_capacity.max(1),
            version_gen: std::sync::atomic::AtomicU32::new(0),
            delta_hook: OrderedMutex::new(ranks::DLC_DELTA_HOOK, None),
            cursors: OrderedMutex::new(ranks::DLC_CURSOR, Vec::new()),
        }
    }

    /// The last server-acknowledged update-log seqno of shard 0 (0 =
    /// never acked, replay-from-0 streams the whole retained log).
    /// Against an unsharded DLM this is *the* cursor.
    pub fn cursor(&self) -> u64 {
        self.cursors.lock().first().copied().unwrap_or(0)
    }

    /// The last acknowledged seqno in `shard`'s log (0 = never acked).
    pub fn cursor_of(&self, shard: u32) -> u64 {
        self.cursors
            .lock()
            .get(shard as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Every shard's acknowledged cursor, `(shard, seqno)` in shard
    /// order — the vector a resume token carries (DESIGN.md § 16).
    /// Empty until the first ack arrives.
    pub fn cursors(&self) -> Vec<(u32, u64)> {
        self.cursors
            .lock()
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Forget every shard's cursor after a full resync: the next
    /// acknowledgement per shard is adopted unconditionally, which is
    /// how the client crosses into a restarted DLM's fresh seqno
    /// spaces.
    pub fn reset_cursor(&self) {
        self.cursors.lock().clear();
    }

    /// Record one shard-tagged cursor acknowledgement, monotone per
    /// shard.
    fn record_ack(&self, shard: u32, seqno: u64) {
        self.stats.cursor_acks_in.inc();
        let mut cursors = self.cursors.lock();
        let idx = shard as usize;
        if cursors.len() <= idx {
            cursors.resize(idx + 1, 0);
        }
        if seqno >= cursors[idx] {
            cursors[idx] = seqno;
        } else {
            // A regressed ack (restarted DLM, fresh seqno space): count
            // it, keep the cursor monotone, and let the truncation
            // fallback on the next replay resolve the mismatch. Never
            // panic on the reader.
            self.stats.cursor_gaps.inc();
        }
    }

    /// Install the hook that patches the client's object cache from an
    /// attribute-level delta. A `false` return from the hook makes the
    /// DLC fall back to a forced re-read of the object.
    pub fn set_delta_hook(
        &self,
        hook: impl Fn(Oid, &[(u16, Vec<u8>)]) -> bool + Send + Sync + 'static,
    ) {
        *self.delta_hook.lock() = Some(Arc::new(hook));
    }

    /// DLC statistics.
    pub fn stats(&self) -> &DlcStats {
        &self.stats
    }

    /// The backend (for reporting commits in the agent deployment).
    pub fn backend(&self) -> &Arc<dyn DlmBackend> {
        &self.backend
    }

    /// Register a display; notifications for its objects arrive on the
    /// returned receiver. The queue is bounded (`queue_capacity` events,
    /// default [`OverloadConfig::display_queue_capacity`]): a display
    /// that stops draining loses events past the bound instead of
    /// growing memory, and recovers via the next refresh or resync.
    pub fn register_display(&self, display: DisplayId) -> crossbeam::channel::Receiver<DlcEvent> {
        let (tx, rx) = crossbeam::channel::bounded(self.queue_capacity);
        self.state.lock().subscribers.insert(display, tx);
        rx
    }

    /// Non-blocking enqueue onto one display's bounded queue. Full means
    /// the display is not draining; dropping there isolates the slow
    /// display instead of stalling the dispatch thread (which is the
    /// connection reader in the integrated deployment).
    fn offer(&self, tx: &crossbeam::channel::Sender<DlcEvent>, event: DlcEvent) -> bool {
        match tx.try_send(event) {
            Ok(()) => {
                self.stats.display_queue_depth.set(tx.len() as u64);
                true
            }
            Err(crossbeam::channel::TrySendError::Full(_)) => {
                self.stats.display_queue_drops.inc();
                false
            }
            Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
        }
    }

    /// Acquire display locks for `display` on `oids`. Only objects not
    /// already locked by *any* display of this client generate DLM
    /// traffic.
    pub fn acquire(&self, display: DisplayId, oids: &[Oid]) -> DbResult<()> {
        self.stats.local_lock_requests.add(oids.len() as u64);
        let new: Vec<Oid> = {
            let mut state = self.state.lock();
            oids.iter()
                .copied()
                .filter(|&oid| {
                    let deps = state.deps.entry(oid).or_default();
                    let was_empty = deps.is_empty();
                    deps.insert(display);
                    // A full-interest display joining a projected object
                    // widens the DLM registration back to "everything".
                    let widened = state
                        .proj
                        .get_mut(&oid)
                        .is_some_and(|p| p.registered.take().is_some());
                    was_empty || widened
                })
                .collect()
        };
        if !new.is_empty() {
            self.stats.dlm_lock_messages.add(new.len() as u64);
            self.backend.lock(new)?;
        }
        Ok(())
    }

    /// Acquire display locks for `display` on `oids`, registering that
    /// the display only renders the attribute layout indices in `attrs`.
    /// When every local display watching an object is projected, the DLM
    /// registration carries the union of their projections and updates
    /// arrive as attribute-level deltas; otherwise the existing
    /// full-interest registration stands.
    pub fn acquire_projected(
        &self,
        display: DisplayId,
        oids: &[Oid],
        attrs: &[u16],
    ) -> DbResult<()> {
        self.stats.local_lock_requests.add(oids.len() as u64);
        let mut wanted = attrs.to_vec();
        wanted.sort_unstable();
        wanted.dedup();
        let version = self
            .version_gen
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            + 1;
        // Per object: record the display's projection, then work out
        // whether the DLM registration must change — grouped by union so
        // objects sharing one end up in one wire message.
        let mut groups: HashMap<Vec<u16>, Vec<Oid>> = HashMap::new();
        {
            let mut state = self.state.lock();
            for &oid in oids {
                let deps = state.deps.entry(oid).or_default();
                deps.insert(display);
                let watchers: Vec<DisplayId> = deps.iter().copied().collect();
                let proj = state.proj.entry(oid).or_default();
                proj.by_display.insert(display, wanted.clone());
                let all_projected = watchers.iter().all(|d| proj.by_display.contains_key(d));
                if !all_projected {
                    // Some display wants the whole object; the existing
                    // full-interest registration already covers this one.
                    continue;
                }
                let mut union: Vec<u16> = proj.by_display.values().flatten().copied().collect();
                union.sort_unstable();
                union.dedup();
                if proj.registered.as_ref().is_some_and(|(u, _)| *u == union) {
                    continue; // same union already registered
                }
                proj.registered = Some((union.clone(), version));
                groups.entry(union).or_default().push(oid);
            }
        }
        if !groups.is_empty() {
            let n: usize = groups.values().map(Vec::len).sum();
            self.stats.dlm_lock_messages.add(n as u64);
            for (union, oids) in groups {
                self.backend.lock_projected(oids, union, version)?;
            }
        }
        Ok(())
    }

    /// Release `display`'s interest in `oids`; objects no local display
    /// needs anymore are released at the DLM.
    pub fn release(&self, display: DisplayId, oids: &[Oid]) -> DbResult<()> {
        let gone: Vec<Oid> = {
            let mut state = self.state.lock();
            oids.iter()
                .copied()
                .filter(|oid| {
                    if let Some(deps) = state.deps.get_mut(oid) {
                        deps.remove(&display);
                        if deps.is_empty() {
                            state.deps.remove(oid);
                            state.proj.remove(oid);
                            return true;
                        }
                        // Other displays remain: drop this display's
                        // projection but leave the DLM registration as
                        // is — a wider interest only costs extra
                        // notifications, never correctness.
                        if let Some(p) = state.proj.get_mut(oid) {
                            p.by_display.remove(&display);
                        }
                    }
                    false
                })
                .collect()
        };
        if !gone.is_empty() {
            self.stats.dlm_release_messages.add(gone.len() as u64);
            self.backend.release(gone)?;
        }
        Ok(())
    }

    /// Unregister a display entirely, releasing everything it watched.
    pub fn release_display(&self, display: DisplayId) -> DbResult<()> {
        let watched: Vec<Oid> = {
            let state = self.state.lock();
            state
                .deps
                .iter()
                .filter(|(_, deps)| deps.contains(&display))
                .map(|(&oid, _)| oid)
                .collect()
        };
        self.release(display, &watched)?;
        self.state.lock().subscribers.remove(&display);
        Ok(())
    }

    /// Objects currently display-locked by this client (after dedup).
    pub fn locked_objects(&self) -> usize {
        self.state.lock().deps.len()
    }

    /// Dispatch an incoming DLM event to every dependent display.
    pub fn dispatch(&self, event: DlmEvent) {
        // Batches exist only on the wire (the server's outbox coalesces a
        // drain into one frame); unwrap before counting so stats reflect
        // logical notifications.
        if let DlmEvent::Batch(events) = event {
            for e in events {
                self.dispatch(e);
            }
            return;
        }
        // Cursor-protocol control events are connection plumbing, not
        // notifications: handle them before the notification counters.
        match &event {
            // An untagged ack comes from an unsharded DLM, whose one
            // seqno space is shard 0 by definition.
            DlmEvent::CursorAck { seqno } => {
                self.record_ack(0, *seqno);
                return;
            }
            DlmEvent::ShardCursorAck { shard, seqno } => {
                self.record_ack(*shard, *seqno);
                return;
            }
            DlmEvent::ReplayNeeded { .. } => {
                // The outbox swept our backlog into the update log.
                // Answer with ReplayFrom — from a detached thread, NOT
                // here: in the integrated deployment this dispatch runs
                // on the connection reader, and the replay request is a
                // blocking call whose response needs that same reader.
                self.stats.replays_requested.inc();
                let backend = Arc::clone(&self.backend);
                let cursor = self.cursor();
                // On error the connection is dying; supervisor-driven
                // reconnect recovery (replay or resync) takes over.
                // Incarnation 0: the marker arrived on a live connection,
                // so cursor and log cannot have diverged.
                let _ = std::thread::Builder::new()
                    .name("dlc-replay".into())
                    .spawn(move || {
                        let _ = backend.replay_from(cursor, 0);
                    });
                return;
            }
            DlmEvent::ShardReplayNeeded { shard, .. } => {
                // Same as ReplayNeeded, scoped to one shard's seqno
                // space: only that shard's backlog was swept, so only
                // that shard replays — the other shards' streams flow
                // on undisturbed.
                self.stats.replays_requested.inc();
                let backend = Arc::clone(&self.backend);
                let shard = *shard;
                let cursor = self.cursor_of(shard);
                let _ = std::thread::Builder::new()
                    .name("dlc-replay".into())
                    .spawn(move || {
                        let _ = backend.replay_from_shard(shard, cursor, 0);
                    });
                return;
            }
            _ => {}
        }
        self.stats.notifications_in.inc();
        let oid = match &event {
            DlmEvent::Updated(u) => u.oid,
            DlmEvent::Marked { oid, .. } | DlmEvent::Resolved { oid, .. } => *oid,
            // An attribute-level delta: patch the cached object in place
            // when our projection registration (by version) and cache
            // contents allow it; otherwise degrade to a forced re-read.
            DlmEvent::Delta {
                oid,
                version,
                changed,
                ..
            } => {
                self.stats.deltas_in.inc();
                let current = self
                    .state
                    .lock()
                    .proj
                    .get(oid)
                    .and_then(|p| p.registered.as_ref().map(|(_, v)| *v));
                // Clone the hook out and run it with no DLC lock held: it
                // patches the object cache, which has locks of its own.
                let hook = self.delta_hook.lock().clone();
                let applied =
                    current == Some(*version) && hook.map_or(true, |hook| hook(*oid, changed));
                if !applied {
                    self.stats.delta_fallbacks.inc();
                    let oid = *oid;
                    self.resync(&[oid]);
                    return;
                }
                *oid
            }
            DlmEvent::Batch(_)
            | DlmEvent::CursorAck { .. }
            | DlmEvent::ShardCursorAck { .. }
            | DlmEvent::ReplayNeeded { .. }
            | DlmEvent::ShardReplayNeeded { .. } => {
                unreachable!("handled above")
            }
            // Ready is a connection-level handshake ack, not an object
            // notification; it never reaches the dispatch path.
            DlmEvent::Ready { .. } => return,
            // The server's outbox overflowed and swept queued per-object
            // notifications into one marker: answer by forcing re-reads
            // of the watched subset (the same machinery a reconnect
            // uses), which converges the view without ever replaying the
            // lost burst.
            DlmEvent::ResyncRequired { oids } => {
                self.stats.resyncs_in.inc();
                // A full resync re-baselines the view, so the cursor is
                // meaningless (and possibly from a previous DLM
                // incarnation's seqno space): forget it and adopt the
                // next ack unconditionally.
                self.reset_cursor();
                self.resync(oids);
                return;
            }
            // The server demoted this client to resync-only delivery;
            // every display should render stale until refreshes land.
            DlmEvent::Lagging => {
                self.broadcast(DlcEvent::Lagging);
                return;
            }
        };
        // The update is now applied at this client (delta patched, or
        // invalidation about to fan out to its displays).
        event.record_stage(displaydb_common::trace::Stage::DlcApply);
        let targets: Vec<crossbeam::channel::Sender<DlcEvent>> = {
            let state = self.state.lock();
            state
                .deps
                .get(&oid)
                .map(|displays| {
                    displays
                        .iter()
                        .filter_map(|d| state.subscribers.get(d).cloned())
                        .collect()
                })
                .unwrap_or_default()
        };
        for tx in targets {
            if self.offer(&tx, DlcEvent::Dlm(event.clone())) {
                self.stats.notifications_dispatched.inc();
            }
        }
    }

    /// Send a connection-health event to *every* registered display,
    /// regardless of watched objects.
    pub fn broadcast(&self, event: DlcEvent) {
        let targets: Vec<crossbeam::channel::Sender<DlcEvent>> =
            self.state.lock().subscribers.values().cloned().collect();
        for tx in targets {
            let _ = self.offer(&tx, event.clone());
        }
    }

    /// Every object some display of this client currently watches.
    pub fn watched_objects(&self) -> Vec<Oid> {
        self.state.lock().deps.keys().copied().collect()
    }

    /// Re-register every live display-lock registration with the DLM —
    /// the recovery step after a reconnect, when the server (or agent)
    /// has lost this client's lock table. Returns how many objects were
    /// re-locked.
    pub fn relock_all(&self) -> DbResult<usize> {
        // Projected registrations are replayed as such, grouped by union
        // only: the channel behind the backend was just replaced, so no
        // delta tagged with an old projection version can still be in
        // flight, and every union can be re-registered under one fresh
        // version. That collapses the relock into one wire message per
        // distinct union instead of one per original `acquire_projected`
        // call — the difference between O(unions) and O(objects) frames
        // when a whole fleet reconnects at once. Everything else
        // re-locks with full interest.
        let (plain, groups) = {
            let mut state = self.state.lock();
            let mut plain: Vec<Oid> = Vec::new();
            let mut by_union: HashMap<Vec<u16>, Vec<Oid>> = HashMap::new();
            for (&oid, _) in state.deps.iter() {
                match state.proj.get(&oid).and_then(|p| p.registered.as_ref()) {
                    Some((union, _)) => by_union.entry(union.clone()).or_default().push(oid),
                    None => plain.push(oid),
                }
            }
            let mut groups: Vec<(Vec<u16>, u32, Vec<Oid>)> = Vec::with_capacity(by_union.len());
            for (union, oids) in by_union {
                let version = self
                    .version_gen
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    + 1;
                for &oid in &oids {
                    if let Some(proj) = state.proj.get_mut(&oid) {
                        proj.registered = Some((union.clone(), version));
                    }
                }
                groups.push((union, version, oids));
            }
            (plain, groups)
        };
        let n = plain.len() + groups.iter().map(|(_, _, oids)| oids.len()).sum::<usize>();
        if n == 0 {
            return Ok(0);
        }
        self.stats.dlm_lock_messages.add(n as u64);
        if !plain.is_empty() {
            self.backend.lock(plain)?;
        }
        for (attrs, version, oids) in groups {
            self.backend.lock_projected(oids, attrs, version)?;
        }
        Ok(n)
    }

    /// After a reconnect, force dependent displays to refresh `oids`
    /// (those the server reported stale, or everything watched when the
    /// outage left us with no version information). Only watched objects
    /// generate events; returns how many did.
    pub fn resync(&self, oids: &[Oid]) -> usize {
        let watched: std::collections::HashSet<Oid> = {
            let state = self.state.lock();
            oids.iter()
                .copied()
                .filter(|oid| state.deps.contains_key(oid))
                .collect()
        };
        for &oid in &watched {
            self.dispatch(DlmEvent::Updated(UpdateInfo::lazy(oid)));
        }
        watched.len()
    }
}

impl std::fmt::Debug for Dlc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dlc")
            .field("locked_objects", &self.locked_objects())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_common::DbError;
    use parking_lot::Mutex;

    /// (oids, projected attrs, projection version) per lock_projected call.
    type ProjectedCall = (Vec<Oid>, Vec<u16>, u32);

    #[derive(Default)]
    struct MockBackend {
        locks: Mutex<Vec<Oid>>,
        releases: Mutex<Vec<Oid>>,
        projected: Mutex<Vec<ProjectedCall>>,
        /// (shard, cursor) per replay request reaching the backend.
        replays: Mutex<Vec<(u32, u64)>>,
    }

    impl DlmBackend for MockBackend {
        fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
            self.locks.lock().extend(oids);
            Ok(())
        }
        fn lock_projected(&self, oids: Vec<Oid>, attrs: Vec<u16>, version: u32) -> DbResult<()> {
            self.projected.lock().push((oids, attrs, version));
            Ok(())
        }
        fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
            self.releases.lock().extend(oids);
            Ok(())
        }
        fn report_commit(&self, _: Vec<UpdateInfo>) -> DbResult<()> {
            Ok(())
        }
        fn report_intent(&self, _: Vec<Oid>, _: TxnId) -> DbResult<()> {
            Ok(())
        }
        fn report_resolution(&self, _: Vec<Oid>, _: TxnId, _: bool) -> DbResult<()> {
            Ok(())
        }
        fn replay_from(&self, cursor: u64, _incarnation: u64) -> DbResult<()> {
            self.replays.lock().push((0, cursor));
            Ok(())
        }
        fn replay_from_shard(&self, shard: u32, cursor: u64, _incarnation: u64) -> DbResult<()> {
            self.replays.lock().push((shard, cursor));
            Ok(())
        }
    }

    fn o(i: u64) -> Oid {
        Oid::new(i)
    }

    fn d(i: u64) -> DisplayId {
        DisplayId::new(i)
    }

    #[test]
    fn dedup_one_lock_per_object() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire(d(1), &[o(1), o(2)]).unwrap();
        dlc.acquire(d(2), &[o(1), o(3)]).unwrap(); // o(1) already locked
        assert_eq!(backend.locks.lock().len(), 3, "o(1) must not lock twice");
        assert_eq!(dlc.stats().local_lock_requests.get(), 4);
        assert_eq!(dlc.stats().dlm_lock_messages.get(), 3);
    }

    #[test]
    fn release_only_on_last_display() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire(d(1), &[o(1)]).unwrap();
        dlc.acquire(d(2), &[o(1)]).unwrap();
        dlc.release(d(1), &[o(1)]).unwrap();
        assert!(backend.releases.lock().is_empty(), "d(2) still watches");
        dlc.release(d(2), &[o(1)]).unwrap();
        assert_eq!(*backend.releases.lock(), vec![o(1)]);
        assert_eq!(dlc.locked_objects(), 0);
    }

    #[test]
    fn dispatch_fans_out_to_dependent_displays_only() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        let r1 = dlc.register_display(d(1));
        let r2 = dlc.register_display(d(2));
        let r3 = dlc.register_display(d(3));
        dlc.acquire(d(1), &[o(5)]).unwrap();
        dlc.acquire(d(2), &[o(5)]).unwrap();
        dlc.acquire(d(3), &[o(6)]).unwrap();

        dlc.dispatch(DlmEvent::Updated(UpdateInfo::lazy(o(5))));
        assert!(r1.try_recv().is_ok());
        assert!(r2.try_recv().is_ok());
        assert!(r3.try_recv().is_err());
        assert_eq!(dlc.stats().notifications_in.get(), 1);
        assert_eq!(dlc.stats().notifications_dispatched.get(), 2);
    }

    #[test]
    fn release_display_cleans_everything() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1), o(2), o(3)]).unwrap();
        dlc.release_display(d(1)).unwrap();
        assert_eq!(dlc.locked_objects(), 0);
        assert_eq!(backend.releases.lock().len(), 3);
        dlc.dispatch(DlmEvent::Updated(UpdateInfo::lazy(o(1))));
        assert!(r1.try_recv().is_err());
    }

    #[test]
    fn reacquire_after_release_sends_again() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1)]).unwrap();
        dlc.release(d(1), &[o(1)]).unwrap();
        dlc.acquire(d(1), &[o(1)]).unwrap();
        assert_eq!(backend.locks.lock().len(), 2);
    }

    #[test]
    fn relock_resync_and_broadcast_after_reconnect() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1), o(2)]).unwrap();
        assert_eq!(dlc.relock_all().unwrap(), 2, "replays all registrations");
        assert_eq!(backend.locks.lock().len(), 4);

        // Resync only touches watched objects.
        assert_eq!(dlc.resync(&[o(1), o(9)]), 1);
        match r1.try_recv().unwrap() {
            DlcEvent::Dlm(DlmEvent::Updated(u)) => assert_eq!(u.oid, o(1)),
            other => panic!("unexpected {other:?}"),
        }

        dlc.broadcast(DlcEvent::Degraded);
        assert!(matches!(r1.try_recv().unwrap(), DlcEvent::Degraded));
        dlc.broadcast(DlcEvent::Restored);
        assert!(matches!(r1.try_recv().unwrap(), DlcEvent::Restored));
    }

    #[test]
    fn resync_required_forces_rereads_of_watched_objects_only() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1), o(2)]).unwrap();

        // A sweep covering one watched and one unwatched object yields
        // exactly one forced re-read.
        dlc.dispatch(DlmEvent::ResyncRequired {
            oids: vec![o(2), o(9)],
        });
        match r1.try_recv().unwrap() {
            DlcEvent::Dlm(DlmEvent::Updated(u)) => {
                assert_eq!(u.oid, o(2));
                assert!(u.payload.is_none(), "resync re-reads, never ships state");
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(r1.try_recv().is_err());
        assert_eq!(dlc.stats().resyncs_in.get(), 1);
    }

    #[test]
    fn lagging_broadcasts_to_every_display() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        let r1 = dlc.register_display(d(1));
        let r2 = dlc.register_display(d(2));
        dlc.acquire(d(1), &[o(1)]).unwrap(); // d(2) watches nothing

        dlc.dispatch(DlmEvent::Lagging);
        assert!(matches!(r1.try_recv().unwrap(), DlcEvent::Lagging));
        assert!(matches!(r2.try_recv().unwrap(), DlcEvent::Lagging));
    }

    #[test]
    fn full_display_queue_drops_instead_of_blocking() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::with_queue_capacity(backend, 2);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1)]).unwrap();

        // Three sends into a capacity-2 queue: the third must drop, not
        // stall the dispatching thread.
        for _ in 0..3 {
            dlc.dispatch(DlmEvent::Updated(UpdateInfo::lazy(o(1))));
        }
        assert_eq!(dlc.stats().notifications_dispatched.get(), 2);
        assert_eq!(dlc.stats().display_queue_drops.get(), 1);
        assert_eq!(dlc.stats().display_queue_depth.high_water(), 2);
        assert!(r1.try_recv().is_ok());
        assert!(r1.try_recv().is_ok());
        assert!(r1.try_recv().is_err());
    }

    fn delta(oid: Oid, version: u32) -> DlmEvent {
        DlmEvent::Delta {
            oid,
            version,
            changed: vec![(0, vec![1])],
            trace: 0,
        }
    }

    fn registered_version(backend: &MockBackend, oid: Oid) -> u32 {
        backend
            .projected
            .lock()
            .iter()
            .rev()
            .find(|(oids, _, _)| oids.contains(&oid))
            .map(|(_, _, v)| *v)
            .expect("no projected registration")
    }

    #[test]
    fn projected_acquire_registers_union() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire_projected(d(1), &[o(1)], &[2, 0]).unwrap();
        dlc.acquire_projected(d(2), &[o(1)], &[3]).unwrap();
        let calls = backend.projected.lock();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].1, vec![0, 2], "attrs sorted");
        assert_eq!(
            calls[1].1,
            vec![0, 2, 3],
            "second registration is the union"
        );
        assert!(calls[1].2 > calls[0].2, "version advances");
        assert!(backend.locks.lock().is_empty(), "no plain lock sent");
    }

    #[test]
    fn same_union_is_not_reregistered() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire_projected(d(1), &[o(1)], &[0, 1]).unwrap();
        dlc.acquire_projected(d(2), &[o(1)], &[1]).unwrap(); // subset: union unchanged
        assert_eq!(backend.projected.lock().len(), 1);
    }

    #[test]
    fn full_interest_display_widens_projection() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire_projected(d(1), &[o(1)], &[0]).unwrap();
        // A plain acquire by a second display must widen the DLM
        // registration even though the lock is not a 0→1 transition.
        dlc.acquire(d(2), &[o(1)]).unwrap();
        assert_eq!(*backend.locks.lock(), vec![o(1)]);
        // Stale deltas against the retired registration now fall back.
        let r1 = dlc.register_display(d(1));
        let version = registered_version(&backend, o(1));
        dlc.dispatch(delta(o(1), version));
        assert_eq!(dlc.stats().delta_fallbacks.get(), 1);
        match r1.try_recv().unwrap() {
            DlcEvent::Dlm(DlmEvent::Updated(u)) => assert_eq!(u.oid, o(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn delta_with_current_version_dispatches_and_patches() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let r1 = dlc.register_display(d(1));
        let patched = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&patched);
        dlc.set_delta_hook(move |oid, changed| {
            sink.lock().push((oid, changed.to_vec()));
            true
        });
        dlc.acquire_projected(d(1), &[o(1)], &[0]).unwrap();
        let version = registered_version(&backend, o(1));
        dlc.dispatch(delta(o(1), version));
        assert!(matches!(
            r1.try_recv().unwrap(),
            DlcEvent::Dlm(DlmEvent::Delta { .. })
        ));
        assert_eq!(patched.lock().len(), 1);
        assert_eq!(dlc.stats().deltas_in.get(), 1);
        assert_eq!(dlc.stats().delta_fallbacks.get(), 0);
    }

    #[test]
    fn stale_delta_version_falls_back_to_resync() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let r1 = dlc.register_display(d(1));
        dlc.acquire_projected(d(1), &[o(1)], &[0]).unwrap();
        let version = registered_version(&backend, o(1));
        dlc.dispatch(delta(o(1), version + 1));
        assert_eq!(dlc.stats().delta_fallbacks.get(), 1);
        match r1.try_recv().unwrap() {
            DlcEvent::Dlm(DlmEvent::Updated(u)) => {
                assert_eq!(u.oid, o(1));
                assert!(u.payload.is_none(), "fallback forces a re-read");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn uncached_object_delta_falls_back_to_resync() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let r1 = dlc.register_display(d(1));
        dlc.set_delta_hook(|_, _| false); // nothing is ever cached
        dlc.acquire_projected(d(1), &[o(1)], &[0]).unwrap();
        let version = registered_version(&backend, o(1));
        dlc.dispatch(delta(o(1), version));
        assert_eq!(dlc.stats().delta_fallbacks.get(), 1);
        assert!(matches!(
            r1.try_recv().unwrap(),
            DlcEvent::Dlm(DlmEvent::Updated(_))
        ));
    }

    #[test]
    fn batch_flattens_to_individual_events() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        let r1 = dlc.register_display(d(1));
        dlc.acquire(d(1), &[o(1), o(2)]).unwrap();
        dlc.dispatch(DlmEvent::Batch(vec![
            DlmEvent::Updated(UpdateInfo::lazy(o(1))),
            DlmEvent::Updated(UpdateInfo::lazy(o(2))),
        ]));
        assert_eq!(dlc.stats().notifications_in.get(), 2, "counted per event");
        assert_eq!(r1.try_iter().count(), 2);
    }

    #[test]
    fn relock_all_replays_projections() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r1 = dlc.register_display(d(1));
        let _r2 = dlc.register_display(d(2));
        dlc.acquire_projected(d(1), &[o(1)], &[0, 1]).unwrap();
        dlc.acquire(d(2), &[o(2)]).unwrap();
        let version = registered_version(&backend, o(1));
        backend.projected.lock().clear();
        backend.locks.lock().clear();
        assert_eq!(dlc.relock_all().unwrap(), 2);
        assert_eq!(*backend.locks.lock(), vec![o(2)]);
        let calls = backend.projected.lock();
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].0, vec![o(1)]);
        assert_eq!(calls[0].1, vec![0, 1]);
        assert!(
            calls[0].2 > version,
            "fresh version: the old channel is gone, no old-version delta \
             can still be in flight, and one version per union keeps the \
             relock to one message per distinct union"
        );
    }

    #[test]
    fn relock_all_coalesces_same_union_registrations() {
        // Objects registered by *separate* acquire_projected calls (each
        // with its own version) share one relock message when their
        // unions match — the mass-reconnect case: a display adds DOs one
        // at a time, then the whole watched set relocks at once.
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        let _r = dlc.register_display(d(1));
        dlc.acquire_projected(d(1), &[o(1)], &[3]).unwrap();
        dlc.acquire_projected(d(1), &[o(2)], &[3]).unwrap();
        dlc.acquire_projected(d(1), &[o(3)], &[3]).unwrap();
        assert_eq!(backend.projected.lock().len(), 3, "three registrations");
        backend.projected.lock().clear();
        assert_eq!(dlc.relock_all().unwrap(), 3);
        let calls = backend.projected.lock();
        assert_eq!(calls.len(), 1, "one message for the shared union");
        let mut oids = calls[0].0.clone();
        oids.sort();
        assert_eq!(oids, vec![o(1), o(2), o(3)]);
        assert_eq!(calls[0].1, vec![3]);
        drop(calls);
        // Deltas tagged with the fresh version apply.
        let version = registered_version(&backend, o(2));
        dlc.dispatch(delta(o(2), version));
    }

    #[test]
    fn shard_cursor_acks_track_independent_spaces() {
        let backend: Arc<dyn DlmBackend> = Arc::new(MockBackend::default());
        let dlc = Dlc::new(backend);
        // Untagged acks are shard 0; tagged acks land in their slot.
        dlc.dispatch(DlmEvent::CursorAck { seqno: 5 });
        dlc.dispatch(DlmEvent::ShardCursorAck { shard: 2, seqno: 9 });
        dlc.dispatch(DlmEvent::ShardCursorAck { shard: 0, seqno: 7 });
        assert_eq!(dlc.cursor(), 7);
        assert_eq!(dlc.cursor_of(1), 0, "untouched shard stays at 0");
        assert_eq!(dlc.cursor_of(2), 9);
        assert_eq!(dlc.cursors(), vec![(0, 7), (1, 0), (2, 9)]);
        assert_eq!(dlc.stats().cursor_acks_in.get(), 3);
        // A regressed ack in one shard gaps only that shard's space.
        dlc.dispatch(DlmEvent::ShardCursorAck { shard: 2, seqno: 3 });
        assert_eq!(dlc.cursor_of(2), 9, "cursor stays monotone");
        assert_eq!(dlc.stats().cursor_gaps.get(), 1);
        // A full resync voids every shard's cursor.
        dlc.dispatch(DlmEvent::ResyncRequired { oids: vec![] });
        assert!(dlc.cursors().is_empty());
        assert_eq!(dlc.cursor_of(2), 0);
    }

    #[test]
    fn shard_replay_needed_replays_that_shard_only() {
        let backend = Arc::new(MockBackend::default());
        let dlc = Dlc::new(Arc::clone(&backend) as Arc<dyn DlmBackend>);
        dlc.dispatch(DlmEvent::ShardCursorAck {
            shard: 3,
            seqno: 11,
        });
        dlc.dispatch(DlmEvent::ShardReplayNeeded { shard: 3, from: 8 });
        // The replay request goes out from a detached thread.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if !backend.replays.lock().is_empty() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "replay request never reached the backend"
            );
            std::thread::yield_now();
        }
        assert_eq!(*backend.replays.lock(), vec![(3, 11)]);
        assert_eq!(dlc.stats().replays_requested.get(), 1);
    }

    #[test]
    fn backend_error_propagates() {
        struct FailBackend;
        impl DlmBackend for FailBackend {
            fn lock(&self, _: Vec<Oid>) -> DbResult<()> {
                Err(DbError::Disconnected)
            }
            fn release(&self, _: Vec<Oid>) -> DbResult<()> {
                Ok(())
            }
            fn report_commit(&self, _: Vec<UpdateInfo>) -> DbResult<()> {
                Ok(())
            }
            fn report_intent(&self, _: Vec<Oid>, _: TxnId) -> DbResult<()> {
                Ok(())
            }
            fn report_resolution(&self, _: Vec<Oid>, _: TxnId, _: bool) -> DbResult<()> {
                Ok(())
            }
        }
        let dlc = Dlc::new(Arc::new(FailBackend));
        let _r = dlc.register_display(d(1));
        assert!(dlc.acquire(d(1), &[o(1)]).is_err());
    }
}
