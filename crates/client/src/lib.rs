//! The client library: connection, database cache, transactions, and the
//! Display Lock Client.
//!
//! A client application holds one [`DbClient`]:
//!
//! * [`conn`] — the duplex connection to the server: sequence-numbered
//!   RPCs, plus asynchronous pushes (cache callbacks, display
//!   notifications) routed off a dedicated reader thread;
//! * [`cache`] — the **client database cache** (paper § 2.2): an LRU,
//!   byte-bounded store of whole objects that the *application does not
//!   control* — the DBMS invalidates entries via callbacks and evicts
//!   under pressure, which is precisely why the display cache exists one
//!   level above it;
//! * [`txn`] — client-side transactions (writes are shipped to the
//!   server's workspace as they happen; commit makes them durable and
//!   updates the local cache);
//! * [`dlc`] — the **Display Lock Client** (paper § 4.2.1): one per
//!   client, deduplicating display-lock requests across the client's many
//!   displays and fanning incoming notifications out locally, so the DLM
//!   sees one lock and sends one notification per client regardless of
//!   how many windows show the object.

pub mod cache;
pub mod conn;
pub mod diskcache;
pub mod dlc;
pub mod supervisor;
pub mod txn;

mod client;

pub use cache::ClientCache;
pub use client::{ClientConfig, DbClient, SessionInfo};
pub use conn::Connection;
pub use diskcache::{DiskCache, DiskCacheStats};
pub use dlc::{Dlc, DlcEvent, DlcStats};
pub use supervisor::{ChannelFactory, Supervisor};
pub use txn::ClientTxn;
