//! Connection supervision: reconnect with backoff, session resume, and
//! display-lock re-registration.
//!
//! A [`Supervisor`] is a monitor thread attached to a [`DbClient`] by
//! [`DbClient::connect_supervised`] (or the agent variant). It watches
//! the current connection generation through the death notifier
//! ([`Connection::on_death`](crate::conn::Connection::on_death)) — no
//! polling — and on death:
//!
//! 1. broadcasts [`DlcEvent::Degraded`] so displays keep serving their
//!    pinned objects marked *stale* instead of going blank;
//! 2. reconnects under a [`ReconnectPolicy`] (exponential backoff with
//!    jitter, bounded attempts/deadline), presenting the stored resume
//!    token and a cached-object manifest so the server can rebuild
//!    copy-table entries and report which copies went stale;
//! 3. re-registers every live display-lock registration and forces
//!    refreshes of the stale set;
//! 4. broadcasts [`DlcEvent::Restored`], after which displays clear any
//!    remaining stale marks.
//!
//! The thread holds only a [`Weak`] handle to the client, so supervision
//! never keeps a dropped client alive; it exits when the client is
//! dropped, deliberately closed, or the policy gives up.

use crate::client::DbClient;
use crate::dlc::DlcEvent;
use displaydb_common::backoff::ReconnectPolicy;
use displaydb_common::DbResult;
use displaydb_wire::Channel;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// Produces a fresh channel per reconnect attempt (e.g. a TCP dial, or a
/// handle to the current in-process hub in tests).
pub type ChannelFactory = Arc<dyn Fn() -> DbResult<Box<dyn Channel>> + Send + Sync>;

/// Which connection a supervisor watches.
enum Target {
    /// The main server connection: resume the session on reconnect.
    Server,
    /// The DLM agent connection: replay lock registrations on reconnect.
    Agent,
}

/// A monitor thread supervising one of a client's connections.
pub struct Supervisor {
    _thread: JoinHandle<()>,
}

impl Supervisor {
    /// Supervise `client`'s server connection.
    pub fn server(
        client: &Arc<DbClient>,
        factory: ChannelFactory,
        policy: ReconnectPolicy,
    ) -> Self {
        Self::spawn(client, factory, policy, Target::Server)
    }

    /// Supervise `client`'s DLM agent connection (agent deployment).
    pub fn agent(client: &Arc<DbClient>, factory: ChannelFactory, policy: ReconnectPolicy) -> Self {
        Self::spawn(client, factory, policy, Target::Agent)
    }

    fn spawn(
        client: &Arc<DbClient>,
        factory: ChannelFactory,
        policy: ReconnectPolicy,
        target: Target,
    ) -> Self {
        let weak = Arc::downgrade(client);
        let name = match target {
            Target::Server => "db-supervisor",
            Target::Agent => "dlm-supervisor",
        };
        let thread = std::thread::Builder::new()
            .name(name.into())
            .spawn(move || monitor_loop(weak, factory, policy, target))
            .expect("spawn supervisor thread");
        Self { _thread: thread }
    }
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Supervisor").finish_non_exhaustive()
    }
}

fn monitor_loop(
    weak: Weak<DbClient>,
    factory: ChannelFactory,
    policy: ReconnectPolicy,
    target: Target,
) {
    loop {
        // Register a death notifier on the current generation, then drop
        // every strong handle before blocking: the monitor must not keep
        // a dropped client (or its connection) alive while it waits.
        let (tx, rx) = crossbeam::channel::bounded(1);
        {
            let Some(client) = weak.upgrade() else { return };
            match target {
                Target::Server => client.conn().on_death(tx),
                Target::Agent => match client.agent_cell().and_then(|c| c.get().ok()) {
                    Some(agent) => agent.on_death(tx),
                    None => return,
                },
            }
        }
        if rx.recv().is_err() {
            return;
        }

        let Some(client) = weak.upgrade() else { return };
        if client.is_closed() {
            return;
        }
        client.dlc().broadcast(DlcEvent::Degraded);
        if !reconnect(&client, &factory, &policy, &target) {
            return;
        }
        client.dlc().broadcast(DlcEvent::Restored);
        // Loop around and watch the new generation.
    }
}

/// The backoff loop. Returns whether a new connection generation is live.
fn reconnect(
    client: &Arc<DbClient>,
    factory: &ChannelFactory,
    policy: &ReconnectPolicy,
    target: &Target,
) -> bool {
    let started = Instant::now();
    let recovery = client.conn_stats().recovery.clone();
    // Jitter seed: stable per session, so concurrent clients desynchronize
    // their retry storms but a single client's schedule is deterministic.
    let seed = client.session().token;
    let mut attempt: u32 = 1;
    // `Overloaded` is the server's reconnect admission gate saying "try
    // again later", not a failure of this client's session: sheds back
    // off (with growing delay) but do not consume reconnect attempts.
    // Their own generous budget — and the policy deadline, when set —
    // keeps a permanently overloaded server from pinning the thread.
    let mut sheds: u32 = 0;
    let max_sheds = policy.max_attempts.saturating_mul(8).max(8);
    loop {
        if client.is_closed() || !policy.allows(attempt, started.elapsed()) || sheds > max_sheds {
            return false;
        }
        std::thread::sleep(policy.delay_for(attempt.saturating_add(sheds), seed));
        recovery.reconnect_attempts.inc();
        let connected = factory().and_then(|channel| match target {
            Target::Server => client.try_resume(channel).map(|_| ()),
            Target::Agent => client.try_reconnect_agent(channel),
        });
        match connected {
            Ok(()) => return true,
            Err(displaydb_common::DbError::Overloaded) => {
                recovery.overload_sheds.inc();
                sheds += 1;
            }
            Err(_) => attempt += 1,
        }
    }
}
