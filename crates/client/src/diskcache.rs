//! Optional client local-disk cache.
//!
//! Footnote 2 of the paper: "A client's local disk has occasionally been
//! considered as an extra intermediate level of the hierarchy" (citing
//! Franklin, Carey & Livny's local disk caching work, the paper's
//! reference \[5\]). This implements that level: a byte-bounded,
//! file-backed object cache between the in-memory database cache and the
//! server.
//!
//! * On a memory miss, the disk cache is probed before the network.
//! * Every object fetched from (or committed to) the server is written
//!   through.
//! * Server callbacks invalidate disk entries together with memory
//!   entries, so the avoidance-based consistency guarantee extends to
//!   this level.
//!
//! Layout: one file per object (`<oid>.obj`) under the cache directory,
//! containing the encoded [`DbObject`]. Eviction is LRU by access time,
//! tracked in memory (rebuilt from directory metadata on open).

use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{DbResult, Oid};
use displaydb_schema::DbObject;
use displaydb_wire::{Decode, Encode};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

#[derive(Default)]
struct DiskState {
    /// oid -> (file size, last-access tick).
    entries: HashMap<Oid, (u64, u64)>,
    bytes: u64,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Statistics snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskCacheStats {
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Files evicted for space.
    pub evictions: u64,
    /// Resident objects.
    pub objects: usize,
    /// Resident bytes.
    pub bytes: u64,
}

/// A byte-bounded local-disk object cache.
pub struct DiskCache {
    dir: PathBuf,
    capacity_bytes: u64,
    state: OrderedMutex<DiskState>,
}

impl DiskCache {
    /// Open (or create) a disk cache at `dir`, bounded to
    /// `capacity_bytes`. Existing entries are re-indexed.
    pub fn open(dir: impl AsRef<Path>, capacity_bytes: u64) -> DbResult<Self> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let mut state = DiskState::default();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".obj")) else {
                continue;
            };
            let Ok(raw) = stem.parse::<u64>() else {
                continue;
            };
            let len = entry.metadata()?.len();
            state.tick += 1;
            let tick = state.tick;
            state.entries.insert(Oid::new(raw), (len, tick));
            state.bytes += len;
        }
        let cache = Self {
            dir,
            capacity_bytes,
            state: OrderedMutex::new(ranks::CLIENT_DISKCACHE, state),
        };
        cache.evict_to_fit();
        Ok(cache)
    }

    fn path_of(&self, oid: Oid) -> PathBuf {
        self.dir.join(format!("{}.obj", oid.raw()))
    }

    /// Probe for an object.
    pub fn get(&self, oid: Oid) -> Option<DbObject> {
        {
            let mut state = self.state.lock();
            if !state.entries.contains_key(&oid) {
                state.misses += 1;
                return None;
            }
        }
        match std::fs::read(self.path_of(oid))
            .ok()
            .and_then(|bytes| DbObject::decode_from_bytes(&bytes).ok())
        {
            Some(obj) if obj.oid == oid => {
                let mut state = self.state.lock();
                state.hits += 1;
                state.tick += 1;
                let tick = state.tick;
                if let Some(e) = state.entries.get_mut(&oid) {
                    e.1 = tick;
                }
                Some(obj)
            }
            _ => {
                // Torn or corrupt file: drop it.
                self.remove(oid);
                self.state.lock().misses += 1;
                None
            }
        }
    }

    /// Write an object through to disk.
    pub fn put(&self, obj: &DbObject) {
        let bytes = obj.encode_to_bytes();
        let path = self.path_of(obj.oid);
        // Write-then-rename for atomicity against concurrent probes.
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, &bytes).is_err() || std::fs::rename(&tmp, &path).is_err() {
            return; // disk trouble: the cache silently degrades
        }
        {
            let mut state = self.state.lock();
            state.tick += 1;
            let tick = state.tick;
            if let Some(old) = state.entries.insert(obj.oid, (bytes.len() as u64, tick)) {
                state.bytes -= old.0;
            }
            state.bytes += bytes.len() as u64;
        }
        self.evict_to_fit();
    }

    /// Drop one object (server callback / local invalidation).
    pub fn remove(&self, oid: Oid) {
        let mut state = self.state.lock();
        if let Some((len, _)) = state.entries.remove(&oid) {
            state.bytes -= len;
            let _ = std::fs::remove_file(self.path_of(oid));
        }
    }

    /// Drop several objects.
    pub fn invalidate(&self, oids: &[Oid]) {
        for &oid in oids {
            self.remove(oid);
        }
    }

    fn evict_to_fit(&self) {
        loop {
            let victim = {
                let state = self.state.lock();
                if state.bytes <= self.capacity_bytes || state.entries.len() <= 1 {
                    return;
                }
                state
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, tick))| *tick)
                    .map(|(&oid, _)| oid)
            };
            match victim {
                Some(oid) => {
                    self.remove(oid);
                    self.state.lock().evictions += 1;
                }
                None => return,
            }
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DiskCacheStats {
        let state = self.state.lock();
        DiskCacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            objects: state.entries.len(),
            bytes: state.bytes,
        }
    }
}

impl std::fmt::Debug for DiskCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("DiskCache")
            .field("dir", &self.dir)
            .field("objects", &s.objects)
            .field("bytes", &s.bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_schema::class::ClassBuilder;
    use displaydb_schema::{AttrType, Catalog};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.define(ClassBuilder::new("T").attr("Data", AttrType::Str))
            .unwrap();
        c
    }

    fn obj(cat: &Catalog, oid: u64, data: &str) -> DbObject {
        let mut o = DbObject::new_named(cat, "T").unwrap();
        o.oid = Oid::new(oid);
        o.set(cat, "Data", data).unwrap();
        o
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-diskcache-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_remove() {
        let cat = catalog();
        let dc = DiskCache::open(tmp("basic"), 1 << 20).unwrap();
        assert!(dc.get(Oid::new(1)).is_none());
        dc.put(&obj(&cat, 1, "hello"));
        let back = dc.get(Oid::new(1)).unwrap();
        assert_eq!(back.get(&cat, "Data").unwrap().as_str().unwrap(), "hello");
        dc.remove(Oid::new(1));
        assert!(dc.get(Oid::new(1)).is_none());
        let s = dc.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
    }

    #[test]
    fn survives_reopen() {
        let cat = catalog();
        let dir = tmp("reopen");
        {
            let dc = DiskCache::open(&dir, 1 << 20).unwrap();
            dc.put(&obj(&cat, 7, "persisted"));
        }
        let dc = DiskCache::open(&dir, 1 << 20).unwrap();
        assert_eq!(dc.stats().objects, 1);
        assert_eq!(
            dc.get(Oid::new(7))
                .unwrap()
                .get(&cat, "Data")
                .unwrap()
                .as_str()
                .unwrap(),
            "persisted"
        );
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let cat = catalog();
        let dc = DiskCache::open(tmp("evict"), 400).unwrap();
        for i in 0..10 {
            dc.put(&obj(&cat, i, &"x".repeat(80)));
        }
        let s = dc.stats();
        assert!(s.bytes <= 400);
        assert!(s.evictions > 0);
        // The most recent entry survives.
        assert!(dc.get(Oid::new(9)).is_some());
    }

    #[test]
    fn corrupt_file_dropped_gracefully() {
        let cat = catalog();
        let dir = tmp("corrupt");
        let dc = DiskCache::open(&dir, 1 << 20).unwrap();
        dc.put(&obj(&cat, 3, "fine"));
        std::fs::write(dir.join("3.obj"), b"garbage").unwrap();
        assert!(dc.get(Oid::new(3)).is_none());
        assert_eq!(dc.stats().objects, 0);
    }

    #[test]
    fn replacement_updates_accounting() {
        let cat = catalog();
        let dc = DiskCache::open(tmp("replace"), 1 << 20).unwrap();
        dc.put(&obj(&cat, 1, "short"));
        let b1 = dc.stats().bytes;
        dc.put(&obj(&cat, 1, &"long".repeat(100)));
        let b2 = dc.stats().bytes;
        assert!(b2 > b1);
        assert_eq!(dc.stats().objects, 1);
    }
}
