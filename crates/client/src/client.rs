//! The top-level client handle.

use crate::cache::ClientCache;
use crate::conn::{Connection, PushSink};
use crate::diskcache::DiskCache;
use crate::dlc::{Dlc, DlmBackend};
use crate::txn::ClientTxn;
use displaydb_common::{ClientId, DbError, DbResult, Oid, TxnId};
use displaydb_dlm::{DlmAgentConnection, DlmEvent, UpdateInfo};
use displaydb_schema::{Catalog, DbObject};
use displaydb_server::proto::{Request, Response};
use displaydb_wire::{Channel, Decode};
use std::sync::Arc;
use std::time::Duration;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Name reported to the server (diagnostics).
    pub name: String,
    /// Byte budget for the client database cache.
    pub cache_bytes: usize,
    /// RPC timeout.
    pub call_timeout: Duration,
    /// Optional local-disk cache (paper footnote 2): directory and byte
    /// budget for an intermediate hierarchy level between the memory
    /// cache and the server.
    pub disk_cache: Option<(std::path::PathBuf, u64)>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            name: "displaydb-client".into(),
            cache_bytes: 16 * 1024 * 1024,
            call_timeout: Duration::from_secs(30),
            disk_cache: None,
        }
    }
}

impl ClientConfig {
    /// Config with a given name and defaults otherwise.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }
}

/// Integrated deployment: display-lock traffic rides the main server
/// connection; the server's own commit path raises notifications, so
/// reporting methods are no-ops.
struct IntegratedBackend {
    conn: Arc<Connection>,
}

impl DlmBackend for IntegratedBackend {
    fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.conn.call(Request::DisplayLock { oids }).map(|_| ())
    }
    fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.conn.call(Request::DisplayRelease { oids }).map(|_| ())
    }
    fn report_commit(&self, _updates: Vec<UpdateInfo>) -> DbResult<()> {
        Ok(())
    }
    fn report_intent(&self, _oids: Vec<Oid>, _txn: TxnId) -> DbResult<()> {
        Ok(())
    }
    fn report_resolution(&self, _oids: Vec<Oid>, _txn: TxnId, _committed: bool) -> DbResult<()> {
        Ok(())
    }
}

struct Sink {
    cache: Arc<ClientCache>,
    disk: Option<Arc<DiskCache>>,
    dlc: Arc<Dlc>,
}

impl PushSink for Sink {
    fn on_invalidate(&self, oids: &[Oid]) {
        self.cache.invalidate(oids);
        if let Some(disk) = &self.disk {
            disk.invalidate(oids);
        }
    }
    fn on_dlm(&self, event: DlmEvent) {
        self.dlc.dispatch(event);
    }
}

fn open_disk_cache(config: &ClientConfig) -> DbResult<Option<Arc<DiskCache>>> {
    match &config.disk_cache {
        Some((dir, bytes)) => Ok(Some(Arc::new(DiskCache::open(dir, *bytes)?))),
        None => Ok(None),
    }
}

/// A connected database client: RPCs, database cache, transactions, and
/// the display lock client.
pub struct DbClient {
    conn: Arc<Connection>,
    cache: Arc<ClientCache>,
    disk: Option<Arc<DiskCache>>,
    catalog: Arc<Catalog>,
    id: ClientId,
    dlc: Arc<Dlc>,
    /// Agent deployment: the client reports its own commits/intents to the
    /// DLM (paper § 4.1). Integrated deployment: the server does.
    reports_to_dlm: bool,
}

impl DbClient {
    /// Connect in the **integrated** deployment (display locks handled by
    /// the server's embedded DLM).
    pub fn connect(channel: Box<dyn Channel>, config: ClientConfig) -> DbResult<Arc<Self>> {
        let conn = Connection::new(channel, config.call_timeout);
        let (id, catalog) = Self::handshake(&conn, &config.name)?;
        let cache = Arc::new(ClientCache::new(config.cache_bytes));
        let disk = open_disk_cache(&config)?;
        let dlc = Arc::new(Dlc::new(Arc::new(IntegratedBackend {
            conn: Arc::clone(&conn),
        })));
        conn.set_push_sink(Arc::new(Sink {
            cache: Arc::clone(&cache),
            disk: disk.clone(),
            dlc: Arc::clone(&dlc),
        }));
        Ok(Arc::new(Self {
            conn,
            cache,
            disk,
            catalog: Arc::new(catalog),
            id,
            dlc,
            reports_to_dlm: false,
        }))
    }

    /// Connect in the **agent** deployment: a separate channel to the DLM
    /// agent carries display-lock traffic, and this client reports its own
    /// commits and intents (exactly the paper's architecture, figure 3).
    pub fn connect_with_agent(
        server_channel: Box<dyn Channel>,
        dlm_channel: Box<dyn Channel>,
        config: ClientConfig,
    ) -> DbResult<Arc<Self>> {
        let conn = Connection::new(server_channel, config.call_timeout);
        let (id, catalog) = Self::handshake(&conn, &config.name)?;
        let cache = Arc::new(ClientCache::new(config.cache_bytes));
        let disk = open_disk_cache(&config)?;

        // Events from the agent are dispatched into the DLC; wire the
        // callback through a late-bound slot because the DLC needs the
        // backend first.
        let dlc_slot: Arc<parking_lot::Mutex<Option<Arc<Dlc>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let slot = Arc::clone(&dlc_slot);
        let agent = DlmAgentConnection::connect(dlm_channel, id, move |event| {
            if let Some(dlc) = slot.lock().clone() {
                dlc.dispatch(event);
            }
        })?;
        let dlc = Arc::new(Dlc::new(Arc::new(agent)));
        *dlc_slot.lock() = Some(Arc::clone(&dlc));

        conn.set_push_sink(Arc::new(Sink {
            cache: Arc::clone(&cache),
            disk: disk.clone(),
            dlc: Arc::clone(&dlc),
        }));
        Ok(Arc::new(Self {
            conn,
            cache,
            disk,
            catalog: Arc::new(catalog),
            id,
            dlc,
            reports_to_dlm: true,
        }))
    }

    fn handshake(conn: &Arc<Connection>, name: &str) -> DbResult<(ClientId, Catalog)> {
        match conn.call(Request::Hello {
            name: name.to_string(),
        })? {
            Response::HelloAck { client, catalog } => {
                Ok((client, Catalog::decode_from_bytes(&catalog)?))
            }
            other => Err(DbError::Protocol(format!(
                "unexpected handshake response {other:?}"
            ))),
        }
    }

    /// This client's server-assigned id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// The schema catalog (shipped by the server at handshake).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The client database cache.
    pub fn cache(&self) -> &Arc<ClientCache> {
        &self.cache
    }

    /// The optional local-disk cache (paper footnote 2).
    pub fn disk_cache(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// Write-through of a freshly committed object state into the local
    /// caches (called by [`ClientTxn::commit`]).
    pub(crate) fn cache_committed(&self, obj: &DbObject) {
        self.cache.insert(obj.clone());
        if let Some(disk) = &self.disk {
            disk.put(obj);
        }
    }

    /// Invalidation of a deleted object across the local caches.
    pub(crate) fn uncache_deleted(&self, oid: Oid) {
        self.cache.invalidate(&[oid]);
        if let Some(disk) = &self.disk {
            disk.remove(oid);
        }
    }

    /// The display lock client.
    pub fn dlc(&self) -> &Arc<Dlc> {
        &self.dlc
    }

    /// The raw connection (stats, advanced calls).
    pub fn conn(&self) -> &Arc<Connection> {
        &self.conn
    }

    /// Whether this client reports commits to a DLM agent itself.
    pub fn reports_to_dlm(&self) -> bool {
        self.reports_to_dlm
    }

    /// Read an object, serving from the database cache when possible
    /// (inter-transaction caching: a hit costs no server message), then
    /// the local-disk cache (if configured), then the server.
    pub fn read(&self, oid: Oid) -> DbResult<DbObject> {
        if let Some(obj) = self.cache.get(oid) {
            return Ok(obj);
        }
        if let Some(disk) = &self.disk {
            if let Some(obj) = disk.get(oid) {
                self.cache.insert(obj.clone());
                return Ok(obj);
            }
        }
        self.read_fresh(oid)
    }

    /// Read an object from the server, refreshing the cache.
    pub fn read_fresh(&self, oid: Oid) -> DbResult<DbObject> {
        self.server_read(None, oid)
    }

    /// Read within a transaction: cache-first, but a server miss carries
    /// the transaction id so the read is re-entrant with the
    /// transaction's own exclusive locks (and sees its own workspace).
    pub fn read_in_txn(&self, txn: TxnId, oid: Oid) -> DbResult<DbObject> {
        if let Some(obj) = self.cache.get(oid) {
            return Ok(obj);
        }
        self.server_read(Some(txn), oid)
    }

    fn server_read(&self, txn: Option<TxnId>, oid: Oid) -> DbResult<DbObject> {
        match self.conn.call(Request::Read { txn, oid })? {
            Response::Object { bytes } => {
                let obj = DbObject::decode_from_bytes(&bytes)?;
                // Uncommitted own-transaction state must not enter the
                // shared caches; committed reads may.
                if txn.is_none() {
                    self.cache.insert(obj.clone());
                    if let Some(disk) = &self.disk {
                        disk.put(&obj);
                    }
                }
                Ok(obj)
            }
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Read many objects; cache hits are served locally, misses fetched in
    /// one round-trip. Missing objects yield `None`.
    pub fn read_many(&self, oids: &[Oid]) -> DbResult<Vec<Option<DbObject>>> {
        let mut out: Vec<Option<DbObject>> = vec![None; oids.len()];
        let mut missing: Vec<(usize, Oid)> = Vec::new();
        for (i, &oid) in oids.iter().enumerate() {
            match self.cache.get(oid) {
                Some(obj) => out[i] = Some(obj),
                None => {
                    if let Some(obj) = self.disk.as_ref().and_then(|d| d.get(oid)) {
                        self.cache.insert(obj.clone());
                        out[i] = Some(obj);
                    } else {
                        missing.push((i, oid));
                    }
                }
            }
        }
        if missing.is_empty() {
            return Ok(out);
        }
        let fetch: Vec<Oid> = missing.iter().map(|(_, oid)| *oid).collect();
        match self.conn.call(Request::ReadMany {
            txn: None,
            oids: fetch,
        })? {
            Response::Objects { objects } => {
                for ((i, _), bytes) in missing.into_iter().zip(objects) {
                    if let Some(bytes) = bytes {
                        let obj = DbObject::decode_from_bytes(&bytes)?;
                        self.cache.insert(obj.clone());
                        if let Some(disk) = &self.disk {
                            disk.put(&obj);
                        }
                        out[i] = Some(obj);
                    }
                }
                Ok(out)
            }
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// All objects of a class (by name).
    pub fn extent(&self, class_name: &str, include_subclasses: bool) -> DbResult<Vec<Oid>> {
        let class = self
            .catalog
            .id_of(class_name)
            .ok_or_else(|| DbError::ClassNotFound(class_name.to_string()))?;
        match self.conn.call(Request::Extent {
            class,
            include_subclasses,
        })? {
            Response::Oids { oids } => Ok(oids),
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Start a transaction.
    pub fn begin(self: &Arc<Self>) -> DbResult<ClientTxn> {
        match self.conn.call(Request::Begin)? {
            Response::TxnStarted { txn } => Ok(ClientTxn::new(Arc::clone(self), txn)),
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> DbResult<()> {
        self.conn.call(Request::Ping).map(|_| ())
    }

    /// Ask the server to checkpoint.
    pub fn checkpoint(&self) -> DbResult<()> {
        self.conn.call(Request::Checkpoint).map(|_| ())
    }

    /// Build a fresh default-valued object of `class_name` (not yet
    /// persistent; create it inside a transaction).
    pub fn new_object(&self, class_name: &str) -> DbResult<DbObject> {
        DbObject::new_named(&self.catalog, class_name)
    }

    /// Disconnect.
    pub fn close(&self) {
        self.conn.close();
    }
}

impl std::fmt::Debug for DbClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbClient").field("id", &self.id).finish()
    }
}
