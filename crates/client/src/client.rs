//! The top-level client handle.

use crate::cache::ClientCache;
use crate::conn::{ConnStats, Connection, PushSink};
use crate::diskcache::DiskCache;
use crate::dlc::{Dlc, DlmBackend};
use crate::supervisor::{ChannelFactory, Supervisor};
use crate::txn::ClientTxn;
use displaydb_common::backoff::ReconnectPolicy;
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{ClientId, DbError, DbResult, Oid, TxnId};
use displaydb_dlm::{DlmAgentConnection, DlmEvent, UpdateInfo};
use displaydb_schema::{Catalog, DbObject};
use displaydb_server::proto::{Request, Response, ResumeCursors, ResumeRequest, ShardCursor};
use displaydb_wire::{Channel, Decode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client configuration.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Name reported to the server (diagnostics).
    pub name: String,
    /// Byte budget for the client database cache.
    pub cache_bytes: usize,
    /// RPC timeout.
    pub call_timeout: Duration,
    /// Optional local-disk cache (paper footnote 2): directory and byte
    /// budget for an intermediate hierarchy level between the memory
    /// cache and the server.
    pub disk_cache: Option<(std::path::PathBuf, u64)>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            name: "displaydb-client".into(),
            cache_bytes: 16 * 1024 * 1024,
            call_timeout: Duration::from_secs(30),
            disk_cache: None,
        }
    }
}

impl ClientConfig {
    /// Config with a given name and defaults otherwise.
    pub fn named(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }
}

/// The client's server session identity, as granted at the last
/// handshake. The `token`/`incarnation` pair is what a reconnect
/// presents to resume the session; `epoch` counts how many times this
/// session has been resumed.
#[derive(Clone, Debug)]
pub struct SessionInfo {
    /// Server-assigned client id (changes if a resume is refused).
    pub id: ClientId,
    /// One-shot resume token for the *next* reconnect.
    pub token: u64,
    /// Server incarnation that issued the token; a restarted server
    /// refuses tokens from a previous incarnation.
    pub incarnation: u64,
    /// How many times this session has been resumed (0 = fresh).
    pub epoch: u64,
    /// Shard 0's durable update-log incarnation (0 = none); the full
    /// per-shard vector is `log_incarnations`. Kept for diagnostics and
    /// single-shard deployments, where it *is* the log incarnation.
    pub log_incarnation: u64,
    /// Per-shard durable update-log incarnations (index = shard, 0 =
    /// that shard has no durable log). They travel with the per-shard
    /// notification cursors on resume: a shard's cursor is only
    /// admitted across a server restart when the log incarnation it was
    /// acked under survived (DESIGN.md §§ 14, 16).
    pub log_incarnations: Vec<u64>,
}

/// The mutable slot holding the current [`Connection`] generation.
/// Everything that issues RPCs goes through the cell, so a supervisor
/// reconnect atomically redirects all traffic to the new channel.
pub(crate) struct ConnCell {
    inner: OrderedMutex<Arc<Connection>>,
}

impl ConnCell {
    fn new(conn: Arc<Connection>) -> Self {
        Self {
            inner: OrderedMutex::new(ranks::CLIENT_CONN_CELL, conn),
        }
    }

    pub(crate) fn get(&self) -> Arc<Connection> {
        Arc::clone(&self.inner.lock())
    }

    pub(crate) fn set(&self, conn: Arc<Connection>) {
        *self.inner.lock() = conn;
    }
}

/// Integrated deployment: display-lock traffic rides the main server
/// connection; the server's own commit path raises notifications, so
/// reporting methods are no-ops.
struct IntegratedBackend {
    conn: Arc<ConnCell>,
}

impl DlmBackend for IntegratedBackend {
    fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.conn
            .get()
            .call(Request::DisplayLock { oids })
            .map(|_| ())
    }
    fn lock_projected(&self, oids: Vec<Oid>, attrs: Vec<u16>, version: u32) -> DbResult<()> {
        self.conn
            .get()
            .call(Request::DisplayLockProjected {
                oids,
                attrs,
                version,
            })
            .map(|_| ())
    }
    fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.conn
            .get()
            .call(Request::DisplayRelease { oids })
            .map(|_| ())
    }
    fn report_commit(&self, _updates: Vec<UpdateInfo>) -> DbResult<()> {
        Ok(())
    }
    fn report_intent(&self, _oids: Vec<Oid>, _txn: TxnId) -> DbResult<()> {
        Ok(())
    }
    fn report_resolution(&self, _oids: Vec<Oid>, _txn: TxnId, _committed: bool) -> DbResult<()> {
        Ok(())
    }
    fn replay_from(&self, cursor: u64, _incarnation: u64) -> DbResult<()> {
        // The server validated the cursor's log incarnation during the
        // resume handshake; a live connection cannot change it.
        self.conn
            .get()
            .call(Request::ReplayFrom { cursor })
            .map(|_| ())
    }
    fn replay_from_shard(&self, shard: u32, cursor: u64, _incarnation: u64) -> DbResult<()> {
        self.conn
            .get()
            .call(Request::ReplayFromShards {
                cursors: vec![(shard, cursor)],
            })
            .map(|_| ())
    }
    fn replay_from_shards(&self, cursors: &[(u32, u64)]) -> DbResult<()> {
        self.conn
            .get()
            .call(Request::ReplayFromShards {
                cursors: cursors.to_vec(),
            })
            .map(|_| ())
    }
}

/// Agent deployment: the mutable slot holding the current agent
/// connection generation, so a supervisor can swap in a reconnected
/// agent channel behind the DLC's immutable backend handle.
pub(crate) struct AgentCell {
    inner: OrderedMutex<Option<Arc<DlmAgentConnection>>>,
}

impl Default for AgentCell {
    fn default() -> Self {
        Self {
            inner: OrderedMutex::new(ranks::CLIENT_AGENT_CELL, None),
        }
    }
}

impl AgentCell {
    pub(crate) fn get(&self) -> DbResult<Arc<DlmAgentConnection>> {
        self.inner.lock().clone().ok_or(DbError::Disconnected)
    }

    pub(crate) fn set(&self, conn: Arc<DlmAgentConnection>) {
        *self.inner.lock() = Some(conn);
    }
}

impl DlmBackend for AgentCell {
    fn lock(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.get()?.lock(oids)
    }
    fn lock_projected(&self, oids: Vec<Oid>, attrs: Vec<u16>, version: u32) -> DbResult<()> {
        self.get()?.lock_projected(oids, attrs, version)
    }
    fn release(&self, oids: Vec<Oid>) -> DbResult<()> {
        self.get()?.release(oids)
    }
    fn report_commit(&self, updates: Vec<UpdateInfo>) -> DbResult<()> {
        self.get()?.report_commit(updates)
    }
    fn report_intent(&self, oids: Vec<Oid>, txn: TxnId) -> DbResult<()> {
        self.get()?.report_intent(oids, txn)
    }
    fn report_resolution(&self, oids: Vec<Oid>, txn: TxnId, committed: bool) -> DbResult<()> {
        self.get()?.report_resolution(oids, txn, committed)
    }
    fn replay_from(&self, cursor: u64, incarnation: u64) -> DbResult<()> {
        self.get()?.replay_from(cursor, incarnation)
    }
}

struct Sink {
    cache: Arc<ClientCache>,
    disk: Option<Arc<DiskCache>>,
    dlc: Arc<Dlc>,
}

impl PushSink for Sink {
    fn on_invalidate(&self, oids: &[Oid]) {
        self.cache.invalidate(oids);
        if let Some(disk) = &self.disk {
            disk.invalidate(oids);
        }
    }
    fn on_dlm(&self, event: DlmEvent) {
        self.dlc.dispatch(event);
    }
}

/// Wire the DLC's attribute-delta hook to the client caches: a delta
/// patches the in-memory copy in place, and the (now stale) disk copy is
/// dropped rather than rewritten. An object that is simply not cached
/// (evicted, or invalidated by a consistency callback that raced the
/// delta) needs no patch — the next read fetches fresh state — so only a
/// failed patch of a *present* copy reports `false`, making the DLC fall
/// back to a forced re-read.
fn set_delta_hook(dlc: &Arc<Dlc>, cache: &Arc<ClientCache>, disk: Option<&Arc<DiskCache>>) {
    let cache = Arc::clone(cache);
    let disk = disk.cloned();
    dlc.set_delta_hook(move |oid, changed| {
        let applied = cache.apply_delta(oid, changed);
        if let Some(disk) = &disk {
            disk.invalidate(&[oid]);
        }
        applied || !cache.contains(oid)
    });
}

fn open_disk_cache(config: &ClientConfig) -> DbResult<Option<Arc<DiskCache>>> {
    match &config.disk_cache {
        Some((dir, bytes)) => Ok(Some(Arc::new(DiskCache::open(dir, *bytes)?))),
        None => Ok(None),
    }
}

struct HandshakeOutcome {
    catalog: Catalog,
    session: SessionInfo,
    resumed: bool,
    stale: Vec<Oid>,
    replay_ok: bool,
}

/// A connected database client: RPCs, database cache, transactions, and
/// the display lock client.
pub struct DbClient {
    conn: Arc<ConnCell>,
    /// One stats object shared by every connection generation, so the
    /// experiment report sees the whole history across reconnects.
    conn_stats: ConnStats,
    cache: Arc<ClientCache>,
    disk: Option<Arc<DiskCache>>,
    catalog: Arc<Catalog>,
    session: OrderedMutex<SessionInfo>,
    dlc: Arc<Dlc>,
    /// Agent deployment only: the swappable agent connection slot the
    /// DLC's backend points at.
    agent: Option<Arc<AgentCell>>,
    /// The push sink wired into each connection generation.
    push_sink: OrderedMutex<Option<Arc<dyn PushSink>>>,
    config: ClientConfig,
    /// Set by [`DbClient::close`]; tells the supervisor a subsequent
    /// connection death is deliberate, not an outage.
    closed: AtomicBool,
    /// Supervisor monitor threads attached to this client (if any).
    supervisors: OrderedMutex<Vec<Supervisor>>,
    /// Agent deployment: the client reports its own commits/intents to the
    /// DLM (paper § 4.1). Integrated deployment: the server does.
    reports_to_dlm: bool,
}

impl DbClient {
    /// Connect in the **integrated** deployment (display locks handled by
    /// the server's embedded DLM).
    pub fn connect(channel: Box<dyn Channel>, config: ClientConfig) -> DbResult<Arc<Self>> {
        let conn = Connection::new(channel, config.call_timeout);
        let outcome = Self::handshake(&conn, &config.name, None)?;
        let cache = Arc::new(ClientCache::new(config.cache_bytes));
        let disk = open_disk_cache(&config)?;
        let cell = Arc::new(ConnCell::new(Arc::clone(&conn)));
        let dlc = Arc::new(Dlc::new(Arc::new(IntegratedBackend {
            conn: Arc::clone(&cell),
        })));
        set_delta_hook(&dlc, &cache, disk.as_ref());
        let sink: Arc<dyn PushSink> = Arc::new(Sink {
            cache: Arc::clone(&cache),
            disk: disk.clone(),
            dlc: Arc::clone(&dlc),
        });
        conn.set_push_sink(Arc::clone(&sink));
        Ok(Arc::new(Self {
            conn: cell,
            conn_stats: conn.stats().clone(),
            cache,
            disk,
            catalog: Arc::new(outcome.catalog),
            session: OrderedMutex::new(ranks::CLIENT_SESSION, outcome.session),
            dlc,
            agent: None,
            push_sink: OrderedMutex::new(ranks::CLIENT_PUSH_SINK, Some(sink)),
            config,
            closed: AtomicBool::new(false),
            supervisors: OrderedMutex::new(ranks::CLIENT_SUPERVISORS, Vec::new()),
            reports_to_dlm: false,
        }))
    }

    /// Like [`DbClient::connect`], but *supervised*: a monitor thread
    /// watches the connection, and when the channel dies it broadcasts
    /// [`DlcEvent::Degraded`](crate::dlc::DlcEvent) to the displays and
    /// reconnects through `factory` under `policy`, resuming the server
    /// session and re-registering display locks on success.
    pub fn connect_supervised(
        factory: ChannelFactory,
        policy: ReconnectPolicy,
        config: ClientConfig,
    ) -> DbResult<Arc<Self>> {
        let client = Self::connect(factory()?, config)?;
        let supervisor = Supervisor::server(&client, factory, policy);
        client.supervisors.lock().push(supervisor);
        Ok(client)
    }

    /// Connect in the **agent** deployment: a separate channel to the DLM
    /// agent carries display-lock traffic, and this client reports its own
    /// commits and intents (exactly the paper's architecture, figure 3).
    pub fn connect_with_agent(
        server_channel: Box<dyn Channel>,
        dlm_channel: Box<dyn Channel>,
        config: ClientConfig,
    ) -> DbResult<Arc<Self>> {
        let conn = Connection::new(server_channel, config.call_timeout);
        let outcome = Self::handshake(&conn, &config.name, None)?;
        let cache = Arc::new(ClientCache::new(config.cache_bytes));
        let disk = open_disk_cache(&config)?;

        // The DLC's backend is the swappable agent slot; the slot is
        // filled once the agent connection is up. Events are dispatched
        // through a weak handle so the agent connection does not keep the
        // DLC (and thus the client) alive.
        let agent_cell = Arc::new(AgentCell::default());
        let dlc = Arc::new(Dlc::new(Arc::clone(&agent_cell) as Arc<dyn DlmBackend>));
        set_delta_hook(&dlc, &cache, disk.as_ref());
        let weak_dlc = Arc::downgrade(&dlc);
        let agent = DlmAgentConnection::connect(dlm_channel, outcome.session.id, move |event| {
            if let Some(dlc) = weak_dlc.upgrade() {
                dlc.dispatch(event);
            }
        })?;
        agent_cell.set(Arc::new(agent));

        let sink: Arc<dyn PushSink> = Arc::new(Sink {
            cache: Arc::clone(&cache),
            disk: disk.clone(),
            dlc: Arc::clone(&dlc),
        });
        conn.set_push_sink(Arc::clone(&sink));
        Ok(Arc::new(Self {
            conn: Arc::new(ConnCell::new(Arc::clone(&conn))),
            conn_stats: conn.stats().clone(),
            cache,
            disk,
            catalog: Arc::new(outcome.catalog),
            session: OrderedMutex::new(ranks::CLIENT_SESSION, outcome.session),
            dlc,
            agent: Some(agent_cell),
            push_sink: OrderedMutex::new(ranks::CLIENT_PUSH_SINK, Some(sink)),
            config,
            closed: AtomicBool::new(false),
            supervisors: OrderedMutex::new(ranks::CLIENT_SUPERVISORS, Vec::new()),
            reports_to_dlm: true,
        }))
    }

    /// Like [`DbClient::connect_with_agent`], but with *both* channels
    /// supervised: the server connection resumes its session and the
    /// agent connection re-registers display locks after each reconnect.
    pub fn connect_with_agent_supervised(
        server_factory: ChannelFactory,
        dlm_factory: ChannelFactory,
        policy: ReconnectPolicy,
        config: ClientConfig,
    ) -> DbResult<Arc<Self>> {
        let client = Self::connect_with_agent(server_factory()?, dlm_factory()?, config)?;
        let mut sups = client.supervisors.lock();
        sups.push(Supervisor::server(&client, server_factory, policy.clone()));
        sups.push(Supervisor::agent(&client, dlm_factory, policy));
        drop(sups);
        Ok(client)
    }

    fn handshake(
        conn: &Arc<Connection>,
        name: &str,
        resume: Option<ResumeRequest>,
    ) -> DbResult<HandshakeOutcome> {
        match conn.call(Request::Hello {
            name: name.to_string(),
            resume,
        })? {
            Response::HelloAck {
                client,
                catalog,
                session,
                incarnation,
                epoch,
                resumed,
                stale,
                replay_ok,
                log_incarnation,
                shard_log_incarnations,
            } => Ok(HandshakeOutcome {
                catalog: Catalog::decode_from_bytes(&catalog)?,
                session: SessionInfo {
                    id: client,
                    token: session,
                    incarnation,
                    epoch,
                    log_incarnation,
                    log_incarnations: if shard_log_incarnations.is_empty() {
                        vec![log_incarnation]
                    } else {
                        shard_log_incarnations
                    },
                },
                resumed,
                stale,
                replay_ok,
            }),
            other => Err(DbError::Protocol(format!(
                "unexpected handshake response {other:?}"
            ))),
        }
    }

    /// One reconnect attempt over a fresh channel: handshake with the
    /// stored resume token, invalidate whatever the server reports stale,
    /// swap the live connection, and replay display-lock registrations.
    /// Returns whether the server resumed the previous session identity.
    pub(crate) fn try_resume(&self, channel: Box<dyn Channel>) -> DbResult<bool> {
        let conn =
            Connection::with_stats(channel, self.config.call_timeout, self.conn_stats.clone());
        let (token, incarnation, log_incarnations) = {
            let s = self.session.lock();
            (s.token, s.incarnation, s.log_incarnations.clone())
        };
        // The cache does not track commit versions, so the manifest
        // claims version 0 for everything; the server conservatively
        // reports stale any copy it cannot prove current.
        let manifest: Vec<(Oid, u64)> = self.cache.oids().into_iter().map(|oid| (oid, 0)).collect();
        // The per-shard notification cursors travel with the resume
        // token (version-2 form) so the server can decide up front, per
        // shard, whether that shard's update log still covers everything
        // this client missed. Shards the client has no ack from yet ride
        // along with cursor 0, paired with the log incarnation learned
        // at the previous handshake.
        let acked = self.dlc.cursors();
        let nshards = log_incarnations.len().max(acked.len());
        let mut shard_cursors: Vec<ShardCursor> = (0..nshards)
            .map(|s| ShardCursor {
                shard: s as u32,
                cursor: 0,
                log_incarnation: log_incarnations.get(s).copied().unwrap_or(0),
            })
            .collect();
        for (shard, cursor) in &acked {
            shard_cursors[*shard as usize].cursor = *cursor;
        }
        let replay_cursors: Vec<(u32, u64)> = shard_cursors
            .iter()
            .map(|sc| (sc.shard, sc.cursor))
            .collect();
        let outcome = Self::handshake(
            &conn,
            &self.config.name,
            Some(ResumeRequest {
                token,
                incarnation,
                manifest,
                cursors: ResumeCursors::Shards(shard_cursors),
            }),
        )?;
        let recovery = &self.conn_stats.recovery;
        recovery.reconnects_ok.inc();
        if outcome.resumed {
            recovery.sessions_resumed.inc();
        }
        self.cache.invalidate(&outcome.stale);
        if let Some(disk) = &self.disk {
            disk.invalidate(&outcome.stale);
        }
        // Bind before the `if let`: a `push_sink.lock()` scrutinee would
        // keep the guard alive across set_push_sink (which takes the
        // connection's sink lock).
        let sink = self.push_sink.lock().clone();
        if let Some(sink) = sink {
            conn.set_push_sink(sink);
        }
        *self.session.lock() = outcome.session;
        // Swap first: the relock below rides the new connection (in the
        // integrated deployment the DLC backend is this same cell).
        self.conn.set(conn);
        // The server dropped this client's display locks at disconnect;
        // replay them, then catch the displays up. When the server's
        // update log still covers our cursor, a replay of the missed
        // suffix (filtered to our registered interests) is enough —
        // otherwise fall back to forced refreshes of the stale set.
        // Agent-deployment locks live on the agent channel and may be
        // down independently; its own supervisor replays them.
        let _ = self.dlc.relock_all();
        if outcome.replay_ok {
            recovery.replay_catchups.inc();
            if !outcome.resumed {
                // The in-memory session died with the old server
                // process, yet the durable update logs still cover our
                // cursors: catch-up instead of resync across a restart.
                recovery.cross_restart_replays.inc();
            }
            self.dlc.backend().replay_from_shards(&replay_cursors)?;
        } else {
            if outcome.resumed {
                recovery.replay_truncations.inc();
            }
            // The seqno space may be fresh (server restart); re-baseline
            // so the next CursorAck is adopted unconditionally.
            self.dlc.reset_cursor();
            recovery.resync_objects.add(outcome.stale.len() as u64);
            self.dlc.resync(&outcome.stale);
        }
        Ok(outcome.resumed)
    }

    /// One agent-reconnect attempt over a fresh DLM channel: swap the
    /// agent slot, replay display-lock registrations, and force refreshes
    /// of everything watched (the DLM keeps no versions, so every watched
    /// object is suspect after a notification gap).
    pub(crate) fn try_reconnect_agent(&self, channel: Box<dyn Channel>) -> DbResult<()> {
        let agent_cell = self
            .agent
            .as_ref()
            .ok_or_else(|| DbError::Protocol("client has no DLM agent connection".into()))?;
        let weak_dlc = Arc::downgrade(&self.dlc);
        let agent = DlmAgentConnection::connect(channel, self.id(), move |event| {
            if let Some(dlc) = weak_dlc.upgrade() {
                dlc.dispatch(event);
            }
        })?;
        self.conn_stats.recovery.reconnects_ok.inc();
        // The session incarnation the old connection's cursor was acked
        // under (0 = there was no old connection; live agents always
        // report a nonzero incarnation — durable or a per-start nonce).
        let prev_incarnation = agent_cell.get().map(|a| a.agent_incarnation()).unwrap_or(0);
        let agent = Arc::new(agent);
        let incarnation = agent.agent_incarnation();
        agent_cell.set(Arc::clone(&agent));
        self.dlc.relock_all()?;
        // Ask the agent to replay the notification suffix past our
        // cursor. If its log no longer covers the cursor (or logging is
        // off) it answers with ResyncRequired for the watched set, which
        // the dispatch path turns into forced refreshes — so the blanket
        // "resync everything watched" only happens when it truly must.
        // A changed incarnation means our cursor's seqno space is gone
        // (the agent restarted or lost its log): skip the doomed replay
        // round-trip and resync outright. An *absent* previous
        // incarnation is a mismatch, not a wildcard — with no proof the
        // seqno space survived, a replay could silently skip updates.
        let cursor = self.dlc.cursor();
        let incarnation_ok = prev_incarnation != 0 && prev_incarnation == incarnation;
        let replayed = incarnation_ok && agent.replay_from(cursor, incarnation).is_ok();
        if replayed {
            self.conn_stats.recovery.replay_catchups.inc();
            if incarnation != 0 {
                // Cursor validity crossed process lifetimes on the
                // strength of the durable log (DESIGN.md § 14).
                self.conn_stats.recovery.cross_restart_replays.inc();
            }
        } else {
            if !incarnation_ok {
                self.conn_stats.recovery.replay_truncations.inc();
            }
            let watched = self.dlc.watched_objects();
            self.conn_stats
                .recovery
                .resync_objects
                .add(watched.len() as u64);
            self.dlc.reset_cursor();
            self.dlc.resync(&watched);
        }
        Ok(())
    }

    /// The agent connection slot (agent deployment only).
    pub(crate) fn agent_cell(&self) -> Option<&Arc<AgentCell>> {
        self.agent.as_ref()
    }

    /// Whether [`DbClient::close`] was called.
    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// This client's server-assigned id.
    pub fn id(&self) -> ClientId {
        self.session.lock().id
    }

    /// The current session identity (resume token, incarnation, epoch).
    pub fn session(&self) -> SessionInfo {
        self.session.lock().clone()
    }

    /// The schema catalog (shipped by the server at handshake).
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The client database cache.
    pub fn cache(&self) -> &Arc<ClientCache> {
        &self.cache
    }

    /// The optional local-disk cache (paper footnote 2).
    pub fn disk_cache(&self) -> Option<&Arc<DiskCache>> {
        self.disk.as_ref()
    }

    /// Write-through of a freshly committed object state into the local
    /// caches (called by [`ClientTxn::commit`]).
    pub(crate) fn cache_committed(&self, obj: &DbObject) {
        self.cache.insert(obj.clone());
        if let Some(disk) = &self.disk {
            disk.put(obj);
        }
    }

    /// Invalidation of a deleted object across the local caches.
    pub(crate) fn uncache_deleted(&self, oid: Oid) {
        self.cache.invalidate(&[oid]);
        if let Some(disk) = &self.disk {
            disk.remove(oid);
        }
    }

    /// The display lock client.
    pub fn dlc(&self) -> &Arc<Dlc> {
        &self.dlc
    }

    /// The current connection generation (stats, advanced calls). A
    /// supervisor reconnect replaces it, so do not hold the returned
    /// handle across failures — re-fetch instead.
    pub fn conn(&self) -> Arc<Connection> {
        self.conn.get()
    }

    /// Cumulative connection statistics across all generations.
    pub fn conn_stats(&self) -> &ConnStats {
        &self.conn_stats
    }

    /// Whether this client reports commits to a DLM agent itself.
    pub fn reports_to_dlm(&self) -> bool {
        self.reports_to_dlm
    }

    /// Read an object, serving from the database cache when possible
    /// (inter-transaction caching: a hit costs no server message), then
    /// the local-disk cache (if configured), then the server.
    pub fn read(&self, oid: Oid) -> DbResult<DbObject> {
        if let Some(obj) = self.cache.get(oid) {
            return Ok(obj);
        }
        if let Some(disk) = &self.disk {
            if let Some(obj) = disk.get(oid) {
                self.cache.insert(obj.clone());
                return Ok(obj);
            }
        }
        self.read_fresh(oid)
    }

    /// Read an object from the server, refreshing the cache.
    pub fn read_fresh(&self, oid: Oid) -> DbResult<DbObject> {
        self.server_read(None, oid)
    }

    /// Read within a transaction: cache-first, but a server miss carries
    /// the transaction id so the read is re-entrant with the
    /// transaction's own exclusive locks (and sees its own workspace).
    pub fn read_in_txn(&self, txn: TxnId, oid: Oid) -> DbResult<DbObject> {
        if let Some(obj) = self.cache.get(oid) {
            return Ok(obj);
        }
        self.server_read(Some(txn), oid)
    }

    fn server_read(&self, txn: Option<TxnId>, oid: Oid) -> DbResult<DbObject> {
        match self.conn().call(Request::Read { txn, oid })? {
            Response::Object { bytes } => {
                let obj = DbObject::decode_from_bytes(&bytes)?;
                // Uncommitted own-transaction state must not enter the
                // shared caches; committed reads may.
                if txn.is_none() {
                    self.cache.insert(obj.clone());
                    if let Some(disk) = &self.disk {
                        disk.put(&obj);
                    }
                }
                Ok(obj)
            }
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Read many objects; cache hits are served locally, misses fetched in
    /// one round-trip. Missing objects yield `None`.
    pub fn read_many(&self, oids: &[Oid]) -> DbResult<Vec<Option<DbObject>>> {
        let mut out: Vec<Option<DbObject>> = vec![None; oids.len()];
        let mut missing: Vec<(usize, Oid)> = Vec::new();
        for (i, &oid) in oids.iter().enumerate() {
            match self.cache.get(oid) {
                Some(obj) => out[i] = Some(obj),
                None => {
                    if let Some(obj) = self.disk.as_ref().and_then(|d| d.get(oid)) {
                        self.cache.insert(obj.clone());
                        out[i] = Some(obj);
                    } else {
                        missing.push((i, oid));
                    }
                }
            }
        }
        if missing.is_empty() {
            return Ok(out);
        }
        let fetch: Vec<Oid> = missing.iter().map(|(_, oid)| *oid).collect();
        match self.conn().call(Request::ReadMany {
            txn: None,
            oids: fetch,
        })? {
            Response::Objects { objects } => {
                for ((i, _), bytes) in missing.into_iter().zip(objects) {
                    if let Some(bytes) = bytes {
                        let obj = DbObject::decode_from_bytes(&bytes)?;
                        self.cache.insert(obj.clone());
                        if let Some(disk) = &self.disk {
                            disk.put(&obj);
                        }
                        out[i] = Some(obj);
                    }
                }
                Ok(out)
            }
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// All objects of a class (by name).
    pub fn extent(&self, class_name: &str, include_subclasses: bool) -> DbResult<Vec<Oid>> {
        let class = self
            .catalog
            .id_of(class_name)
            .ok_or_else(|| DbError::ClassNotFound(class_name.to_string()))?;
        match self.conn().call(Request::Extent {
            class,
            include_subclasses,
        })? {
            Response::Oids { oids } => Ok(oids),
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Start a transaction.
    pub fn begin(self: &Arc<Self>) -> DbResult<ClientTxn> {
        match self.conn().call(Request::Begin)? {
            Response::TxnStarted { txn } => Ok(ClientTxn::new(Arc::clone(self), txn)),
            other => Err(DbError::Protocol(format!("unexpected {other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&self) -> DbResult<()> {
        self.conn().call(Request::Ping).map(|_| ())
    }

    /// Ask the server to checkpoint.
    pub fn checkpoint(&self) -> DbResult<()> {
        self.conn().call(Request::Checkpoint).map(|_| ())
    }

    /// Build a fresh default-valued object of `class_name` (not yet
    /// persistent; create it inside a transaction).
    pub fn new_object(&self, class_name: &str) -> DbResult<DbObject> {
        DbObject::new_named(&self.catalog, class_name)
    }

    /// Disconnect. A supervised client stops reconnecting: the close is
    /// deliberate, not an outage.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
        self.conn().close();
    }
}

impl std::fmt::Debug for DbClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbClient").field("id", &self.id()).finish()
    }
}
