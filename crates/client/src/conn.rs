//! The duplex client connection.
//!
//! One reader thread demultiplexes everything arriving from the server:
//! responses are matched to pending calls by sequence number; pushes
//! (cache callbacks, display notifications) are handed to the registered
//! [`PushSink`]. Callback pushes are acknowledged *from the reader thread*
//! after the sink has invalidated its cache, which is what makes the
//! server's synchronous callback protocol deadlock-free: this thread
//! never blocks on server work.

use displaydb_common::ids::IdGen;
use displaydb_common::metrics::Counter;
use displaydb_common::{DbError, DbResult, Oid};
use displaydb_dlm::DlmEvent;
use displaydb_server::proto::{Envelope, Request, Response, ServerPush};
use displaydb_wire::{Channel, Decode, Encode};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Receives asynchronous pushes from the server.
pub trait PushSink: Send + Sync {
    /// The server invalidated these cached objects (callback protocol).
    fn on_invalidate(&self, oids: &[Oid]);
    /// A display-lock notification arrived (integrated deployment).
    fn on_dlm(&self, event: DlmEvent);
}

/// Message counters for the experiment harness.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// Frames sent to the server.
    pub sent: Counter,
    /// Frames received from the server.
    pub received: Counter,
    /// Callback invalidations processed.
    pub callbacks: Counter,
    /// Display notifications received.
    pub dlm_events: Counter,
}

/// A live connection to the database server.
pub struct Connection {
    channel: Arc<dyn Channel>,
    seq: IdGen,
    pending: Arc<Mutex<HashMap<u64, crossbeam::channel::Sender<Response>>>>,
    sink: Arc<Mutex<Option<Arc<dyn PushSink>>>>,
    stats: ConnStats,
    call_timeout: Duration,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl Connection {
    /// Wrap `channel` and start the reader thread.
    pub fn new(channel: Box<dyn Channel>, call_timeout: Duration) -> Arc<Self> {
        let channel: Arc<dyn Channel> = Arc::from(channel);
        let conn = Arc::new(Self {
            channel: Arc::clone(&channel),
            seq: IdGen::starting_at(1),
            pending: Arc::new(Mutex::new(HashMap::new())),
            sink: Arc::new(Mutex::new(None)),
            stats: ConnStats::default(),
            call_timeout,
            reader: Mutex::new(None),
        });
        let pending = Arc::clone(&conn.pending);
        let sink = Arc::clone(&conn.sink);
        let stats = conn.stats.clone();
        let reader_channel = Arc::clone(&channel);
        let handle = std::thread::Builder::new()
            .name("db-client-reader".into())
            .spawn(move || loop {
                let frame = match reader_channel.recv() {
                    Ok(f) => f,
                    Err(_) => break,
                };
                stats.received.inc();
                match Envelope::decode_from_bytes(&frame) {
                    Ok(Envelope::Resp(seq, response)) => {
                        if let Some(tx) = pending.lock().remove(&seq) {
                            let _ = tx.send(response);
                        }
                    }
                    Ok(Envelope::Push(ServerPush::Callback { ack, oids })) => {
                        stats.callbacks.inc();
                        if let Some(sink) = sink.lock().clone() {
                            sink.on_invalidate(&oids);
                        }
                        stats.sent.inc();
                        let _ = reader_channel.send(Envelope::PushAck(ack).encode_to_bytes());
                    }
                    Ok(Envelope::Push(ServerPush::Dlm(event))) => {
                        stats.dlm_events.inc();
                        if let Some(sink) = sink.lock().clone() {
                            sink.on_dlm(event);
                        }
                    }
                    Ok(_) | Err(_) => break,
                }
            })
            .expect("spawn client reader");
        *conn.reader.lock() = Some(handle);
        conn
    }

    /// Register the push sink (cache + DLC wiring).
    pub fn set_push_sink(&self, sink: Arc<dyn PushSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// Connection statistics.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// Issue one RPC and wait for its response. Error responses are
    /// converted to [`DbError`].
    pub fn call(&self, request: Request) -> DbResult<Response> {
        let seq = self.seq.next();
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.pending.lock().insert(seq, tx);
        self.stats.sent.inc();
        if let Err(e) = self
            .channel
            .send(Envelope::Req(seq, request).encode_to_bytes())
        {
            self.pending.lock().remove(&seq);
            return Err(e);
        }
        match rx.recv_timeout(self.call_timeout) {
            Ok(response) => response.into_result(),
            Err(_) => {
                self.pending.lock().remove(&seq);
                Err(DbError::Timeout("rpc".into()))
            }
        }
    }

    /// Close the connection; the reader thread terminates.
    pub fn close(&self) {
        self.channel.close();
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.channel.close();
        if let Some(h) = self.reader.lock().take() {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection").finish()
    }
}
