//! The duplex client connection.
//!
//! One reader thread demultiplexes everything arriving from the server:
//! responses are matched to pending calls by sequence number; pushes
//! (cache callbacks, display notifications) are handed to the registered
//! [`PushSink`]. Callback pushes are acknowledged *from the reader thread*
//! after the sink has invalidated its cache, which is what makes the
//! server's synchronous callback protocol deadlock-free: this thread
//! never blocks on server work.
//!
//! ## Failure semantics
//!
//! When the channel dies the reader thread marks the connection dead,
//! *drains every pending call* with [`DbError::Disconnected`] — no RPC
//! ever waits out its full timeout against a connection known to be
//! down — and fires the registered death notifiers. The [`Supervisor`]
//! (crate::supervisor) listens on those notifiers to start reconnecting.

use displaydb_common::ids::IdGen;
use displaydb_common::metrics::{Counter, RecoveryStats};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{DbError, DbResult, Oid};
use displaydb_dlm::DlmEvent;
use displaydb_server::proto::{Envelope, Request, Response, ServerPush};
use displaydb_wire::{Channel, Decode, Encode};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Receives asynchronous pushes from the server.
pub trait PushSink: Send + Sync {
    /// The server invalidated these cached objects (callback protocol).
    fn on_invalidate(&self, oids: &[Oid]);
    /// A display-lock notification arrived (integrated deployment).
    fn on_dlm(&self, event: DlmEvent);
}

/// Message counters for the experiment harness.
#[derive(Clone, Debug, Default)]
pub struct ConnStats {
    /// Frames sent to the server.
    pub sent: Counter,
    /// Frames received from the server.
    pub received: Counter,
    /// Callback invalidations processed.
    pub callbacks: Counter,
    /// Display notifications received.
    pub dlm_events: Counter,
    /// Calls retried after the server shed them with
    /// [`DbError::Overloaded`] (admission control).
    pub overload_retries: Counter,
    /// Reconnection and session-recovery counters.
    pub recovery: RecoveryStats,
}

impl ConnStats {
    /// Counter values for reports and the unified stats registry (the
    /// nested [`RecoveryStats`] registers as its own section).
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sent", self.sent.get()),
            ("received", self.received.get()),
            ("callbacks", self.callbacks.get()),
            ("dlm_events", self.dlm_events.get()),
            ("overload_retries", self.overload_retries.get()),
        ]
    }
}

impl displaydb_common::stats::StatsSource for ConnStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

/// How many times one [`Connection::call`] retries a request the server
/// shed with [`DbError::Overloaded`] before giving the error to the
/// caller. A shed request was never admitted, so every retry is safe.
const OVERLOAD_RETRY_LIMIT: u32 = 5;

/// First retry delay after an [`DbError::Overloaded`] shed; doubles per
/// attempt up to [`OVERLOAD_BACKOFF_CAP`]. Worst-case added latency per
/// call is the geometric sum (~60 ms), well under any call timeout.
const OVERLOAD_BACKOFF_START: Duration = Duration::from_millis(2);

/// Ceiling for the per-attempt overload backoff delay.
const OVERLOAD_BACKOFF_CAP: Duration = Duration::from_millis(50);

/// A live connection to the database server.
pub struct Connection {
    channel: Arc<dyn Channel>,
    seq: IdGen,
    pending: Arc<OrderedMutex<HashMap<u64, crossbeam::channel::Sender<Response>>>>,
    sink: Arc<OrderedMutex<Option<Arc<dyn PushSink>>>>,
    stats: ConnStats,
    call_timeout: Duration,
    reader: OrderedMutex<Option<JoinHandle<()>>>,
    dead: Arc<AtomicBool>,
    death_watchers: Arc<OrderedMutex<Vec<crossbeam::channel::Sender<()>>>>,
}

impl Connection {
    /// Wrap `channel` and start the reader thread.
    pub fn new(channel: Box<dyn Channel>, call_timeout: Duration) -> Arc<Self> {
        Self::with_stats(channel, call_timeout, ConnStats::default())
    }

    /// Like [`Connection::new`], but accumulating into existing counters —
    /// a supervisor reconnect keeps one stats object across connection
    /// generations so the experiment report sees the whole history.
    pub fn with_stats(
        channel: Box<dyn Channel>,
        call_timeout: Duration,
        stats: ConnStats,
    ) -> Arc<Self> {
        let channel: Arc<dyn Channel> = Arc::from(channel);
        let conn = Arc::new(Self {
            channel: Arc::clone(&channel),
            seq: IdGen::starting_at(1),
            pending: Arc::new(OrderedMutex::new(ranks::CONN_PENDING, HashMap::new())),
            sink: Arc::new(OrderedMutex::new(ranks::CONN_SINK, None)),
            stats,
            call_timeout,
            reader: OrderedMutex::new(ranks::CONN_READER, None),
            dead: Arc::new(AtomicBool::new(false)),
            death_watchers: Arc::new(OrderedMutex::new(ranks::CONN_DEATH_WATCHERS, Vec::new())),
        });
        let pending = Arc::clone(&conn.pending);
        let sink = Arc::clone(&conn.sink);
        let stats = conn.stats.clone();
        let dead = Arc::clone(&conn.dead);
        let watchers = Arc::clone(&conn.death_watchers);
        let reader_channel = Arc::clone(&channel);
        let handle = std::thread::Builder::new()
            .name("db-client-reader".into())
            .spawn(move || {
                while let Ok(frame) = reader_channel.recv() {
                    stats.received.inc();
                    match Envelope::decode_from_bytes(&frame) {
                        Ok(Envelope::Resp(seq, response)) => {
                            // Bind before the `if let`: a `pending.lock()`
                            // scrutinee would keep the guard alive across
                            // the channel send.
                            let waiter = pending.lock_or_recover().remove(&seq);
                            if let Some(tx) = waiter {
                                let _ = tx.send(response);
                            }
                        }
                        Ok(Envelope::Push(ServerPush::Callback { ack, oids })) => {
                            stats.callbacks.inc();
                            // Clone the sink out so the callback (which may
                            // take cache locks) runs without the sink guard.
                            let cur = sink.lock_or_recover().clone();
                            if let Some(sink) = cur {
                                sink.on_invalidate(&oids);
                            }
                            stats.sent.inc();
                            let _ = reader_channel.send(Envelope::PushAck(ack).encode_to_bytes());
                        }
                        Ok(Envelope::Push(ServerPush::Dlm(event))) => {
                            stats.dlm_events.inc();
                            event.record_stage(displaydb_common::trace::Stage::WireRecv);
                            let cur = sink.lock_or_recover().clone();
                            if let Some(sink) = cur {
                                sink.on_dlm(event);
                            }
                        }
                        Ok(_) | Err(_) => break,
                    }
                }
                // The channel is gone. Fail every in-flight call now —
                // waiting out call_timeout against a dead connection
                // would just stall the application — then tell the
                // supervisor (if any) to start reconnecting.
                dead.store(true, Ordering::Release);
                let drained: Vec<_> = pending.lock_or_recover().drain().collect();
                for (_, tx) in drained {
                    let _ = tx.send(Response::Error {
                        kind: "disconnected".into(),
                        message: "connection lost".into(),
                    });
                }
                // Take the watcher list, then notify outside the lock.
                let watchers = std::mem::take(&mut *watchers.lock_or_recover());
                for tx in watchers {
                    let _ = tx.send(());
                }
            })
            .expect("spawn client reader");
        *conn.reader.lock() = Some(handle);
        conn
    }

    /// Register the push sink (cache + DLC wiring).
    pub fn set_push_sink(&self, sink: Arc<dyn PushSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// Connection statistics.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// Whether the channel has died (reader thread exited).
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Register a notifier fired (once) when the connection dies. If the
    /// connection is already dead the notification fires immediately, so
    /// registration cannot race with the reader's exit.
    pub fn on_death(&self, tx: crossbeam::channel::Sender<()>) {
        if self.is_dead() {
            let _ = tx.send(());
            return;
        }
        self.death_watchers.lock_or_recover().push(tx);
        // Re-check: the reader may have drained the watcher list between
        // the is_dead() check and the push.
        if self.is_dead() {
            let watchers = std::mem::take(&mut *self.death_watchers.lock_or_recover());
            for tx in watchers {
                let _ = tx.send(());
            }
        }
    }

    /// Issue one RPC and wait for its response. Error responses are
    /// converted to [`DbError`]. Fails fast with
    /// [`DbError::Disconnected`] when the connection is (or becomes)
    /// dead, rather than waiting out the call timeout.
    ///
    /// A server-side admission-control shed ([`DbError::Overloaded`]) is
    /// retried here with exponential backoff — the request was never
    /// admitted, so the retry cannot duplicate effects — and surfaces to
    /// the caller only after [`OVERLOAD_RETRY_LIMIT`] attempts, i.e.
    /// when the server stays saturated across the whole backoff window.
    pub fn call(&self, request: Request) -> DbResult<Response> {
        let mut backoff = OVERLOAD_BACKOFF_START;
        let mut attempts = 0u32;
        loop {
            match self.call_once(request.clone()) {
                Err(DbError::Overloaded) if attempts < OVERLOAD_RETRY_LIMIT => {
                    attempts += 1;
                    self.stats.overload_retries.inc();
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(OVERLOAD_BACKOFF_CAP);
                }
                other => return other,
            }
        }
    }

    /// One RPC attempt, no overload retry.
    fn call_once(&self, request: Request) -> DbResult<Response> {
        if self.is_dead() {
            return Err(DbError::Disconnected);
        }
        let seq = self.seq.next();
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.pending.lock().insert(seq, tx);
        self.stats.sent.inc();
        if let Err(e) = self
            .channel
            .send(Envelope::Req(seq, request).encode_to_bytes())
        {
            self.pending.lock().remove(&seq);
            // A send on a dead channel means disconnected, whatever the
            // transport reported.
            return match e {
                DbError::Disconnected => Err(DbError::Disconnected),
                other => Err(other),
            };
        }
        match rx.recv_timeout(self.call_timeout) {
            Ok(response) => response.into_result(),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                // Sender dropped without a response: reader died mid-call.
                Err(DbError::Disconnected)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                self.pending.lock().remove(&seq);
                Err(DbError::Timeout("rpc".into()))
            }
        }
    }

    /// Close the connection; the reader thread terminates.
    pub fn close(&self) {
        self.channel.close();
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.channel.close();
        // Bind before the `if let`: the scrutinee would keep the reader
        // guard alive across the join.
        let handle = self.reader.lock().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("dead", &self.is_dead())
            .finish()
    }
}
