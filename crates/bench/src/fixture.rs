//! Shared experiment scaffolding: servers, clients, topologies, maps.

use displaydb_client::{ClientConfig, DbClient};
use displaydb_common::DbResult;
use displaydb_display::DisplayCache;
use displaydb_dlm::DlmConfig;
use displaydb_nms::{nms_catalog, NetworkMap, Topology, TopologyConfig};
use displaydb_schema::Catalog;
use displaydb_server::{Server, ServerConfig};
use displaydb_viz::Rect;
use displaydb_wire::{LocalHub, SimNetConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

static FIXTURE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory for one experiment run.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("displaydb-bench").join(format!(
        "{tag}-{}-{}",
        std::process::id(),
        FIXTURE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A server plus its hub and catalog, cleaned up on drop.
pub struct Bed {
    /// The running server.
    pub server: Server,
    /// Connection hub (possibly latency-simulated).
    pub hub: LocalHub,
    /// Shared catalog.
    pub catalog: Arc<Catalog>,
    dir: PathBuf,
}

impl Bed {
    /// Start a server over the NMS schema with `tune` applied to its
    /// config. `latency` simulates a network on every connection.
    pub fn new(
        tag: &str,
        latency: Option<Duration>,
        tune: impl FnOnce(&mut ServerConfig),
    ) -> DbResult<Self> {
        let catalog = Arc::new(nms_catalog());
        let dir = scratch_dir(tag);
        let hub = match latency {
            Some(l) => LocalHub::with_latency(SimNetConfig::with_latency(l)),
            None => LocalHub::new(),
        };
        let mut config = ServerConfig::new(&dir);
        tune(&mut config);
        let server = Server::spawn_local(Arc::clone(&catalog), config, &hub)?;
        Ok(Self {
            server,
            hub,
            catalog,
            dir,
        })
    }

    /// Start with default tuning and no latency.
    pub fn plain(tag: &str) -> DbResult<Self> {
        Self::new(tag, None, |_| {})
    }

    /// Start with a DLM protocol configuration.
    pub fn with_dlm(tag: &str, dlm: DlmConfig) -> DbResult<Self> {
        Self::new(tag, None, |c| c.dlm = dlm)
    }

    /// Connect a named client.
    pub fn client(&self, name: &str) -> DbResult<Arc<DbClient>> {
        DbClient::connect(Box::new(self.hub.connect()?), ClientConfig::named(name))
    }

    /// Connect a client with a specific database-cache budget.
    pub fn client_with_cache(&self, name: &str, cache_bytes: usize) -> DbResult<Arc<DbClient>> {
        DbClient::connect(
            Box::new(self.hub.connect()?),
            ClientConfig {
                name: name.into(),
                cache_bytes,
                call_timeout: Duration::from_secs(30),
                disk_cache: None,
            },
        )
    }

    /// Generate a topology through a transient client.
    pub fn topology(&self, nodes: usize, links: usize) -> DbResult<Topology> {
        let client = self.client("topogen")?;
        Topology::generate(
            &client,
            &TopologyConfig {
                nodes,
                links,
                paths: 0,
                path_len: 0,
                seed: 1996,
            },
        )
    }

    /// Build a network map display for `client` over `topo`.
    pub fn map(
        &self,
        client: &Arc<DbClient>,
        topo: &Topology,
    ) -> DbResult<(Arc<DisplayCache>, NetworkMap)> {
        let cache = Arc::new(DisplayCache::new());
        let map = NetworkMap::build(client, &cache, topo, Rect::new(0.0, 0.0, 800.0, 600.0))?;
        Ok((cache, map))
    }
}

impl Drop for Bed {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}
