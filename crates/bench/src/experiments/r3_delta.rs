//! R3 — projection-aware delta notifications (DESIGN.md § 10).
//!
//! The paper's § 2.2 size argument — a GUI consumes two attributes of a
//! large persistent object — is applied to the *notification* path: a
//! display class that declares its source-attribute reads registers a
//! projected display lock, the server diffs each commit against the
//! registered projections, suppresses notifications that touch nothing
//! projected, and ships attribute-level deltas (coalesced and batched on
//! the wire) for the rest.
//!
//! The workload is the unfavourable-for-baseline but realistic NMS mix:
//! links carry 11 attributes, displays project only `Utilization`, and
//! 90% of commits touch operational attributes the GUI never shows
//! (`ErrorRate` here). Both scenarios run the identical write storm:
//!
//! * **baseline** — whole-object watching (a display class with an
//!   undeclared compute step falls back to full-interest locks): every
//!   commit notifies every watcher.
//! * **delta** — projection-aware watching via `width_coded_link`: 90%
//!   of commits are suppressed outright, the rest arrive as deltas that
//!   patch the client cache in place.
//!
//! Claims: ≥3× fewer notification bytes on the wire, fewer events, and
//! unchanged convergence — after the storm both viewers hold the exact
//! final utilization of every link.

use crate::fixture::scratch_dir;
use crate::report::{self, Metrics, Table};
use crate::Scale;
use displaydb_client::{ClientConfig, DbClient};
use displaydb_common::metrics::LatencyRecorder;
use displaydb_common::Oid;
use displaydb_display::schema::{width_coded_link, DisplayClassBuilder};
use displaydb_display::{Display, DisplayCache, DoId};
use displaydb_nms::nms_catalog;
use displaydb_schema::Value;
use displaydb_server::{Server, ServerConfig};
use displaydb_wire::LocalHub;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Every n-th commit writes the projected attribute (`Utilization`); the
/// rest touch `ErrorRate`, which no display shows. 10% projected — the
/// monitoring-console mix the paper's § 2.2 premise describes.
const PROJECTED_EVERY: usize = 10;

/// Run R3.
pub fn run(scale: Scale) -> Vec<Table> {
    run_with_metrics(scale).0
}

/// Run R3 and also return the machine-readable metrics for the CI gate.
pub fn run_with_metrics(scale: Scale) -> (Vec<Table>, Metrics) {
    let links = scale.pick(12usize, 40);
    let updates = scale.pick(240usize, 2000);

    let base = storm(links, updates, false);
    let delta = storm(links, updates, true);

    let mut t = Table::new(
        "R3 — projection-aware delta notifications vs whole-object watching",
        format!(
            "{updates} commits over {links} links (11 attributes each); displays project \
             only Utilization and 1 in {PROJECTED_EVERY} commits touches it. Projected \
             display locks let the server suppress the other 90% and ship the rest as \
             attribute deltas, batched on the wire."
        ),
        &[
            "scenario",
            "events sent",
            "deltas",
            "suppressed",
            "notify bytes",
            "bytes vs baseline",
            "notify p50 (ms)",
            "notify p95 (ms)",
            "display refreshes",
            "converged in (ms)",
        ],
    );
    for (name, o) in [
        ("whole-object (baseline)", &base),
        ("projected deltas", &delta),
    ] {
        t.row(vec![
            name.into(),
            o.events.to_string(),
            o.deltas.to_string(),
            o.suppressed.to_string(),
            o.bytes.to_string(),
            report::ratio(base.bytes as f64, o.bytes as f64),
            report::ms(o.p50),
            report::ms(o.p95),
            o.refreshes.to_string(),
            report::ms(o.convergence),
        ]);
    }

    let mut m = Metrics::new("r3");
    m.put("links", links as f64);
    m.put("updates", updates as f64);
    m.put("baseline_events", base.events as f64);
    m.put("baseline_notify_bytes", base.bytes as f64);
    m.put("baseline_notify_p95_ms", base.p95.as_secs_f64() * 1e3);
    m.put("delta_events", delta.events as f64);
    m.put("delta_deltas", delta.deltas as f64);
    m.put("delta_suppressed", delta.suppressed as f64);
    m.put("delta_notify_bytes", delta.bytes as f64);
    m.put("delta_notify_p95_ms", delta.p95.as_secs_f64() * 1e3);
    m.put(
        "bytes_reduction_x",
        if delta.bytes == 0 {
            f64::INFINITY
        } else {
            base.bytes as f64 / delta.bytes as f64
        },
    );
    (vec![t], m)
}

struct Outcome {
    events: u64,
    deltas: u64,
    suppressed: u64,
    bytes: u64,
    p50: Duration,
    p95: Duration,
    refreshes: u64,
    convergence: Duration,
}

fn await_value(display: &Display, id: DoId, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if display.object(id).expect("object").attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(Instant::now() < deadline, "viewer never reached {want}");
        display
            .wait_and_process(Duration::from_millis(50))
            .expect("process");
    }
}

/// One storm against one viewer. `projected == false` watches with a
/// class whose compute step leaves its reads undeclared, forcing
/// full-interest (whole-object) display locks — the pre-projection
/// behaviour. `projected == true` uses `width_coded_link`, which
/// declares `Utilization` and registers a projected lock.
fn storm(links: usize, updates: usize, projected: bool) -> Outcome {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(scratch_dir(if projected { "r3-delta" } else { "r3-base" }));
    // Measure the notification pipeline, not callback delivery (same
    // decoupling as E4/R2).
    config.sync_callbacks = false;
    // The update log's cursor acks ride the same outbox and their count
    // depends on drain timing; R4 measures them, R3 measures projection
    // suppression — keep the byte counts deterministic.
    config.dlm.log = displaydb_common::UpdateLogConfig::disabled();
    let server = Server::spawn_local(Arc::clone(&catalog), config, &hub).expect("server");

    let updater = DbClient::connect(
        Box::new(hub.connect().expect("connect")),
        ClientConfig::named("r3-updater"),
    )
    .expect("updater");
    let viewer = DbClient::connect(
        Box::new(hub.connect().expect("connect")),
        ClientConfig::named("r3-viewer"),
    )
    .expect("viewer");

    let mut oids: Vec<Oid> = Vec::with_capacity(links);
    let mut txn = updater.begin().expect("begin");
    for _ in 0..links {
        oids.push(
            txn.create(updater.new_object("Link").expect("new"))
                .expect("create")
                .oid,
        );
    }
    txn.commit().expect("commit");

    let class = if projected {
        width_coded_link("Utilization")
    } else {
        // Same derived attributes, but the undeclared compute forfeits
        // the projection: whole-object interest, an event per commit.
        DisplayClassBuilder::new("WholeLink")
            .project(&["Utilization"])
            .compute("Width", |ctx| {
                let u = ctx.max_float("Utilization")?;
                Ok(Value::Float(f64::from(displaydb_viz::utilization_width(
                    u, 1.0, 9.0,
                ))))
            })
            .build()
    };
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "r3");
    let ids: Vec<DoId> = oids
        .iter()
        .map(|&oid| display.add_object(&class, vec![oid]).expect("add_object"))
        .collect();

    // Steady state before measuring: one projected write per link,
    // drained.
    for &oid in &oids {
        let mut txn = updater.begin().expect("begin");
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.01))
            .expect("update");
        txn.commit().expect("commit");
    }
    await_value(&display, *ids.last().expect("ids"), 0.01);
    while display
        .wait_and_process(Duration::from_millis(100))
        .expect("drain")
        > 0
    {}

    let stats = server.core().dlm().stats();
    // Phase boundary: queue depths observed during the steady-state
    // warm-up must not be attributed to the measured storm.
    stats.overload.queue_depth.reset_high_water();
    viewer.dlc().stats().display_queue_depth.reset_high_water();
    let events0 = stats.notifications.get();
    let deltas0 = stats.delta_notifications.get();
    let suppressed0 = stats.suppressed_notifications.get();
    let bytes0 = stats.overload.notify_bytes.get();
    let refreshes0 = display.stats().refreshes.get();

    let recorder = LatencyRecorder::new();
    let mut last = vec![0.01f64; links];
    let util_writes = updates / PROJECTED_EVERY;
    let mut util_seen = 0usize;
    for i in 0..updates {
        let li = i % links;
        let mut txn = updater.begin().expect("begin");
        if i % PROJECTED_EVERY == 0 {
            // Projected write: globally increasing so every value is
            // distinct and the last one per link is final.
            util_seen += 1;
            let value = 0.02 + 0.9 * util_seen as f64 / util_writes.max(1) as f64;
            txn.update(oids[li], |o| o.set(&catalog, "Utilization", value))
                .expect("update");
            let submitted = Instant::now();
            txn.commit().expect("commit");
            last[li] = value;
            // Commit → refresh latency of the projected write, sampled
            // on every one (this also drains the viewer's queue, so the
            // baseline pays for chewing through its unsuppressed
            // backlog — that is the point of the comparison).
            await_value(&display, ids[li], value);
            recorder.record(submitted.elapsed());
        } else {
            // Unprojected write: operational noise the GUI never shows.
            let noise = i as f64 / updates as f64;
            txn.update(oids[li], |o| o.set(&catalog, "ErrorRate", noise))
                .expect("update");
            txn.commit().expect("commit");
        }
    }

    // Convergence: every link's display object reaches its exact final
    // utilization.
    let settle = Instant::now();
    for (idx, &id) in ids.iter().enumerate() {
        await_value(&display, id, last[idx]);
    }
    let convergence = settle.elapsed();

    let summary = recorder.summary().expect("latency samples");
    let outcome = Outcome {
        events: stats.notifications.get() - events0,
        deltas: stats.delta_notifications.get() - deltas0,
        suppressed: stats.suppressed_notifications.get() - suppressed0,
        bytes: stats.overload.notify_bytes.get() - bytes0,
        p50: summary.p50,
        p95: summary.p95,
        refreshes: display.stats().refreshes.get() - refreshes0,
        convergence,
    };
    drop(display);
    drop(server);
    outcome
}
