//! A4 (ablation) — early-notify reduces update conflicts (§ 3.3).
//!
//! The paper: with the early notify protocol, "displays could then
//! graphically mark (e.g. turn red) the object being updated, deterring
//! users from modifying objects already being updated. As a result
//! update conflicts and therefore transaction aborts can be
//! significantly decreased."
//!
//! Several users edit a small shared object set with human-scale edit
//! hold times. Under post-commit they walk into each other's locks;
//! under early-notify their displays mark in-progress edits and they
//! steer away.

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_common::Oid;
use displaydb_display::DoId;
use displaydb_dlm::{DlmConfig, NotifyProtocol};
use displaydb_nms::{spawn_refresher, NetworkMap, UserConfig, UserSession};
use std::sync::Arc;
use std::time::Duration;

/// Run A4.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "A4 — ablation: update conflicts with post-commit vs early-notify",
        "Paper § 3.3: marking in-progress updates 'significantly decreases' conflicts/aborts. \
         Users hammer a 8-link hot set with 120 ms edit holds.",
        &[
            "users",
            "protocol",
            "commits",
            "aborts",
            "abort rate",
            "edits redirected by marks",
        ],
    );
    let user_counts: &[usize] = match scale {
        Scale::Quick => &[4],
        Scale::Full => &[4, 8],
    };
    let actions = scale.pick(20usize, 40);

    for &users in user_counts {
        for early in [false, true] {
            let bed = Bed::new("a4", None, |c| {
                c.dlm = DlmConfig {
                    protocol: if early {
                        NotifyProtocol::EarlyNotify
                    } else {
                        NotifyProtocol::PostCommit
                    },
                    ..DlmConfig::default()
                };
                // Interactive conflicts should fail fast, like a busy
                // cursor, not hang.
                c.lock.wait_timeout = Duration::from_millis(100);
            })
            .unwrap();
            let topo = bed.topology(4, 8).unwrap(); // the hot set

            let mut handles = Vec::new();
            for u in 0..users {
                let hub = bed.hub.clone();
                let topo = topo.clone();
                handles.push(std::thread::spawn(move || {
                    let client = displaydb_client::DbClient::connect(
                        Box::new(hub.connect().unwrap()),
                        displaydb_client::ClientConfig::named(format!("editor-{u}")),
                    )
                    .unwrap();
                    let cache = Arc::new(displaydb_display::DisplayCache::new());
                    let map = NetworkMap::build(
                        &client,
                        &cache,
                        &topo,
                        displaydb_viz::Rect::new(0.0, 0.0, 100.0, 100.0),
                    )
                    .unwrap();
                    let refresher = spawn_refresher(Arc::clone(&map.display));
                    let objects: Vec<(Oid, DoId)> = topo
                        .links
                        .iter()
                        .copied()
                        .zip(map.link_dos.iter().copied())
                        .collect();
                    let report = UserSession::new(
                        Arc::clone(&client),
                        Arc::clone(&map.display),
                        objects,
                        UserConfig {
                            actions,
                            update_fraction: 0.8,
                            zoom_fraction: 0.0,
                            edit_hold: Duration::from_millis(120),
                            avoid_marked: early,
                            think_time: Duration::from_millis(10),
                            seed: 7000 + u as u64,
                        },
                    )
                    .run()
                    .unwrap();
                    refresher.stop();
                    report
                }));
            }
            let (mut commits, mut aborts, mut avoided) = (0u64, 0u64, 0u64);
            for h in handles {
                let r = h.join().unwrap();
                commits += r.commits;
                aborts += r.aborts;
                avoided += r.conflicts_avoided;
            }
            let attempts = commits + aborts;
            t.row(vec![
                users.to_string(),
                if early {
                    "early-notify (marks)".into()
                } else {
                    "post-commit".into()
                },
                commits.to_string(),
                aborts.to_string(),
                format!("{:.1}%", 100.0 * aborts as f64 / attempts.max(1) as f64),
                avoided.to_string(),
            ]);
        }
    }
    vec![t]
}
