//! A2 (ablation) — the DLC's hierarchical deduplication (§ 4.2.1).
//!
//! The paper rejected treating every display as a separate DLM client
//! because of "extra overhead to the agent in terms of communication,
//! processing and memory": with a per-client DLC, "a database object is
//! display-locked at the DLM only once, no matter how many local
//! displays depend on it \[and\] the DLM has to send only one update
//! notification to the client".
//!
//! We open 1..16 displays over the same 100 objects and count DLM
//! traffic with the DLC versus the display-per-client architecture.

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_common::Oid;
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache};
use std::sync::Arc;
use std::time::Duration;

/// Run A2.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "A2 — ablation: DLC dedup vs display-per-client",
        "Paper § 4.2.1: one lock and one notification per client regardless of display count. \
         100 shared objects, 5 updates.",
        &[
            "displays",
            "architecture",
            "DLM lock msgs",
            "DLM notifications per update",
            "local dispatches per update",
        ],
    );
    let display_counts: &[usize] = match scale {
        Scale::Quick => &[4],
        Scale::Full => &[1, 4, 16],
    };
    let objects = 100usize;
    let updates = 5usize;

    for &displays in display_counts {
        // --- with DLC (paper architecture) --------------------------------
        {
            let bed = Bed::plain("a2-dlc").unwrap();
            let (links, updater) = seed(&bed, objects);
            let viewer = bed.client("viewer").unwrap();
            let cache = Arc::new(DisplayCache::new());
            let class = color_coded_link("Utilization");
            let mut views = Vec::new();
            for w in 0..displays {
                let d = Display::open(Arc::clone(&viewer), Arc::clone(&cache), format!("w{w}"));
                for &l in &links {
                    d.add_object(&class, vec![l]).unwrap();
                }
                views.push(d);
            }
            run_updates(&bed, &updater, &links, updates);
            drain(&views);
            let lock_msgs = viewer.dlc().stats().dlm_lock_messages.get();
            let notifications = bed.server.core().dlm().stats().notifications.get();
            let dispatches = viewer.dlc().stats().notifications_dispatched.get();
            t.row(vec![
                displays.to_string(),
                "DLC (paper)".into(),
                lock_msgs.to_string(),
                format!("{:.0}", notifications as f64 / updates as f64),
                format!("{:.0}", dispatches as f64 / updates as f64),
            ]);
        }

        // --- display-per-client (rejected architecture) --------------------
        {
            let bed = Bed::plain("a2-naive").unwrap();
            let (links, updater) = seed(&bed, objects);
            let class = color_coded_link("Utilization");
            let mut views = Vec::new();
            let mut lock_msgs = 0u64;
            let mut clients = Vec::new();
            for w in 0..displays {
                // Each display is its own client connection — its own
                // DLM registration, locks and notifications.
                let client = bed.client(&format!("naive-{w}")).unwrap();
                let cache = Arc::new(DisplayCache::new());
                let d = Display::open(Arc::clone(&client), cache, format!("w{w}"));
                for &l in &links {
                    d.add_object(&class, vec![l]).unwrap();
                }
                lock_msgs += client.dlc().stats().dlm_lock_messages.get();
                views.push(d);
                clients.push(client);
            }
            run_updates(&bed, &updater, &links, updates);
            drain(&views);
            let notifications = bed.server.core().dlm().stats().notifications.get();
            let dispatches: u64 = clients
                .iter()
                .map(|c| c.dlc().stats().notifications_dispatched.get())
                .sum();
            t.row(vec![
                displays.to_string(),
                "display-per-client".into(),
                lock_msgs.to_string(),
                format!("{:.0}", notifications as f64 / updates as f64),
                format!("{:.0}", dispatches as f64 / updates as f64),
            ]);
        }
    }
    vec![t]
}

fn seed(bed: &Bed, objects: usize) -> (Vec<Oid>, Arc<displaydb_client::DbClient>) {
    let updater = bed.client("updater").unwrap();
    let cat = &bed.catalog;
    let mut txn = updater.begin().unwrap();
    let mut links = Vec::new();
    for _ in 0..objects {
        links.push(
            txn.create(
                updater
                    .new_object("Link")
                    .unwrap()
                    .with(cat, "Utilization", 0.5)
                    .unwrap(),
            )
            .unwrap()
            .oid,
        );
    }
    txn.commit().unwrap();
    (links, updater)
}

fn run_updates(
    bed: &Bed,
    updater: &Arc<displaydb_client::DbClient>,
    links: &[Oid],
    updates: usize,
) {
    let cat = &bed.catalog;
    for i in 0..updates {
        let mut txn = updater.begin().unwrap();
        txn.update(links[i % links.len()], |o| {
            o.set(cat, "Utilization", 0.1 + i as f64 * 0.1)
        })
        .unwrap();
        txn.commit().unwrap();
    }
}

fn drain(views: &[Arc<Display>]) {
    // Give notifications time to land, then drain all queues.
    std::thread::sleep(Duration::from_millis(200));
    for v in views {
        let _ = v.process_pending();
    }
}
