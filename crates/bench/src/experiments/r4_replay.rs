//! R4 — mass-reconnect storm: replay catch-up vs full resync
//! (DESIGN.md § 13).
//!
//! The paper's § 5 failure story, writ large: a fleet of interactive
//! viewers all lose their network at once (a switch reboot, a laptop
//! resume wave) and come back together. Pre-replay, every reconnect is
//! a full resync — each viewer re-reads every object the server cannot
//! prove current, and the re-read burst lands on the server exactly
//! when it is busiest. With the DLM update log on, a resumed viewer
//! instead sends `ReplayFrom{cursor}` and the server streams only the
//! logged suffix past its cursor, filtered through its registered
//! interests and coalesced per object.
//!
//! Both scenarios run the identical outage: every viewer's channel is
//! severed, a slice of the watched topology changes while they are
//! away, then the whole fleet reconnects at once. The only difference
//! is the update log (on vs disabled, which forces the legacy
//! resync-on-resume path). Recovery traffic is measured at the wire —
//! one [`WireMeter`] spans every viewer channel, reset at the moment
//! the fleet is let back in.
//!
//! Claims: replay recovery moves ≥5× fewer bytes than full resync and
//! converges no slower.

use crate::fixture::scratch_dir;
use crate::report::{self, Metrics, Table};
use crate::Scale;
use displaydb_client::{ChannelFactory, ClientConfig, DbClient};
use displaydb_common::backoff::ReconnectPolicy;
use displaydb_common::{Oid, UpdateLogConfig};
use displaydb_display::schema::width_coded_link;
use displaydb_display::{Display, DisplayCache, DoId};
use displaydb_nms::nms_catalog;
use displaydb_schema::Value;
use displaydb_server::{Server, ServerConfig};
use displaydb_wire::{Channel, FaultPlan, FaultyChannel, LocalHub, MeteredChannel, WireMeter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Run R4.
pub fn run(scale: Scale) -> Vec<Table> {
    run_with_metrics(scale).0
}

/// Run R4 and also return the machine-readable metrics for the CI gate.
pub fn run_with_metrics(scale: Scale) -> (Vec<Table>, Metrics) {
    let viewers = scale.pick(4usize, 12);
    let links = scale.pick(64usize, 160);
    // One link in eight changes during the outage: recovery traffic
    // should be proportional to the change, not to the fleet's whole
    // watched set — and for the changed slice, a projected delta, not a
    // full object re-read. Full resync pays for all `links` per viewer
    // regardless.
    let changed = (links / 8).max(1);

    let resync = storm(viewers, links, changed, false);
    let replay = storm(viewers, links, changed, true);

    let mut t = Table::new(
        "R4 — mass reconnect: replay catch-up vs full resync",
        format!(
            "{viewers} viewers each watching {links} links; all disconnected while \
             {changed} links changed, then reconnected at once. Bytes are total wire \
             traffic across every viewer channel from the moment the fleet is let back \
             in until every display holds the final state."
        ),
        &[
            "scenario",
            "recovery bytes",
            "frames",
            "bytes vs resync",
            "converged in (ms)",
            "replay catch-ups",
            "resync fallbacks",
            "objects re-read",
            "resume sheds",
        ],
    );
    for (name, o) in [("full resync (log off)", &resync), ("replay", &replay)] {
        t.row(vec![
            name.into(),
            o.bytes.to_string(),
            o.frames.to_string(),
            report::ratio(resync.bytes as f64, o.bytes as f64),
            report::ms(o.convergence),
            o.replay_catchups.to_string(),
            o.resync_fallbacks.to_string(),
            o.resync_objects.to_string(),
            o.resume_sheds.to_string(),
        ]);
    }

    let mut m = Metrics::new("r4");
    m.put("viewers", viewers as f64);
    m.put("links", links as f64);
    m.put("changed", changed as f64);
    m.put("resync_recovery_bytes", resync.bytes as f64);
    m.put(
        "resync_recovery_ms",
        resync.convergence.as_secs_f64() * 1e3,
    );
    m.put("replay_recovery_bytes", replay.bytes as f64);
    m.put(
        "replay_recovery_ms",
        replay.convergence.as_secs_f64() * 1e3,
    );
    m.put("replay_catchups", replay.replay_catchups as f64);
    m.put("resync_objects", resync.resync_objects as f64);
    m.put("resume_sheds", (resync.resume_sheds + replay.resume_sheds) as f64);
    m.put(
        "recovery_bytes_reduction_x",
        if replay.bytes == 0 {
            f64::INFINITY
        } else {
            resync.bytes as f64 / replay.bytes as f64
        },
    );
    (vec![t], m)
}

struct Outcome {
    bytes: u64,
    frames: u64,
    convergence: Duration,
    replay_catchups: u64,
    resync_fallbacks: u64,
    resync_objects: u64,
    resume_sheds: u64,
}

fn supervised_config(name: &str) -> ClientConfig {
    ClientConfig {
        name: name.into(),
        cache_bytes: 1 << 20,
        call_timeout: Duration::from_millis(300),
        disk_cache: None,
    }
}

fn await_value(display: &Display, id: DoId, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if display.object(id).expect("object").attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(Instant::now() < deadline, "viewer never reached {want}");
        display
            .wait_and_process(Duration::from_millis(50))
            .expect("process");
    }
}

type PlanSlot = Arc<Mutex<Arc<FaultPlan>>>;

/// One member of the reconnect fleet: a supervised client whose live
/// channel can be severed (fresh [`FaultPlan`] per connection) and
/// whose traffic lands on the shared meter; reconnects are held off
/// while the shared gate is closed.
struct FleetViewer {
    client: Arc<DbClient>,
    display: Arc<Display>,
    ids: Vec<DoId>,
    plan_slot: PlanSlot,
}

fn fleet_factory(
    hub: &LocalHub,
    meter: &Arc<WireMeter>,
    gate: &Arc<AtomicBool>,
) -> (ChannelFactory, PlanSlot) {
    let plan_slot: PlanSlot = Arc::new(Mutex::new(Arc::new(FaultPlan::new())));
    let factory: ChannelFactory = {
        let hub = hub.clone();
        let meter = Arc::clone(meter);
        let gate = Arc::clone(gate);
        let plan_slot = Arc::clone(&plan_slot);
        Arc::new(move || {
            if !gate.load(Ordering::SeqCst) {
                return Err(displaydb_common::DbError::Disconnected);
            }
            let plan = Arc::new(FaultPlan::new());
            *plan_slot.lock().unwrap() = Arc::clone(&plan);
            let inner: Box<dyn Channel> = Box::new(hub.connect()?);
            let faulty: Box<dyn Channel> = Box::new(FaultyChannel::wrap(inner, plan));
            Ok(Box::new(MeteredChannel::wrap(faulty, Arc::clone(&meter))) as Box<dyn Channel>)
        })
    };
    (factory, plan_slot)
}

/// One outage/recovery cycle over a fleet. `replay == false` disables
/// the update log, pinning the legacy resync-on-resume recovery.
fn storm(viewers: usize, links: usize, changed: usize, replay: bool) -> Outcome {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(scratch_dir(if replay { "r4-replay" } else { "r4-resync" }));
    config.sync_callbacks = false;
    if !replay {
        config.dlm.log = UpdateLogConfig::disabled();
    }
    let server = Server::spawn_local(Arc::clone(&catalog), config, &hub).expect("server");

    let updater = DbClient::connect(
        Box::new(hub.connect().expect("connect")),
        ClientConfig::named("r4-updater"),
    )
    .expect("updater");

    // Realistically fat NMS links (paper § 4's schema): a full resync
    // re-reads all of this per object, a replay delta carries only the
    // one projected attribute that changed.
    let mut oids: Vec<Oid> = Vec::with_capacity(links);
    let mut txn = updater.begin().expect("begin");
    for i in 0..links {
        let obj = updater
            .new_object("Link")
            .expect("new")
            .with(&catalog, "Name", format!("backbone-link-{i:04}"))
            .expect("Name")
            .with(&catalog, "Notes", "10GE wave, protected, maint window sat 02:00")
            .expect("Notes")
            .with(&catalog, "Utilization", 0.0)
            .expect("Utilization")
            .with(&catalog, "ErrorRate", 1e-9)
            .expect("ErrorRate")
            .with(&catalog, "LatencyMs", 4.2)
            .expect("LatencyMs")
            .with(&catalog, "Vendor", "Acme Optical Systems")
            .expect("Vendor")
            .with(&catalog, "CircuitId", format!("CIRCUIT-{i:06}-A"))
            .expect("CircuitId");
        oids.push(txn.create(obj).expect("create").oid);
    }
    txn.commit().expect("commit");

    let meter = WireMeter::new();
    let gate = Arc::new(AtomicBool::new(true));
    let fleet: Vec<FleetViewer> = (0..viewers)
        .map(|v| {
            let (factory, plan_slot) = fleet_factory(&hub, &meter, &gate);
            let client = DbClient::connect_supervised(
                factory,
                ReconnectPolicy::fast_test(),
                supervised_config(&format!("r4-viewer-{v}")),
            )
            .expect("viewer");
            let cache = Arc::new(DisplayCache::new());
            let display = Display::open(Arc::clone(&client), cache, "r4");
            let ids: Vec<DoId> = oids
                .iter()
                .map(|&oid| {
                    display
                        .add_object(&width_coded_link("Utilization"), vec![oid])
                        .expect("add_object")
                })
                .collect();
            FleetViewer {
                client,
                display,
                ids,
                plan_slot,
            }
        })
        .collect();

    // Steady state: every link written once, every viewer converged and
    // drained; in replay mode every viewer has adopted a cursor ack.
    for &oid in &oids {
        let mut txn = updater.begin().expect("begin");
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.01))
            .expect("update");
        txn.commit().expect("commit");
    }
    for viewer in &fleet {
        await_value(&viewer.display, *viewer.ids.last().expect("ids"), 0.01);
        while viewer
            .display
            .wait_and_process(Duration::from_millis(100))
            .expect("drain")
            > 0
        {}
        if replay {
            // Fully caught up, not just "has a cursor": a lagging cursor
            // would make the replay redeliver part of the warm-up.
            let head = server.core().dlm().update_log().head();
            let deadline = Instant::now() + Duration::from_secs(10);
            while viewer.client.dlc().cursor() < head {
                assert!(Instant::now() < deadline, "viewer cursor never reached {head}");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    // Outage: the whole fleet drops at once, then the topology moves on.
    gate.store(false, Ordering::SeqCst);
    for viewer in &fleet {
        viewer.plan_slot.lock().unwrap().kill_now();
    }
    let mut finals = vec![0.01f64; changed];
    for (i, f) in finals.iter_mut().enumerate() {
        *f = 0.1 + 0.8 * (i as f64 + 1.0) / changed as f64;
        let mut txn = updater.begin().expect("begin");
        txn.update(oids[i], |o| o.set(&catalog, "Utilization", *f))
            .expect("update");
        txn.commit().expect("commit");
    }

    // Recovery: meter only what follows the gate opening.
    meter.reset();
    let start = Instant::now();
    gate.store(true, Ordering::SeqCst);
    for viewer in &fleet {
        for (i, &want) in finals.iter().enumerate() {
            await_value(&viewer.display, viewer.ids[i], want);
        }
    }
    let convergence = start.elapsed();

    let mut replay_catchups = 0u64;
    let mut resync_fallbacks = 0u64;
    let mut resync_objects = 0u64;
    for viewer in &fleet {
        let recovery = &viewer.client.conn_stats().recovery;
        replay_catchups += recovery.replay_catchups.get();
        resync_fallbacks += recovery.replay_truncations.get();
        resync_objects += recovery.resync_objects.get();
    }
    let resume_sheds = server
        .core()
        .dlm()
        .stats()
        .overload
        .resume_sheds
        .get();
    let outcome = Outcome {
        bytes: meter.total_bytes(),
        frames: meter.frames_sent() + meter.frames_received(),
        convergence,
        replay_catchups,
        resync_fallbacks,
        resync_objects,
        resume_sheds,
    };
    drop(fleet);
    drop(server);
    outcome
}
