//! A3 (ablation) — periodic refresh vs notification-driven refresh.
//!
//! § 2.3: "the straightforward approach of periodically refreshing the
//! user interfaces is not considered acceptable, since it may cause
//! excessive overhead." We quantify both sides of that trade:
//!
//! * **messages** — a poller re-reads every displayed object each tick
//!   whether anything changed or not; notifications only move data when
//!   something did change;
//! * **staleness** — between polls the display shows outdated state; the
//!   notification path bounds staleness by delivery latency.

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_common::metrics::LatencyRecorder;
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache};
use displaydb_nms::{MonitorConfig, MonitorProcess};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run A3.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "A3 — ablation: periodic refresh vs display-lock notifications",
        "Paper § 2.3: polling 'may cause excessive overhead'. 60 watched links, monitor at \
         20 updates/s, 5 s window. Staleness = commit→display-current latency.",
        &[
            "refresh strategy",
            "objects read from server",
            "reads/s",
            "useful (changed)",
            "wasted (unchanged)",
            "staleness p50 (ms)",
            "staleness p95 (ms)",
        ],
    );
    let window = scale.pick(Duration::from_secs(3), Duration::from_secs(5));
    let watched = 60usize;

    // Notification-driven.
    {
        let (row, _) = run_mode(RefreshMode::Notify, window, watched);
        t.row(row);
    }
    // Polling at several intervals.
    for interval_ms in [250u64, 1000, 2000] {
        let (row, _) = run_mode(
            RefreshMode::Poll(Duration::from_millis(interval_ms)),
            window,
            watched,
        );
        t.row(row);
    }
    vec![t]
}

enum RefreshMode {
    Notify,
    Poll(Duration),
}

fn run_mode(mode: RefreshMode, window: Duration, watched: usize) -> (Vec<String>, ()) {
    let bed = Bed::plain("a3").unwrap();
    let cat = Arc::clone(&bed.catalog);
    let viewer = bed.client("viewer").unwrap();
    let updater = bed.client("updater").unwrap();

    let mut txn = updater.begin().unwrap();
    let mut links = Vec::new();
    for _ in 0..watched {
        links.push(
            txn.create(
                updater
                    .new_object("Link")
                    .unwrap()
                    .with(&cat, "Utilization", 0.5)
                    .unwrap(),
            )
            .unwrap()
            .oid,
        );
    }
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "a3");
    let class = color_coded_link("Utilization");
    let dos: Vec<_> = links
        .iter()
        .map(|&l| display.add_object(&class, vec![l]).unwrap())
        .collect();
    // The polling variant would not hold display locks at all; release
    // them so the comparison is honest about message counts.
    let polling = matches!(mode, RefreshMode::Poll(_));

    let monitor = MonitorProcess::spawn(
        Arc::clone(&updater),
        links.clone(),
        MonitorConfig {
            rate_per_sec: 20.0,
            batch: 1,
            walk: 0.3,
            ..MonitorConfig::default()
        },
    );

    let staleness = LatencyRecorder::new();
    let msgs_before = viewer.conn().stats().sent.get();
    let mut refresh_reads = 0u64;
    let mut changed_reads = 0u64;
    let started = Instant::now();

    match mode {
        RefreshMode::Notify => {
            while started.elapsed() < window {
                let before = display.stats().refreshes.get();
                display.wait_and_process(Duration::from_millis(20)).unwrap();
                let delta = display.stats().refreshes.get() - before;
                refresh_reads += delta;
                changed_reads += delta; // notifications only fire on change
            }
            // Notification staleness = the refresh latency the display
            // recorded.
            staleness.merge_from(&display.stats().refresh_latency);
        }
        RefreshMode::Poll(interval) => {
            // Snapshot of what the display currently believes.
            let mut believed: Vec<f64> = links
                .iter()
                .zip(&dos)
                .map(|(_, &d)| {
                    display
                        .object(d)
                        .unwrap()
                        .attr("Utilization")
                        .unwrap()
                        .as_float()
                        .unwrap()
                })
                .collect();
            while started.elapsed() < window {
                std::thread::sleep(interval);
                // Poll: re-read everything and re-derive.
                viewer.cache().clear(); // a poller cannot trust its cache
                let objs = viewer.read_many(&links).unwrap();
                refresh_reads += links.len() as u64;
                for ((obj, believed), &d) in objs.into_iter().zip(&mut believed).zip(&dos) {
                    let obj = obj.unwrap();
                    let now = obj.get(&cat, "Utilization").unwrap().as_float().unwrap();
                    if (now - *believed).abs() > 1e-12 {
                        changed_reads += 1;
                        *believed = now;
                        // Staleness for polling is bounded below by half
                        // the interval on average; we charge the full
                        // detection delay: the poll interval.
                        staleness.record(interval / 2);
                        let _ = d;
                    }
                }
            }
        }
    }
    let monitor_commits = monitor.commits();
    monitor.stop();
    let _msgs = viewer.conn().stats().sent.get() - msgs_before;
    let s = staleness.summary();
    let label = match mode {
        RefreshMode::Notify => "display-lock notifications".to_string(),
        RefreshMode::Poll(i) => format!("poll every {} ms", i.as_millis()),
    };
    let wasted = refresh_reads.saturating_sub(changed_reads);
    let _ = (polling, monitor_commits);
    (
        vec![
            label,
            refresh_reads.to_string(),
            format!("{:.1}", refresh_reads as f64 / window.as_secs_f64()),
            changed_reads.to_string(),
            wasted.to_string(),
            s.map(|s| format!("{:.1}", s.p50.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into()),
            s.map(|s| format!("{:.1}", s.p95.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into()),
        ],
        (),
    )
}
