//! E2 — client-side consistency-maintenance overhead (§ 4.3).
//!
//! The paper: "at the client side, the display consistency maintenance
//! overhead is very small to deteriorate performance" — concluded under
//! a relatively high update rate.
//!
//! We point a stream of committed updates at a viewer and measure the
//! cost of *consuming* them. Two protocol rows separate the components:
//!
//! * **eager shipping** — the new state rides the notification, so the
//!   handler cost is pure client-side work (decode, re-derive, redraw):
//!   this is the number the paper's claim is about;
//! * **lazy (post-commit)** — the handler additionally performs the
//!   re-read round-trip to the server, so its cost is dominated by
//!   messaging, not client CPU.

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache};
use displaydb_dlm::DlmConfig;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run E2.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E2 — client display-consistency maintenance overhead",
        "Paper: client-side overhead 'very small'. Eager rows = pure client processing; \
         lazy rows include the refresh read round-trip.",
        &[
            "protocol",
            "updates",
            "notifications handled",
            "maintenance time (ms)",
            "us/notification",
            "maintenance share of wall time",
        ],
    );
    let update_counts: Vec<usize> = match scale {
        Scale::Quick => vec![200],
        Scale::Full => vec![200, 1000],
    };
    for &updates in &update_counts {
        for eager in [true, false] {
            let row = run_once(updates, eager);
            t.row(row);
        }
    }
    vec![t]
}

fn run_once(updates: usize, eager: bool) -> Vec<String> {
    let bed = Bed::with_dlm(
        "e2",
        DlmConfig {
            eager_shipping: eager,
            ..DlmConfig::default()
        },
    )
    .unwrap();
    let cat = &bed.catalog;
    let viewer = bed.client("viewer").unwrap();
    let updater = bed.client("updater").unwrap();

    // 20 watched links.
    let mut txn = updater.begin().unwrap();
    let mut links = Vec::new();
    for _ in 0..20 {
        links.push(
            txn.create(
                updater
                    .new_object("Link")
                    .unwrap()
                    .with(cat, "Utilization", 0.5)
                    .unwrap(),
            )
            .unwrap()
            .oid,
        );
    }
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "viewer");
    let class = color_coded_link("Utilization");
    for &link in &links {
        display.add_object(&class, vec![link]).unwrap();
    }

    // Fire updates while the viewer consumes them inline.
    let wall_start = Instant::now();
    let mut maintenance = Duration::ZERO;
    for i in 0..updates {
        let mut txn = updater.begin().unwrap();
        let target = links[i % links.len()];
        txn.update(target, |o| {
            o.set(cat, "Utilization", (i % 100) as f64 / 100.0)
        })
        .unwrap();
        txn.commit().unwrap();
        let m = Instant::now();
        display.process_pending().unwrap();
        maintenance += m.elapsed();
    }
    // Drain stragglers.
    loop {
        let m = Instant::now();
        let n = display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        if n > 0 {
            maintenance += m.elapsed();
        } else {
            break;
        }
    }
    let wall = wall_start.elapsed();

    let handled = display.stats().events.get();
    let per_event_us = if handled > 0 {
        maintenance.as_secs_f64() * 1e6 / handled as f64
    } else {
        0.0
    };
    vec![
        if eager {
            "eager (client CPU only)".into()
        } else {
            "lazy (incl. refresh read)".into()
        },
        updates.to_string(),
        handled.to_string(),
        format!("{:.2}", maintenance.as_secs_f64() * 1e3),
        format!("{per_event_us:.1}"),
        format!(
            "{:.2}%",
            100.0 * maintenance.as_secs_f64() / wall.as_secs_f64()
        ),
    ]
}
