//! OBS — end-to-end notification-path observability (DESIGN.md § 12).
//!
//! Companion to R2/R3: instead of measuring the pipeline from the
//! outside (commit→refresh wall clock), this experiment turns on trace
//! propagation and watches single committed updates travel every hop —
//! commit → DLM interest intersect → outbox enqueue/drain → wire
//! send/recv → DLC apply — then aggregates the per-stage gaps into the
//! latency breakdown tables quoted in EXPERIMENTS.md.
//!
//! It also exercises the unified [`StatsRegistry`]: every subsystem's
//! counters (server, DLM, overload, both connections, the viewer's DLC)
//! are registered into one registry whose JSON snapshot — stats plus the
//! trace ring — is written to `BENCH_OUT_DIR` and uploaded by CI as an
//! artifact.

use crate::fixture::scratch_dir;
use crate::report::{self, Metrics, Table};
use crate::Scale;
use displaydb_client::{ClientConfig, DbClient};
use displaydb_common::stats::{Snapshot, StatsRegistry};
use displaydb_common::trace::{self, Stage, StageBreakdown, TraceSpan};
use displaydb_common::Oid;
use displaydb_display::schema::width_coded_link;
use displaydb_display::{Display, DisplayCache, DoId};
use displaydb_nms::nms_catalog;
use displaydb_schema::Value;
use displaydb_server::{Server, ServerConfig};
use displaydb_wire::LocalHub;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run OBS and print the breakdown tables.
pub fn run(scale: Scale) -> Vec<Table> {
    run_full(scale).tables
}

/// Everything one OBS run produces.
pub struct ObsOutcome {
    /// The printed tables (per-stage breakdown + one exemplar trace).
    pub tables: Vec<Table>,
    /// The unified registry snapshot (stats sections + trace events) as
    /// JSON, ready to write to `BENCH_OUT_DIR`.
    pub snapshot_json: String,
    /// Machine-readable summary numbers.
    pub metrics: Metrics,
    /// One trace that covered all seven stages, for spot checks.
    pub exemplar: Option<TraceSpan>,
}

/// Run OBS and return tables, the snapshot document, and metrics.
pub fn run_full(scale: Scale) -> ObsOutcome {
    let links = scale.pick(8usize, 24);
    let updates = scale.pick(120usize, 600);

    // Tracing on for the duration of the run; restored on exit so later
    // experiments in the same process (exp_all) run at disabled-path
    // cost, as the bench gate assumes.
    trace::enable(0);
    trace::clear();
    let outcome = traced_storm(links, updates);
    trace::disable();
    trace::clear();
    outcome
}

fn await_value(display: &Display, id: DoId, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if display.object(id).expect("object").attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(Instant::now() < deadline, "viewer never reached {want}");
        display
            .wait_and_process(Duration::from_millis(50))
            .expect("process");
    }
}

fn traced_storm(links: usize, updates: usize) -> ObsOutcome {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let mut config = ServerConfig::new(scratch_dir("obs"));
    // Measure the notification pipeline, not callback delivery (same
    // decoupling as E4/R2/R3).
    config.sync_callbacks = false;
    let server = Server::spawn_local(Arc::clone(&catalog), config, &hub).expect("server");

    let updater = DbClient::connect(
        Box::new(hub.connect().expect("connect")),
        ClientConfig::named("obs-updater"),
    )
    .expect("updater");
    let viewer = DbClient::connect(
        Box::new(hub.connect().expect("connect")),
        ClientConfig::named("obs-viewer"),
    )
    .expect("viewer");

    // The unified registry: one snapshot reads the whole pipeline.
    let registry = StatsRegistry::new();
    registry.register("server", Arc::new(server.core().stats().clone()));
    registry.register("dlm", Arc::new(server.core().dlm().stats().clone()));
    registry.register(
        "dlm.overload",
        Arc::new(server.core().dlm().stats().overload.clone()),
    );
    registry.register(
        "dlm.update_log",
        Arc::new(server.core().dlm().stats().log.clone()),
    );
    registry.register("updater.conn", Arc::new(updater.conn().stats().clone()));
    registry.register("viewer.conn", Arc::new(viewer.conn().stats().clone()));
    registry.register(
        "viewer.recovery",
        Arc::new(viewer.conn().stats().recovery.clone()),
    );
    registry.register("viewer.dlc", Arc::new(viewer.dlc().stats().clone()));

    let mut oids: Vec<Oid> = Vec::with_capacity(links);
    let mut txn = updater.begin().expect("begin");
    for _ in 0..links {
        oids.push(
            txn.create(updater.new_object("Link").expect("new"))
                .expect("create")
                .oid,
        );
    }
    txn.commit().expect("commit");

    // Projected watching (as R3's delta scenario): every traced commit
    // below touches Utilization, so each produces a delta that runs the
    // full seven-stage path to the viewer's cache.
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "obs");
    let ids: Vec<DoId> = oids
        .iter()
        .map(|&oid| {
            display
                .add_object(&width_coded_link("Utilization"), vec![oid])
                .expect("add_object")
        })
        .collect();

    for i in 0..updates {
        let li = i % links;
        // Globally increasing: every commit writes a distinct value, so
        // awaiting it proves this commit's delta (this trace id) landed.
        let value = 0.01 + 0.9 * (i as f64 + 1.0) / updates as f64;
        let mut txn = updater.begin().expect("begin");
        txn.update(oids[li], |o| o.set(&catalog, "Utilization", value))
            .expect("update");
        txn.commit().expect("commit");
        await_value(&display, ids[li], value);
    }

    // Snapshot before teardown so the sections reflect the live run.
    let snapshot_json = registry.snapshot_json();
    let snap = Snapshot::parse(&snapshot_json).expect("snapshot parses");
    let events = trace::events();
    let breakdown = StageBreakdown::from_events(&events);

    let mut stage_table = Table::new(
        "OBS — per-stage latency breakdown of the notification path",
        format!(
            "{updates} traced commits over {links} projected links; each trace id is \
             minted at the committing client, carried through the wire protocols, and \
             timestamped at every hop. Consecutive-stage gaps telescope to the \
             end-to-end span."
        ),
        &["stage gap", "traces", "p50 (ms)", "p95 (ms)", "max (ms)"],
    );
    for ((from, to), rec) in &breakdown.pairs {
        let s = rec.summary().expect("gap samples");
        stage_table.row(vec![
            format!("{} -> {}", from.name(), to.name()),
            s.count.to_string(),
            report::ms(s.p50),
            report::ms(s.p95),
            report::ms(s.max),
        ]);
    }
    if let Some(s) = breakdown.end_to_end.summary() {
        stage_table.row(vec![
            "end-to-end (commit -> dlc_apply)".into(),
            s.count.to_string(),
            report::ms(s.p50),
            report::ms(s.p95),
            report::ms(s.max),
        ]);
    }

    // One exemplar: the first trace that covered all seven stages, shown
    // as the gap walk README's "reading a trace" section quotes.
    let exemplar = {
        let mut ids: Vec<u64> = events.iter().map(|e| e.trace).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|id| TraceSpan::of(id, &events))
            .find(|span| span.covers(Stage::ALL))
    };
    let mut walk = Table::new(
        "OBS — one update, hop by hop",
        "A single committed write followed end-to-end by its trace id. Offsets are \
         from the commit stage; the gap column is time spent reaching this hop from \
         the previous one.",
        &["stage", "offset (ms)", "gap (ms)"],
    );
    if let Some(span) = &exemplar {
        assert!(span.is_monotone(), "stage timestamps must be monotone");
        let t0 = span.stages.first().map(|&(_, t)| t).unwrap_or(0);
        let mut prev = t0;
        for &(stage, t) in &span.stages {
            walk.row(vec![
                stage.name().into(),
                report::ms(Duration::from_nanos(t - t0)),
                report::ms(Duration::from_nanos(t - prev)),
            ]);
            prev = t;
        }
    }

    let mut m = Metrics::new("obs");
    m.put("links", links as f64);
    m.put("updates", updates as f64);
    m.put("traces", breakdown.traces as f64);
    m.put("trace_events", events.len() as f64);
    if let Some(s) = breakdown.end_to_end.summary() {
        m.put("end_to_end_p50", s.p50.as_secs_f64() * 1e3);
        m.put("end_to_end_p95", s.p95.as_secs_f64() * 1e3);
    }
    m.put(
        "complete_seven_stage_trace",
        if exemplar.is_some() { 1.0 } else { 0.0 },
    );
    m.put("snapshot_sections", snap.stats.len() as f64);
    m.put(
        "server_commits",
        snap.get("server", "commits").unwrap_or(0) as f64,
    );
    m.put(
        "viewer_deltas_in",
        snap.get("viewer.dlc", "deltas_in").unwrap_or(0) as f64,
    );

    drop(display);
    drop(server);
    ObsOutcome {
        tables: vec![stage_table, walk],
        snapshot_json,
        metrics: m,
        exemplar,
    }
}
