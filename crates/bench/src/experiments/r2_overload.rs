//! R2 — overload protection under an update storm (DESIGN.md § 9).
//!
//! The paper's § 4 console assumes every viewer keeps up with the
//! notification stream. This experiment measures what the bounded-outbox
//! layer buys when one viewer *cannot* keep up: a 200 updates/s storm
//! fans out to a healthy viewer and to a slow viewer whose link makes
//! every server→client frame cost 10× the per-update service budget
//! (50 ms against a 5 ms storm period).
//!
//! Three claims, one scenario:
//!
//! * **isolation** — the healthy viewer's commit→refresh latency with
//!   the slow consumer present stays within ~2× the no-slow-client
//!   baseline, because the stall is absorbed by the slow client's
//!   dedicated outbox writer, never the fan-out path.
//! * **bounded memory** — the slow client's outbox never grows past the
//!   high-water mark (+1 for the resync marker that replaces a swept
//!   backlog); the server's exposure is O(watched objects), not
//!   O(storm length).
//! * **convergence** — once the storm ends and the link heals, the slow
//!   viewer reaches the exact final state of every link via resync
//!   re-reads; the swept per-object events are never replayed.

use crate::fixture::scratch_dir;
use crate::report::{self, Metrics, Table};
use crate::Scale;
use displaydb_client::{ClientConfig, DbClient};
use displaydb_common::metrics::LatencyRecorder;
use displaydb_common::Oid;
use displaydb_display::schema::width_coded_link;
use displaydb_display::{Display, DisplayCache, DoId};
use displaydb_nms::nms_catalog;
use displaydb_schema::Value;
use displaydb_server::{Server, ServerConfig};
use displaydb_wire::{FaultPlan, FaultyListener, LocalHub};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Storm pacing: 5 ms between commits = the paper-scale 200 updates/s.
const STORM_PERIOD: Duration = Duration::from_millis(5);
/// Injected per-frame sender stall for the slow viewer: 10× the storm
/// period, i.e. a consumer an order of magnitude slower than the feed.
const SLOW_FRAME_DELAY: Duration = Duration::from_millis(50);
/// Every n-th commit is latency-sampled end-to-end on the healthy
/// viewer (sampling also drains its display queue).
const SAMPLE_EVERY: usize = 10;

/// Run R2.
pub fn run(scale: Scale) -> Vec<Table> {
    run_with_metrics(scale).0
}

/// Run R2 and also return the machine-readable metrics for the CI gate.
pub fn run_with_metrics(scale: Scale) -> (Vec<Table>, Metrics) {
    let links = scale.pick(16usize, 40);
    let updates = scale.pick(200usize, 1200);
    // Low enough that a stalled consumer trips it several times over
    // (lagging demotion needs consecutive sweeps), high enough that the
    // healthy consumer never comes near it.
    let high_water = links / 4;

    let base = storm(links, updates, high_water, false);
    let slow = storm(links, updates, high_water, true);

    let mut lat = Table::new(
        "R2 — healthy-viewer latency during a 200 updates/s storm",
        "One viewer's link stalls its sender 50 ms per frame (10x the 5 ms per-update \
         budget). Per-client bounded outboxes keep the stall out of the fan-out path: \
         the healthy viewer's p95 commit->refresh should stay within ~2x the baseline.",
        &[
            "scenario",
            "links",
            "updates",
            "healthy p50 (ms)",
            "healthy p95 (ms)",
            "p95 vs baseline",
        ],
    );
    lat.row(vec![
        "baseline (all viewers healthy)".into(),
        links.to_string(),
        updates.to_string(),
        report::ms(base.p50),
        report::ms(base.p95),
        "1.0x".into(),
    ]);
    lat.row(vec![
        "one slow viewer (10x service time)".into(),
        links.to_string(),
        updates.to_string(),
        report::ms(slow.p50),
        report::ms(slow.p95),
        report::ratio(slow.p95.as_secs_f64(), base.p95.as_secs_f64()),
    ]);

    let mut ob = Table::new(
        "R2 — outbox behaviour and slow-viewer convergence",
        format!(
            "Outbox high-water mark {high_water}: above it the queue is swept into one \
             ResyncRequired marker (depth bound = mark + 1). After the storm the slow \
             viewer re-reads its way back to the exact final state of all {links} links."
        ),
        &[
            "scenario",
            "enqueued",
            "coalesced",
            "overflows",
            "resyncs sent",
            "lagging demotions",
            "outbox depth hw (bound)",
            "slow-viewer resyncs in",
            "converged in (ms)",
        ],
    );
    for (name, o) in [("baseline", &base), ("one slow viewer", &slow)] {
        ob.row(vec![
            name.into(),
            o.enqueued.to_string(),
            o.coalesced.to_string(),
            o.overflows.to_string(),
            o.resyncs_sent.to_string(),
            o.lagging.to_string(),
            format!("{} ({})", o.depth_high_water, high_water + 1),
            o.resyncs_in.to_string(),
            report::ms(o.convergence),
        ]);
    }

    let mut m = Metrics::new("r2");
    m.put("links", links as f64);
    m.put("updates", updates as f64);
    m.put("baseline_healthy_p95_ms", base.p95.as_secs_f64() * 1e3);
    m.put("slow_healthy_p95_ms", slow.p95.as_secs_f64() * 1e3);
    m.put("slow_convergence_ms", slow.convergence.as_secs_f64() * 1e3);
    m.put("slow_outbox_depth_hw", slow.depth_high_water as f64);
    m.put("slow_resyncs_in", slow.resyncs_in as f64);
    (vec![lat, ob], m)
}

struct Outcome {
    p50: Duration,
    p95: Duration,
    enqueued: u64,
    coalesced: u64,
    overflows: u64,
    resyncs_sent: u64,
    lagging: u64,
    depth_high_water: u64,
    resyncs_in: u64,
    convergence: Duration,
}

fn client(hub: &LocalHub, name: &str) -> Arc<DbClient> {
    DbClient::connect(
        Box::new(hub.connect().expect("connect")),
        ClientConfig::named(name),
    )
    .expect("client")
}

/// One display watching every link.
fn watch_all(viewer: &Arc<DbClient>, oids: &[Oid], name: &str) -> (Arc<Display>, Vec<DoId>) {
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(viewer), cache, name);
    let ids = oids
        .iter()
        .map(|&oid| {
            display
                .add_object(&width_coded_link("Utilization"), vec![oid])
                .expect("add_object")
        })
        .collect();
    (display, ids)
}

fn await_value(display: &Display, id: DoId, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if display.object(id).expect("object").attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(Instant::now() < deadline, "viewer never reached {want}");
        display
            .wait_and_process(Duration::from_millis(50))
            .expect("process");
    }
}

/// Run one storm. `slow == false` is the baseline: the second viewer is
/// still connected through the faulty listener, but no delay is armed.
fn storm(links: usize, updates: usize, high_water: usize, slow: bool) -> Outcome {
    let catalog = Arc::new(nms_catalog());
    let fast_hub = LocalHub::new();
    let slow_hub = LocalHub::new();
    let plan = Arc::new(FaultPlan::new());
    let mut config = ServerConfig::new(scratch_dir(if slow { "r2-slow" } else { "r2-base" }));
    config.dlm.overload.outbox_high_water = high_water;
    // Decouple commits from invalidation delivery (as E4 does): the
    // measurement is the notification pipeline, and a synchronous
    // callback to the stalled viewer would serialize the storm itself.
    config.sync_callbacks = false;
    let server = Server::spawn(
        Arc::clone(&catalog),
        config,
        vec![
            Box::new(fast_hub.clone()),
            Box::new(FaultyListener::wrap(
                Box::new(slow_hub.clone()),
                Arc::clone(&plan),
            )),
        ],
    )
    .expect("server");

    let updater = client(&fast_hub, "r2-updater");
    let healthy = client(&fast_hub, "r2-healthy");
    let slow_viewer = client(&slow_hub, "r2-slow");

    let mut oids = Vec::with_capacity(links);
    let mut txn = updater.begin().expect("begin");
    for _ in 0..links {
        oids.push(
            txn.create(updater.new_object("Link").expect("new"))
                .expect("create")
                .oid,
        );
    }
    txn.commit().expect("commit");

    let (healthy_display, healthy_ids) = watch_all(&healthy, &oids, "r2-healthy");
    let (slow_display, slow_ids) = watch_all(&slow_viewer, &oids, "r2-slow");

    // Warm-up: touch every link once and let both viewers settle before
    // any delay is armed, so the storm starts from a steady state. One
    // commit per link — a single txn over all of them would burst
    // `links` events into each outbox at once and sweep even a healthy
    // viewer past the (deliberately low) high-water mark.
    for &oid in &oids {
        let mut txn = updater.begin().expect("begin");
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.01))
            .expect("update");
        txn.commit().expect("commit");
    }
    for display in [&healthy_display, &slow_display] {
        await_value(display, *slow_ids.last().expect("ids"), 0.01);
        while display
            .wait_and_process(Duration::from_millis(100))
            .expect("drain")
            > 0
        {}
    }

    // Phase boundary: the warm-up burst's queue depths must not be
    // attributed to the storm measurement.
    let overload = &server.core().dlm().stats().overload;
    overload.queue_depth.reset_high_water();
    healthy.dlc().stats().display_queue_depth.reset_high_water();
    slow_viewer
        .dlc()
        .stats()
        .display_queue_depth
        .reset_high_water();

    if slow {
        plan.set_delay(1000, SLOW_FRAME_DELAY);
    }

    let recorder = LatencyRecorder::new();
    let mut last = vec![0.01f64; links];
    let started = Instant::now();
    for i in 0..updates {
        let tick = started + STORM_PERIOD * i as u32;
        if let Some(wait) = tick.checked_duration_since(Instant::now()) {
            std::thread::sleep(wait);
        }
        let li = i % links;
        // Globally increasing, so every commit writes a distinct value.
        let value = 0.02 + 0.9 * (i as f64 + 1.0) / updates as f64;
        let mut txn = updater.begin().expect("begin");
        txn.update(oids[li], |o| o.set(&catalog, "Utilization", value))
            .expect("update");
        let submitted = Instant::now();
        txn.commit().expect("commit");
        last[li] = value;
        if i % SAMPLE_EVERY == 0 {
            // The updater is the only writer, so `value` stays the
            // latest for this link until the sample completes.
            await_value(&healthy_display, healthy_ids[li], value);
            recorder.record(submitted.elapsed());
        }
    }

    // Storm over: heal the link and let the slow viewer converge on the
    // exact final state of every link.
    plan.clear_delay();
    let heal = Instant::now();
    for (idx, &id) in slow_ids.iter().enumerate() {
        await_value(&slow_display, id, last[idx]);
    }
    let convergence = heal.elapsed();

    let summary = recorder.summary().expect("latency samples");
    let overload = &server.core().dlm().stats().overload;
    let outcome = Outcome {
        p50: summary.p50,
        p95: summary.p95,
        enqueued: overload.enqueued.get(),
        coalesced: overload.coalesced.get(),
        overflows: overload.overflows.get(),
        resyncs_sent: overload.resyncs_sent.get(),
        lagging: overload.lagging_transitions.get(),
        depth_high_water: overload.queue_depth.high_water(),
        resyncs_in: slow_viewer.dlc().stats().resyncs_in.get(),
        convergence,
    };
    drop(server);
    outcome
}
