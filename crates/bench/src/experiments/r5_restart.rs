//! R5 — server restart: durable cross-restart replay vs restart resync
//! (DESIGN.md § 14).
//!
//! R4's storm loses the *connections*; this one loses the *process*.
//! A fleet of viewers is connected to a server that is hard-killed (no
//! outbox drain, no goodbye) and restarted over the same data
//! directory; a slice of the watched topology changes before the fleet
//! is let back in. Every resume token is refused — the in-memory
//! session state died with the process — so without the durable update
//! log each viewer must treat its entire cached set as suspect and
//! resync it. With the spill on, the log's incarnation and window
//! survive the restart: the server proves the unchanged copies current
//! from the durable window and streams only the missed suffix, so
//! recovery traffic is proportional to what actually changed.
//!
//! Both scenarios run the identical kill/restart/change/reconnect
//! cycle; the only difference is `ServerConfig::durable_log`. Recovery
//! traffic is measured at the wire from the moment the fleet is let
//! back in.
//!
//! Claim: durable replay recovery moves ≥3× fewer bytes than
//! restart-resync and converges no slower.

use crate::fixture::scratch_dir;
use crate::report::{self, Metrics, Table};
use crate::Scale;
use displaydb_client::{ChannelFactory, ClientConfig, DbClient};
use displaydb_common::backoff::ReconnectPolicy;
use displaydb_common::{DurableLogConfig, Oid};
use displaydb_display::schema::width_coded_link;
use displaydb_display::{Display, DisplayCache, DoId};
use displaydb_nms::nms_catalog;
use displaydb_schema::Value;
use displaydb_server::{Server, ServerConfig};
use displaydb_wire::{Channel, LocalHub, MeteredChannel, WireMeter};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Run R5.
pub fn run(scale: Scale) -> Vec<Table> {
    run_with_metrics(scale).0
}

/// Run R5 and also return the machine-readable metrics for the CI gate.
pub fn run_with_metrics(scale: Scale) -> (Vec<Table>, Metrics) {
    let viewers = scale.pick(3usize, 10);
    let links = scale.pick(48usize, 160);
    // One link in eight changes across the restart: durable replay
    // should pay for the change, restart-resync pays for the whole
    // watched set per viewer.
    let changed = (links / 8).max(1);

    let resync = storm(viewers, links, changed, false);
    let replay = storm(viewers, links, changed, true);

    let mut t = Table::new(
        "R5 — server restart: durable replay vs restart resync",
        format!(
            "{viewers} viewers each watching {links} links; the server is hard-killed \
             and restarted over the same directory while {changed} links changed. Bytes \
             are total wire traffic across every viewer channel from the moment the \
             fleet is let back in until every display holds the final state."
        ),
        &[
            "scenario",
            "recovery bytes",
            "frames",
            "bytes vs resync",
            "converged in (ms)",
            "cross-restart replays",
            "objects re-read",
            "sessions recovered",
        ],
    );
    for (name, o) in [
        ("restart resync (log off)", &resync),
        ("durable replay", &replay),
    ] {
        t.row(vec![
            name.into(),
            o.bytes.to_string(),
            o.frames.to_string(),
            report::ratio(resync.bytes as f64, o.bytes as f64),
            report::ms(o.convergence),
            o.cross_restart_replays.to_string(),
            o.resync_objects.to_string(),
            o.sessions_recovered.to_string(),
        ]);
    }

    let mut m = Metrics::new("r5");
    m.put("viewers", viewers as f64);
    m.put("links", links as f64);
    m.put("changed", changed as f64);
    m.put("resync_recovery_bytes", resync.bytes as f64);
    m.put("resync_recovery_ms", resync.convergence.as_secs_f64() * 1e3);
    m.put("replay_recovery_bytes", replay.bytes as f64);
    m.put("replay_recovery_ms", replay.convergence.as_secs_f64() * 1e3);
    m.put("cross_restart_replays", replay.cross_restart_replays as f64);
    m.put("sessions_recovered", replay.sessions_recovered as f64);
    m.put("resync_objects", resync.resync_objects as f64);
    m.put(
        "recovery_bytes_reduction_x",
        if replay.bytes == 0 {
            f64::INFINITY
        } else {
            resync.bytes as f64 / replay.bytes as f64
        },
    );
    (vec![t], m)
}

struct Outcome {
    bytes: u64,
    frames: u64,
    convergence: Duration,
    cross_restart_replays: u64,
    resync_objects: u64,
    sessions_recovered: u64,
}

fn supervised_config(name: &str) -> ClientConfig {
    ClientConfig {
        name: name.into(),
        cache_bytes: 1 << 20,
        call_timeout: Duration::from_millis(300),
        disk_cache: None,
    }
}

fn await_value(display: &Display, id: DoId, want: f64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if display.object(id).expect("object").attr("Utilization") == Some(&Value::Float(want)) {
            return;
        }
        assert!(Instant::now() < deadline, "viewer never reached {want}");
        display
            .wait_and_process(Duration::from_millis(50))
            .expect("process");
    }
}

type HubSlot = Arc<Mutex<LocalHub>>;

/// One member of the fleet: a supervised, metered client dialing
/// whatever hub currently sits in the shared slot (so the restarted
/// server is reachable on its fresh hub) while the gate is open.
struct FleetViewer {
    client: Arc<DbClient>,
    display: Arc<Display>,
    ids: Vec<DoId>,
}

fn fleet_factory(slot: &HubSlot, meter: &Arc<WireMeter>, gate: &Arc<AtomicBool>) -> ChannelFactory {
    let slot = Arc::clone(slot);
    let meter = Arc::clone(meter);
    let gate = Arc::clone(gate);
    Arc::new(move || {
        if !gate.load(Ordering::SeqCst) {
            return Err(displaydb_common::DbError::Disconnected);
        }
        let inner: Box<dyn Channel> = Box::new(slot.lock().unwrap().connect()?);
        Ok(Box::new(MeteredChannel::wrap(inner, Arc::clone(&meter))) as Box<dyn Channel>)
    })
}

fn server_config(dir: &std::path::Path, durable: bool) -> ServerConfig {
    let mut config = ServerConfig::new(dir);
    config.sync_commits = true;
    config.sync_callbacks = false;
    if durable {
        config.durable_log = DurableLogConfig {
            sync_every: 1,
            ..DurableLogConfig::enabled()
        };
    }
    config
}

/// One kill/restart/recovery cycle over a fleet. `durable == false`
/// leaves the update log memory-only, pinning the restart-resync path.
fn storm(viewers: usize, links: usize, changed: usize, durable: bool) -> Outcome {
    let catalog = Arc::new(nms_catalog());
    let dir = scratch_dir(if durable { "r5-durable" } else { "r5-resync" });
    let hub_slot: HubSlot = Arc::new(Mutex::new(LocalHub::new()));
    let hub0 = hub_slot.lock().unwrap().clone();
    let mut server = Server::spawn_local(Arc::clone(&catalog), server_config(&dir, durable), &hub0)
        .expect("server");

    let updater = DbClient::connect(
        Box::new(hub0.connect().expect("connect")),
        ClientConfig::named("r5-updater"),
    )
    .expect("updater");

    // The same realistically fat NMS links as R4: restart-resync
    // re-reads all of this per viewer, durable replay only the changed
    // slice's deltas.
    let mut oids: Vec<Oid> = Vec::with_capacity(links);
    let mut txn = updater.begin().expect("begin");
    for i in 0..links {
        let obj = updater
            .new_object("Link")
            .expect("new")
            .with(&catalog, "Name", format!("backbone-link-{i:04}"))
            .expect("Name")
            .with(
                &catalog,
                "Notes",
                "10GE wave, protected, maint window sat 02:00",
            )
            .expect("Notes")
            .with(&catalog, "Utilization", 0.0)
            .expect("Utilization")
            .with(&catalog, "ErrorRate", 1e-9)
            .expect("ErrorRate")
            .with(&catalog, "LatencyMs", 4.2)
            .expect("LatencyMs")
            .with(&catalog, "Vendor", "Acme Optical Systems")
            .expect("Vendor")
            .with(&catalog, "CircuitId", format!("CIRCUIT-{i:06}-A"))
            .expect("CircuitId");
        oids.push(txn.create(obj).expect("create").oid);
    }
    txn.commit().expect("commit");

    let meter = WireMeter::new();
    let gate = Arc::new(AtomicBool::new(true));
    let fleet: Vec<FleetViewer> = (0..viewers)
        .map(|v| {
            let factory = fleet_factory(&hub_slot, &meter, &gate);
            let client = DbClient::connect_supervised(
                factory,
                ReconnectPolicy::fast_test(),
                supervised_config(&format!("r5-viewer-{v}")),
            )
            .expect("viewer");
            let cache = Arc::new(DisplayCache::new());
            let display = Display::open(Arc::clone(&client), cache, "r5");
            let ids: Vec<DoId> = oids
                .iter()
                .map(|&oid| {
                    display
                        .add_object(&width_coded_link("Utilization"), vec![oid])
                        .expect("add_object")
                })
                .collect();
            FleetViewer {
                client,
                display,
                ids,
            }
        })
        .collect();

    // Steady state: every link written once, every viewer converged and
    // fully caught up on cursor acks (a lagging cursor would widen the
    // replay beyond the post-restart suffix).
    for &oid in &oids {
        let mut txn = updater.begin().expect("begin");
        txn.update(oid, |o| o.set(&catalog, "Utilization", 0.01))
            .expect("update");
        txn.commit().expect("commit");
    }
    let head = server.core().dlm().update_log().head();
    for viewer in &fleet {
        await_value(&viewer.display, *viewer.ids.last().expect("ids"), 0.01);
        while viewer
            .display
            .wait_and_process(Duration::from_millis(100))
            .expect("drain")
            > 0
        {}
        let deadline = Instant::now() + Duration::from_secs(10);
        while viewer.client.dlc().cursor() < head {
            assert!(
                Instant::now() < deadline,
                "viewer cursor never reached {head}"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // The crash: close the gate, park the next hub in the slot, kill
    // the process image, restart over the same directory.
    gate.store(false, Ordering::SeqCst);
    let hub2 = LocalHub::new();
    *hub_slot.lock().unwrap() = hub2.clone();
    server.hard_kill();
    drop(server);
    drop(updater);
    let server2 = Server::spawn_local(Arc::clone(&catalog), server_config(&dir, durable), &hub2)
        .expect("restarted server");

    // The world moves on before the fleet returns.
    let updater2 = DbClient::connect(
        Box::new(hub2.connect().expect("connect")),
        ClientConfig::named("r5-updater2"),
    )
    .expect("updater2");
    let mut finals = vec![0.01f64; changed];
    for (i, f) in finals.iter_mut().enumerate() {
        *f = 0.1 + 0.8 * (i as f64 + 1.0) / changed as f64;
        let mut txn = updater2.begin().expect("begin");
        txn.update(oids[i], |o| o.set(&catalog, "Utilization", *f))
            .expect("update");
        txn.commit().expect("commit");
    }

    // Recovery: meter only what follows the gate opening.
    meter.reset();
    let start = Instant::now();
    gate.store(true, Ordering::SeqCst);
    for viewer in &fleet {
        for (i, &want) in finals.iter().enumerate() {
            await_value(&viewer.display, viewer.ids[i], want);
        }
    }
    let convergence = start.elapsed();

    let mut cross_restart_replays = 0u64;
    let mut resync_objects = 0u64;
    for viewer in &fleet {
        let recovery = &viewer.client.conn_stats().recovery;
        cross_restart_replays += recovery.cross_restart_replays.get();
        resync_objects += recovery.resync_objects.get();
    }
    let sessions_recovered = server2.core().stats().sessions_recovered.get();
    let outcome = Outcome {
        bytes: meter.total_bytes(),
        frames: meter.frames_sent() + meter.frames_received(),
        convergence,
        cross_restart_replays,
        resync_objects,
        sessions_recovered,
    };
    drop(fleet);
    drop(server2);
    outcome
}
