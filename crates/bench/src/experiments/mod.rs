//! One module per experiment; see crate docs for the claim ↔ experiment
//! mapping.

pub mod a1_double_caching;
pub mod a2_dlc_dedup;
pub mod a3_polling;
pub mod a4_conflicts;
pub mod e0_architecture;
pub mod e1_responsiveness;
pub mod e2_client_overhead;
pub mod e3_server_overhead;
pub mod e4_propagation;
pub mod e5_memory;
pub mod obs;
pub mod r1_recovery;
pub mod r2_overload;
pub mod r3_delta;
pub mod r4_replay;
pub mod r5_restart;
pub mod r6_shards;

use crate::{Scale, Table};

/// Run every experiment in order.
pub fn run_all(scale: Scale) -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(e0_architecture::run(scale));
    out.extend(e1_responsiveness::run(scale));
    out.extend(e2_client_overhead::run(scale));
    out.extend(e3_server_overhead::run(scale));
    out.extend(e4_propagation::run(scale));
    out.extend(e5_memory::run(scale));
    out.extend(a1_double_caching::run(scale));
    out.extend(a2_dlc_dedup::run(scale));
    out.extend(a3_polling::run(scale));
    out.extend(a4_conflicts::run(scale));
    out.extend(r1_recovery::run(scale));
    out.extend(r2_overload::run(scale));
    out.extend(r3_delta::run(scale));
    out.extend(r4_replay::run(scale));
    out.extend(r5_restart::run(scale));
    // Last: R6 and OBS toggle the global trace sink on and off, so they
    // must not interleave with the timing-sensitive experiments above.
    out.extend(r6_shards::run(scale));
    out.extend(obs::run(scale));
    out
}
