//! A1 (ablation) — double caching vs database-cache-only interaction.
//!
//! § 3.2's argument for the second cache level: display objects are
//! pinned by the application, so zoom/pan-style interactions never
//! depend on the database cache, whose contents "are affected ... by
//! system workload and concurrency control considerations". We compare a
//! zoom-like interaction:
//!
//! * **with display cache** — geometry update over pinned display
//!   objects (no server contact, no DB-cache dependence);
//! * **without** — the pre-paper architecture: the interaction re-reads
//!   database objects and re-derives attributes each time, through a
//!   database cache that background noise keeps evicting.

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_common::metrics::LatencyRecorder;
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache};
use displaydb_viz::Rect;
use std::sync::Arc;

/// Run A1.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "A1 — ablation: double caching vs database-cache-only zoom latency",
        "Paper § 3.2: the display cache makes interaction latency predictable; without it, \
         evictions make simple actions 'unexpectedly delayed'. Zoom over 50 objects, ms.",
        &[
            "db cache",
            "mode",
            "zoom p50 (ms)",
            "zoom p95 (ms)",
            "zoom p99 (ms)",
            "server msgs per zoom",
        ],
    );
    let zooms = scale.pick(30usize, 100);
    let watched = 50usize;

    for (cache_label, cache_bytes) in [("large (16 MiB)", 16 << 20), ("tiny (8 KiB)", 8 << 10)] {
        let bed = Bed::plain("a1").unwrap();
        let cat = &bed.catalog;
        let viewer = bed.client_with_cache("viewer", cache_bytes).unwrap();
        // Background noise objects that thrash a small DB cache.
        let mut txn = viewer.begin().unwrap();
        let mut links = Vec::new();
        for _ in 0..watched {
            links.push(
                txn.create(
                    viewer
                        .new_object("Link")
                        .unwrap()
                        .with(cat, "Utilization", 0.5)
                        .unwrap()
                        .with(cat, "Notes", "operational baggage ".repeat(10))
                        .unwrap(),
                )
                .unwrap()
                .oid,
            );
        }
        let mut noise = Vec::new();
        for i in 0..200 {
            noise.push(
                txn.create(
                    viewer
                        .new_object("Node")
                        .unwrap()
                        .with(cat, "Name", format!("noise-{i}"))
                        .unwrap()
                        .with(cat, "Notes", "n".repeat(300))
                        .unwrap(),
                )
                .unwrap()
                .oid,
            );
        }
        txn.commit().unwrap();

        // --- with display cache -----------------------------------------
        {
            let cache = Arc::new(DisplayCache::new());
            let display = Display::open(Arc::clone(&viewer), cache, "zoomable");
            let class = color_coded_link("Utilization");
            let dos: Vec<_> = links
                .iter()
                .map(|&l| display.add_object(&class, vec![l]).unwrap())
                .collect();
            let lat = LatencyRecorder::new();
            let mut msgs = 0u64;
            for z in 0..zooms {
                // Interleave DB-cache pollution: a GUI does not control
                // what the rest of the application reads.
                for &n in noise.iter().skip(z % 100).take(20) {
                    viewer.read(n).unwrap();
                }
                let before = viewer.conn().stats().sent.get();
                lat.time(|| {
                    let scale_f = 1.0 + (z % 7) as f32 * 0.1;
                    for &d in &dos {
                        if let Some(obj) = display.object(d) {
                            let r = obj.geometry.unwrap_or(Rect::new(0.0, 0.0, 10.0, 10.0));
                            display.set_geometry(
                                d,
                                Rect::new(r.x, r.y, 10.0 * scale_f, 10.0 * scale_f),
                            );
                        }
                    }
                });
                msgs += viewer.conn().stats().sent.get() - before;
            }
            push_row(
                &mut t,
                cache_label,
                "display cache (paper)",
                &lat,
                msgs,
                zooms,
            );
            display.close().unwrap();
        }

        // --- without (re-read + re-derive per zoom) ----------------------
        {
            let class = color_coded_link("Utilization");
            let lat = LatencyRecorder::new();
            let mut msgs = 0u64;
            for z in 0..zooms {
                for &n in noise.iter().skip(z % 100).take(20) {
                    viewer.read(n).unwrap();
                }
                let before = viewer.conn().stats().sent.get();
                lat.time(|| {
                    // The pre-paper path: fetch the database objects
                    // (through the DB cache) and re-derive the GUI
                    // attributes for every interaction.
                    let objs = viewer.read_many(&links).unwrap();
                    for obj in objs.into_iter().flatten() {
                        let _ = class.derive(cat, &[obj]).unwrap();
                    }
                });
                msgs += viewer.conn().stats().sent.get() - before;
            }
            push_row(
                &mut t,
                cache_label,
                "database cache only",
                &lat,
                msgs,
                zooms,
            );
        }
    }
    vec![t]
}

fn push_row(
    t: &mut Table,
    cache_label: &str,
    mode: &str,
    lat: &LatencyRecorder,
    msgs: u64,
    zooms: usize,
) {
    let s = lat.summary().unwrap();
    t.row(vec![
        cache_label.to_string(),
        mode.to_string(),
        format!("{:.3}", s.p50.as_secs_f64() * 1e3),
        format!("{:.3}", s.p95.as_secs_f64() * 1e3),
        format!("{:.3}", s.p99.as_secs_f64() * 1e3),
        format!("{:.1}", msgs as f64 / zooms as f64),
    ]);
}
