//! E1 — interactive responsiveness under concurrency (§ 4.3).
//!
//! The paper: "we had up to 4 concurrent users performing simple
//! monitoring and updating functions \[plus\] a separate process that was
//! continuously modifying attribute values ... the application
//! performance was very satisfying, in terms of user interface
//! responsiveness."
//!
//! We sweep 1–8 users with a high-rate monitor process and report
//! per-action latency. The claim holds if monitor/zoom actions (display
//! cache interactions) stay in the sub-millisecond range and do not
//! degrade with user count, while only genuine database updates pay
//! server round-trips.

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_common::Oid;
use displaydb_display::DoId;
use displaydb_nms::{
    spawn_refresher, MonitorConfig, MonitorProcess, UserConfig, UserReport, UserSession,
};
use std::sync::Arc;
use std::time::Duration;

/// Run E1.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E1 — UI responsiveness, 1–8 concurrent users + monitor feed",
        "Paper: up to 4 users, high update rate, 'performance was very satisfying'. \
         monitor/zoom = display-cache actions; update = real transactions. Latencies in ms (p50/p95/p99).",
        &[
            "users",
            "monitor p50/p95/p99",
            "zoom p50/p95/p99",
            "update p50/p95/p99",
            "commits",
            "aborts",
            "feed commits",
        ],
    );
    let user_counts: &[usize] = match scale {
        Scale::Quick => &[1, 4],
        Scale::Full => &[1, 2, 4, 8],
    };
    let actions = scale.pick(40, 120);

    for &users in user_counts {
        let bed = Bed::new("e1", None, |c| {
            c.lock.wait_timeout = Duration::from_secs(5);
        })
        .unwrap();
        let topo = bed.topology(12, 24).unwrap();

        // The monitoring feed.
        let feed = bed.client("feed").unwrap();
        let monitor = MonitorProcess::spawn(
            feed,
            topo.links.clone(),
            MonitorConfig {
                rate_per_sec: 50.0,
                batch: 2,
                walk: 0.3,
                ..MonitorConfig::default()
            },
        );

        let mut handles = Vec::new();
        for u in 0..users {
            let bed_hub = bed.hub.clone();
            let catalog = Arc::clone(&bed.catalog);
            let topo = topo.clone();
            handles.push(std::thread::spawn(move || -> UserReport {
                let client = displaydb_client::DbClient::connect(
                    Box::new(bed_hub.connect().unwrap()),
                    displaydb_client::ClientConfig::named(format!("user-{u}")),
                )
                .unwrap();
                let cache = Arc::new(displaydb_display::DisplayCache::new());
                let map = displaydb_nms::NetworkMap::build(
                    &client,
                    &cache,
                    &topo,
                    displaydb_viz::Rect::new(0.0, 0.0, 400.0, 300.0),
                )
                .unwrap();
                let refresher = spawn_refresher(Arc::clone(&map.display));
                let objects: Vec<(Oid, DoId)> = topo
                    .links
                    .iter()
                    .copied()
                    .zip(map.link_dos.iter().copied())
                    .collect();
                let report = UserSession::new(
                    Arc::clone(&client),
                    Arc::clone(&map.display),
                    objects,
                    UserConfig {
                        actions,
                        update_fraction: 0.2,
                        zoom_fraction: 0.2,
                        think_time: Duration::from_millis(2),
                        seed: 1000 + u as u64,
                        ..UserConfig::default()
                    },
                )
                .run()
                .unwrap();
                refresher.stop();
                let _ = catalog;
                report
            }));
        }

        // Merge reports.
        let monitor_lat = displaydb_common::metrics::LatencyRecorder::new();
        let zoom_lat = displaydb_common::metrics::LatencyRecorder::new();
        let update_lat = displaydb_common::metrics::LatencyRecorder::new();
        let (mut commits, mut aborts) = (0u64, 0u64);
        for h in handles {
            let r = h.join().unwrap();
            merge(&r.monitor, &monitor_lat);
            merge(&r.zoom, &zoom_lat);
            merge(&r.update, &update_lat);
            commits += r.commits;
            aborts += r.aborts;
        }
        let feed_commits = monitor.commits();
        monitor.stop();

        let fmt = |r: &displaydb_common::metrics::LatencyRecorder| {
            r.summary()
                .map(|s| s.fmt_ms())
                .unwrap_or_else(|| "-".into())
        };
        t.row(vec![
            users.to_string(),
            fmt(&monitor_lat),
            fmt(&zoom_lat),
            fmt(&update_lat),
            commits.to_string(),
            aborts.to_string(),
            feed_commits.to_string(),
        ]);
    }
    vec![t]
}

fn merge(
    from: &displaydb_common::metrics::LatencyRecorder,
    into: &displaydb_common::metrics::LatencyRecorder,
) {
    into.merge_from(from);
}
