//! E3 — server-side display-lock overhead (§ 4.3).
//!
//! The paper: "our tests indicated no effect of the server overhead for
//! handling display locks. Extending the traditional locking mechanisms
//! to include display locks will only contribute a very small fraction
//! of overhead."
//!
//! Two measurements:
//! 1. raw lock-manager throughput (X acquire+release) while the table
//!    holds growing numbers of display locks;
//! 2. end-to-end server commit throughput with growing numbers of
//!    watching viewer clients (each commit fans out notifications).

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_common::{ClientId, Oid, TxnId};
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache};
use displaydb_lockmgr::{LockManager, LockManagerConfig, LockMode, Owner};
use std::sync::Arc;
use std::time::Instant;

/// Run E3.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![lock_table_overhead(scale), commit_fanout_overhead(scale)]
}

fn lock_table_overhead(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3.1 — lock manager throughput vs resident display locks",
        "Paper: display locks add 'a very small fraction of overhead'. X acquire+release ops/s \
         on objects carrying 0..N display locks.",
        &[
            "display locks on table",
            "holders per object",
            "X ops/s",
            "slowdown vs clean table",
        ],
    );
    let ops = scale.pick(20_000u64, 200_000);
    let objects = 1_000u64;

    let mut baseline_ops_per_sec = 0.0f64;
    for (display_locked, holders) in [(0u64, 0u64), (objects, 1), (objects, 4), (objects, 16)] {
        let lm = LockManager::new(LockManagerConfig::default());
        // Pre-populate display locks.
        for oid in 0..display_locked {
            for h in 0..holders {
                lm.acquire(
                    Owner::Client(ClientId::new(h + 1)),
                    Oid::new(oid),
                    LockMode::Display,
                )
                .unwrap();
            }
        }
        let start = Instant::now();
        for i in 0..ops {
            let owner = Owner::Txn(TxnId::new(i + 1));
            let oid = Oid::new(i % objects);
            lm.acquire(owner, oid, LockMode::Exclusive).unwrap();
            lm.release_all(owner);
        }
        let elapsed = start.elapsed();
        let per_sec = ops as f64 / elapsed.as_secs_f64();
        if display_locked == 0 {
            baseline_ops_per_sec = per_sec;
        }
        t.row(vec![
            display_locked.to_string(),
            holders.to_string(),
            format!("{per_sec:.0}"),
            format!("{:.1}%", 100.0 * (1.0 - per_sec / baseline_ops_per_sec)),
        ]);
    }
    t
}

fn commit_fanout_overhead(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3.2 — commit throughput: display locks vs plain caching clients",
        "Paper: 'no effect of the server overhead for handling display locks'. Row 2 isolates \
         the server's own fan-out work (within noise of row 1); rows 3-4 show the separate, \
         client-induced refresh load, which eager shipping reduces.",
        &[
            "caching clients",
            "display locks",
            "commits/s",
            "notifications sent",
            "display-lock overhead",
        ],
    );
    let commits = scale.pick(200usize, 400);
    let client_counts: &[usize] = match scale {
        Scale::Quick => &[4],
        Scale::Full => &[1, 4, 8],
    };

    #[derive(Clone, Copy, PartialEq)]
    enum Arm {
        /// Clients cache the objects but hold no display locks.
        Plain,
        /// Display locks held; notifications pushed but not consumed —
        /// isolates the server's own fan-out work (the paper's claim).
        LocksOnly,
        /// Full GUI behaviour, lazy protocol: every notification triggers
        /// a refresh read back at the server.
        LazyRefresh,
        /// Full GUI behaviour, eager shipping: refresh without reads.
        EagerRefresh,
    }

    for &clients in client_counts {
        let mut baseline = 0.0f64;
        for arm in [
            Arm::Plain,
            Arm::LocksOnly,
            Arm::LazyRefresh,
            Arm::EagerRefresh,
        ] {
            // Asynchronous invalidations: the commit path's own work is
            // what we are measuring, not the coherence ack round-trip
            // (identical across arms for equal read behaviour).
            let bed = Bed::new("e3", None, |c| {
                c.sync_callbacks = false;
                c.dlm.eager_shipping = arm == Arm::EagerRefresh;
            })
            .unwrap();
            let cat = &bed.catalog;
            let updater = bed.client("updater").unwrap();

            let mut txn = updater.begin().unwrap();
            let mut links = Vec::new();
            for _ in 0..10 {
                links.push(
                    txn.create(
                        updater
                            .new_object("Link")
                            .unwrap()
                            .with(cat, "Utilization", 0.5)
                            .unwrap(),
                    )
                    .unwrap()
                    .oid,
                );
            }
            txn.commit().unwrap();

            let mut keep: Vec<Box<dyn std::any::Any>> = Vec::new();
            for v in 0..clients {
                let viewer = bed.client(&format!("viewer-{v}")).unwrap();
                for &link in &links {
                    viewer.read(link).unwrap();
                }
                if arm != Arm::Plain {
                    let cache = Arc::new(DisplayCache::new());
                    let display = Display::open(Arc::clone(&viewer), cache, format!("v{v}"));
                    let class = color_coded_link("Utilization");
                    for &link in &links {
                        display.add_object(&class, vec![link]).unwrap();
                    }
                    if matches!(arm, Arm::LazyRefresh | Arm::EagerRefresh) {
                        let refresher = displaydb_nms::spawn_refresher(Arc::clone(&display));
                        keep.push(Box::new(refresher));
                    }
                    keep.push(Box::new((Arc::clone(&viewer), display)));
                } else {
                    keep.push(Box::new(viewer));
                }
            }

            let start = Instant::now();
            for i in 0..commits {
                let mut txn = updater.begin().unwrap();
                txn.update(links[i % links.len()], |o| {
                    o.set(cat, "Utilization", (i % 100) as f64 / 100.0)
                })
                .unwrap();
                txn.commit().unwrap();
            }
            let elapsed = start.elapsed();
            let per_sec = commits as f64 / elapsed.as_secs_f64();
            if arm == Arm::Plain {
                baseline = per_sec;
            }
            t.row(vec![
                clients.to_string(),
                match arm {
                    Arm::Plain => "none (cache only)",
                    Arm::LocksOnly => "held, not consumed (server fan-out cost)",
                    Arm::LazyRefresh => "held + lazy refresh reads",
                    Arm::EagerRefresh => "held + eager refresh (no reads)",
                }
                .to_string(),
                format!("{per_sec:.0}"),
                bed.server
                    .core()
                    .dlm()
                    .stats()
                    .notifications
                    .get()
                    .to_string(),
                format!("{:.1}%", 100.0 * (1.0 - per_sec / baseline)),
            ]);
        }
    }
    t
}
