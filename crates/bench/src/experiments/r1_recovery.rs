//! R1 — connection supervision & session recovery (DESIGN.md § 8).
//!
//! Not a numbered paper claim, but a paper-era implication: the NMS
//! console of § 4 ran for days against a campus network, which means
//! surviving transport blips and server restarts. This experiment
//! drives repeated outages through the client supervisor and reports
//! the recovery counters ([`displaydb_common::metrics::RecoveryStats`])
//! together with wall-clock time-to-recovery:
//!
//! * **transport blip** — the channel dies but the server keeps the
//!   session's resume token; the supervisor reconnects and *resumes*
//!   (same identity, epoch + 1), resyncing only what changed.
//! * **server restart** — the server process is replaced (same data
//!   directory, WAL recovery); the resume token is refused, the client
//!   gets a fresh session, and its whole cached manifest is reported
//!   stale.

use crate::fixture::scratch_dir;
use crate::report::{Metrics, Table};
use crate::Scale;
use displaydb_client::{ChannelFactory, ClientConfig, DbClient};
use displaydb_common::backoff::ReconnectPolicy;
use displaydb_common::DbResult;
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache};
use displaydb_nms::nms_catalog;
use displaydb_server::{Server, ServerConfig};
use displaydb_wire::{Channel, FaultPlan, FaultyChannel, LocalHub};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run R1.
pub fn run(scale: Scale) -> Vec<Table> {
    run_with_metrics(scale).0
}

/// Run R1 and also return the machine-readable metrics for the CI gate.
pub fn run_with_metrics(scale: Scale) -> (Vec<Table>, Metrics) {
    let (table, blip_mean, restart_mean) = recovery_counters(scale);
    let mut m = Metrics::new("r1");
    m.put("blip_recovery_ms", blip_mean.as_secs_f64() * 1e3);
    m.put("restart_recovery_ms", restart_mean.as_secs_f64() * 1e3);
    (vec![table], m)
}

fn supervised_config(name: &str) -> ClientConfig {
    ClientConfig {
        name: name.into(),
        cache_bytes: 1 << 20,
        // Short RPC timeout so a dead-but-accepting endpoint fails fast
        // and the supervisor moves on to the next attempt.
        call_timeout: Duration::from_millis(300),
        disk_cache: None,
    }
}

/// Build a display over `n` freshly created links so that recovery has
/// display locks to replay and pinned DOs to stale-mark.
fn build_display(client: &Arc<DbClient>, n: usize) -> DbResult<Arc<Display>> {
    let mut oids = Vec::with_capacity(n);
    let mut txn = client.begin()?;
    for _ in 0..n {
        oids.push(txn.create(client.new_object("Link")?)?.oid);
    }
    txn.commit()?;
    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(client), cache, "r1");
    for oid in oids {
        display.add_object(&color_coded_link("Utilization"), vec![oid])?;
    }
    Ok(display)
}

/// Block until the supervisor has brought `client` back, returning the
/// elapsed recovery time.
fn await_recovery(client: &DbClient, started: Instant) -> Duration {
    let deadline = Instant::now() + Duration::from_secs(30);
    while client.ping().is_err() {
        assert!(Instant::now() < deadline, "supervisor never recovered");
        std::thread::sleep(Duration::from_millis(5));
    }
    started.elapsed()
}

fn recovery_counters(scale: Scale) -> (Table, Duration, Duration) {
    let mut t = Table::new(
        "R1 — supervised recovery: counters and time-to-recovery",
        "Repeated outages under DbClient::connect_supervised. Transport blips resume the \
         session (epoch bump, targeted resync); server restarts refuse the token (fresh \
         session, whole manifest stale). Counters are RecoveryStats totals over all cycles.",
        &[
            "scenario",
            "outages",
            "attempts",
            "reconnects ok",
            "sessions resumed",
            "resync objects",
            "stale marks",
            "mean recovery (ms)",
        ],
    );
    let cycles = scale.pick(3usize, 10);
    let dos = scale.pick(8usize, 32);

    let (blip_row, blip_mean) = transport_blips(cycles, dos);
    let (restart_row, restart_mean) = server_restarts(cycles, dos);
    t.row(blip_row);
    t.row(restart_row);
    (t, blip_mean, restart_mean)
}

/// Kill the live channel with fault injection while the server stays up.
fn transport_blips(cycles: usize, dos: usize) -> (Vec<String>, Duration) {
    let catalog = Arc::new(nms_catalog());
    let hub = LocalHub::new();
    let _server = Server::spawn_local(
        Arc::clone(&catalog),
        ServerConfig::new(scratch_dir("r1-blip")),
        &hub,
    )
    .expect("server");

    // Every connection is wrapped in a fresh fault plan; the latest plan
    // is kept so each cycle can kill the *current* channel.
    let plan_slot: Arc<Mutex<Arc<FaultPlan>>> = Arc::new(Mutex::new(Arc::new(FaultPlan::new())));
    let factory: ChannelFactory = {
        let hub = hub.clone();
        let slot = Arc::clone(&plan_slot);
        Arc::new(move || {
            let plan = Arc::new(FaultPlan::new());
            *slot.lock() = Arc::clone(&plan);
            let inner: Box<dyn Channel> = Box::new(hub.connect()?);
            Ok(Box::new(FaultyChannel::wrap(inner, plan)) as Box<dyn Channel>)
        })
    };
    let client = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        supervised_config("r1-blip"),
    )
    .expect("client");
    let display = build_display(&client, dos).expect("display");

    let mut total = Duration::ZERO;
    for _ in 0..cycles {
        let started = Instant::now();
        plan_slot.lock().kill_now();
        total += await_recovery(&client, started);
        // Drain the Degraded/resync/Restored cycle the outage produced.
        while display
            .wait_and_process(Duration::from_millis(100))
            .unwrap()
            > 0
        {}
    }
    let recovery = client.conn_stats().recovery.clone();
    let mean = total / cycles as u32;
    (
        row("transport blip (resume)", cycles, &recovery, mean),
        mean,
    )
}

/// Replace the server process over the same data directory.
fn server_restarts(cycles: usize, dos: usize) -> (Vec<String>, Duration) {
    let catalog = Arc::new(nms_catalog());
    let dir = scratch_dir("r1-restart");
    let durable = |dir: &std::path::Path| {
        let mut c = ServerConfig::new(dir);
        c.sync_commits = true;
        c
    };
    let hub_slot = Arc::new(Mutex::new(LocalHub::new()));
    let hub0 = hub_slot.lock().clone();
    let mut server =
        Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub0).expect("server");
    let factory: ChannelFactory = {
        let slot = Arc::clone(&hub_slot);
        Arc::new(move || {
            let channel = slot.lock().connect()?;
            Ok(Box::new(channel) as Box<dyn Channel>)
        })
    };
    let client = DbClient::connect_supervised(
        factory,
        ReconnectPolicy::fast_test(),
        supervised_config("r1-restart"),
    )
    .expect("client");
    let display = build_display(&client, dos).expect("display");

    let mut total = Duration::ZERO;
    for _ in 0..cycles {
        let hub = LocalHub::new();
        *hub_slot.lock() = hub.clone();
        let started = Instant::now();
        server.shutdown();
        server = Server::spawn_local(Arc::clone(&catalog), durable(&dir), &hub).expect("respawn");
        total += await_recovery(&client, started);
        while display
            .wait_and_process(Duration::from_millis(100))
            .unwrap()
            > 0
        {}
    }
    let recovery = client.conn_stats().recovery.clone();
    let mean = total / cycles as u32;
    (
        row("server restart (fresh session)", cycles, &recovery, mean),
        mean,
    )
}

fn row(
    scenario: &str,
    cycles: usize,
    recovery: &displaydb_common::metrics::RecoveryStats,
    mean: Duration,
) -> Vec<String> {
    vec![
        scenario.to_string(),
        cycles.to_string(),
        recovery.reconnect_attempts.get().to_string(),
        recovery.reconnects_ok.get().to_string(),
        recovery.sessions_resumed.get().to_string(),
        recovery.resync_objects.get().to_string(),
        recovery.stale_marks.get().to_string(),
        crate::report::ms(mean),
    ]
}
