//! E0 — the paper's figures as running code.
//!
//! * Figure 1: the `ColorCodedLink` / `WidthCodedLink` display classes
//!   over a `Link` database class.
//! * Figure 2: the four-level memory hierarchy (server disk → server
//!   buffer → client database cache → client display cache).
//! * Figure 3: the DLM/DLC architecture — exercised in both the
//!   integrated and standalone-agent deployments.

use crate::fixture::Bed;
use crate::{Scale, Table};
use displaydb_client::{ClientConfig, DbClient};
use displaydb_display::schema::{color_coded_link, width_coded_link};
use displaydb_display::{Display, DisplayCache};
use displaydb_dlm::{DlmAgent, DlmConfig, DlmCore};
use displaydb_schema::Value;
use displaydb_wire::LocalHub;
use std::sync::Arc;
use std::time::Duration;

/// Run E0.
pub fn run(scale: Scale) -> Vec<Table> {
    vec![figure1(), figure2(scale), figure3()]
}

fn figure1() -> Table {
    let mut t = Table::new(
        "E0.1 — Figure 1: display classes over the Link class",
        "Display attributes derived from Utilization; database schema untouched by GUI concerns.",
        &[
            "display class",
            "derived attrs",
            "utilization",
            "derived value",
        ],
    );
    let bed = Bed::plain("e0-fig1").unwrap();
    let client = bed.client("fig1").unwrap();
    let cat = &bed.catalog;

    let mut txn = client.begin().unwrap();
    let link = txn
        .create(
            client
                .new_object("Link")
                .unwrap()
                .with(cat, "Utilization", 0.0)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    for util in [0.15f64, 0.55, 0.92] {
        let mut txn = client.begin().unwrap();
        txn.update(link.oid, |o| o.set(cat, "Utilization", util))
            .unwrap();
        txn.commit().unwrap();

        for class in [
            color_coded_link("Utilization"),
            width_coded_link("Utilization"),
        ] {
            let obj = client.read_fresh(link.oid).unwrap();
            let attrs = class.derive(cat, &[obj]).unwrap();
            let derived = attrs
                .iter()
                .find(|(n, _)| n == "Color" || n == "Width")
                .map(|(n, v)| match v {
                    Value::Int(rgb) => format!("{n}=#{rgb:06x}"),
                    Value::Float(w) => format!("{n}={w:.1}px"),
                    other => format!("{n}={other:?}"),
                })
                .unwrap();
            t.row(vec![
                class.name().to_string(),
                class.attr_names().join(","),
                format!("{util:.2}"),
                derived,
            ]);
        }
    }
    t
}

fn figure2(scale: Scale) -> Table {
    let mut t = Table::new(
        "E0.2 — Figure 2: the four-level memory hierarchy",
        "Occupancy of every level after building a live display over a topology.",
        &["level", "content", "objects/pages", "bytes (approx)"],
    );
    let bed = Bed::plain("e0-fig2").unwrap();
    let links = scale.pick(60, 300);
    let topo = bed.topology(links / 3, links).unwrap();
    let client = bed.client("operator").unwrap();
    let (cache, map) = bed.map(&client, &topo).unwrap();

    // Level 4: display cache.
    t.row(vec![
        "4 (new): client display cache".into(),
        "display objects (projected + derived attrs)".into(),
        cache.len().to_string(),
        cache.used_bytes().to_string(),
    ]);
    // Level 3: client database cache.
    t.row(vec![
        "3: client database cache".into(),
        "whole database objects".into(),
        client.cache().len().to_string(),
        client.cache().used_bytes().to_string(),
    ]);
    // Level 2: server buffer pool.
    let pool = bed.server.core().store().pool();
    t.row(vec![
        "2: server buffer pool".into(),
        "8 KiB pages".into(),
        pool.resident_pages().to_string(),
        (pool.resident_pages() * displaydb_storage::PAGE_SIZE).to_string(),
    ]);
    // Level 1: server disk.
    let disk_pages = pool.disk().page_count();
    t.row(vec![
        "1: server disk".into(),
        "heap file + WAL".into(),
        disk_pages.to_string(),
        (disk_pages as usize * displaydb_storage::PAGE_SIZE).to_string(),
    ]);
    let _ = map;
    t
}

fn figure3() -> Table {
    let mut t = Table::new(
        "E0.3 — Figure 3: DLM deployments",
        "The same update notified through the integrated lock manager and the standalone agent.",
        &[
            "deployment",
            "display locks",
            "update → notification",
            "notifications delivered",
        ],
    );

    // Integrated.
    {
        let bed = Bed::plain("e0-fig3-int").unwrap();
        let viewer = bed.client("viewer").unwrap();
        let updater = bed.client("updater").unwrap();
        let delivered = one_update_roundtrip(&bed, &viewer, &updater);
        t.row(vec![
            "integrated (lock manager)".into(),
            bed.server.core().dlm().locked_objects().to_string(),
            if delivered > 0 {
                "ok".into()
            } else {
                "FAILED".into()
            },
            bed.server
                .core()
                .dlm()
                .stats()
                .notifications
                .get()
                .to_string(),
        ]);
    }

    // Agent (paper's deployment).
    {
        let bed = Bed::plain("e0-fig3-agent").unwrap();
        let dlm_hub = LocalHub::new();
        let agent = DlmAgent::spawn(
            Arc::new(DlmCore::new(DlmConfig::default())),
            Box::new(dlm_hub.clone()),
        );
        let connect = |name: &str| {
            DbClient::connect_with_agent(
                Box::new(bed.hub.connect().unwrap()),
                Box::new(dlm_hub.connect().unwrap()),
                ClientConfig::named(name),
            )
            .unwrap()
        };
        let viewer = connect("viewer");
        let updater = connect("updater");
        let delivered = one_update_roundtrip(&bed, &viewer, &updater);
        t.row(vec![
            "agent (paper § 4.1)".into(),
            agent.core().locked_objects().to_string(),
            if delivered > 0 {
                "ok".into()
            } else {
                "FAILED".into()
            },
            agent.core().stats().notifications.get().to_string(),
        ]);
    }
    t
}

/// Create a link, watch it, update it, wait for the refresh; returns the
/// number of events the display handled.
fn one_update_roundtrip(bed: &Bed, viewer: &Arc<DbClient>, updater: &Arc<DbClient>) -> u64 {
    let cat = &bed.catalog;
    let mut txn = updater.begin().unwrap();
    let link = txn
        .create(
            updater
                .new_object("Link")
                .unwrap()
                .with(cat, "Utilization", 0.1)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(viewer), cache, "fig3");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();
    std::thread::sleep(Duration::from_millis(100)); // agent lock settle

    let mut txn = updater.begin().unwrap();
    txn.update(link.oid, |o| o.set(cat, "Utilization", 0.9))
        .unwrap();
    txn.commit().unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        display
            .wait_and_process(Duration::from_millis(100))
            .unwrap();
        if display.object(do_id).unwrap().attr("Utilization") == Some(&Value::Float(0.9)) {
            return display.stats().events.get();
        }
    }
    0
}
