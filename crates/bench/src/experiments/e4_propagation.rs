//! E4 — update propagation time and message counts (§ 4.3).
//!
//! The paper: "the actual time between an update commit to the database
//! and its appearance on all relevant displays was in the order of 1 to
//! 2 seconds ... this propagation time includes the exchange of at least
//! three network messages: the DLM notification to the client, the
//! client request to the database server for the updated objects, and
//! the database server reply ... [eager shipping] could eliminate two of
//! the three messages."
//!
//! We run the pipeline over a latency-simulated network and measure
//! commit→screen time. The lazy protocol should cost ≈3 one-way
//! latencies, eager ≈1 — and with the paper-era LAN latency (~400 ms
//! effective per message, once mid-90s serialization and software stack
//! costs are folded in), the lazy path lands in the paper's 1–2 s band.

use crate::fixture::Bed;
use crate::report::Table;
use crate::Scale;
use displaydb_common::metrics::LatencyRecorder;
use displaydb_display::schema::color_coded_link;
use displaydb_display::{Display, DisplayCache};
use displaydb_dlm::DlmConfig;
use displaydb_schema::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run E4.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E4 — commit→display propagation vs network latency and protocol",
        "Paper: 1–2 s propagation = 3 messages (notify, read request, read reply); eager \
         shipping removes 2 of 3. Expected ≈ k×L + processing, k=3 lazy / k=1 eager.",
        &[
            "one-way latency L",
            "protocol",
            "propagation p50 (ms)",
            "p95 (ms)",
            "expected k*L (ms)",
            "measured k",
        ],
    );
    let rounds = scale.pick(10usize, 25);
    let latencies: Vec<Duration> = match scale {
        Scale::Quick => vec![Duration::from_millis(5), Duration::from_millis(20)],
        Scale::Full => vec![
            Duration::from_millis(1),
            Duration::from_millis(5),
            Duration::from_millis(20),
            // Paper-era effective per-message cost: reproduces the 1–2 s
            // observation.
            Duration::from_millis(400),
        ],
    };

    for &latency in &latencies {
        // Fewer rounds at painful latencies.
        let rounds = if latency >= Duration::from_millis(100) {
            4
        } else {
            rounds
        };
        for eager in [false, true] {
            let recorder = measure(latency, eager, rounds);
            let summary = recorder.summary().expect("samples");
            let k_expected = if eager { 1.0 } else { 3.0 };
            let measured_k = summary.p50.as_secs_f64() / latency.as_secs_f64();
            t.row(vec![
                format!("{} ms", latency.as_millis()),
                if eager {
                    "eager shipping (1 msg)".into()
                } else {
                    "post-commit lazy (3 msgs)".into()
                },
                format!("{:.1}", summary.p50.as_secs_f64() * 1e3),
                format!("{:.1}", summary.p95.as_secs_f64() * 1e3),
                format!("{:.0}", k_expected * latency.as_secs_f64() * 1e3),
                format!("{measured_k:.2}"),
            ]);
        }
    }
    vec![t]
}

/// Measure commit→refresh latency over `rounds` updates.
fn measure(latency: Duration, eager: bool, rounds: usize) -> LatencyRecorder {
    // Async callbacks: the updater's commit must not wait for the
    // viewer's invalidation ack, otherwise the measurement would start
    // after part of the propagation already happened. (The paper's
    // ObjectStore behaved the same: commit returns, then the DLM notifies.)
    let bed = Bed::new("e4", Some(latency), |c| {
        c.dlm = DlmConfig {
            eager_shipping: eager,
            ..DlmConfig::default()
        };
        c.sync_callbacks = false;
    })
    .unwrap();
    let cat = &bed.catalog;
    let viewer = bed.client("viewer").unwrap();
    let updater = bed.client("updater").unwrap();

    let mut txn = updater.begin().unwrap();
    let link = txn
        .create(
            updater
                .new_object("Link")
                .unwrap()
                .with(cat, "Utilization", 0.0)
                .unwrap(),
        )
        .unwrap();
    txn.commit().unwrap();

    let cache = Arc::new(DisplayCache::new());
    let display = Display::open(Arc::clone(&viewer), cache, "e4");
    let do_id = display
        .add_object(&color_coded_link("Utilization"), vec![link.oid])
        .unwrap();

    let recorder = LatencyRecorder::new();
    for i in 1..=rounds {
        let target = i as f64 / rounds as f64;
        let mut txn = updater.begin().unwrap();
        txn.update(link.oid, |o| o.set(cat, "Utilization", target))
            .unwrap();
        // The paper measures from the commit *at the database* to the
        // display refresh. The commit request spends one latency hop on
        // the wire before the server commits, so start the clock at
        // submission and subtract that hop afterwards.
        let submitted = Instant::now();
        txn.commit().unwrap();
        let deadline = submitted + Duration::from_secs(30);
        loop {
            display.wait_and_process(Duration::from_millis(1)).unwrap();
            if display.object(do_id).unwrap().attr("Utilization") == Some(&Value::Float(target)) {
                recorder.record(submitted.elapsed().saturating_sub(latency));
                break;
            }
            assert!(Instant::now() < deadline, "propagation stalled");
        }
    }
    recorder
}
