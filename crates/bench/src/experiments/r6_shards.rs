//! R6 — sharded DLM fan-out scaling (DESIGN.md § 16).
//!
//! The single-table DLM serializes a commit's whole notification path:
//! one interest intersect under one table lock, then one outbox writer
//! paying the wire latency for every queued event, one after another.
//! Partitioning by OID hash gives every shard its own interest table,
//! update log, and per-client outbox — so one commit's fan-out is
//! intersected shard-parallel and, more importantly, *drained* by as
//! many concurrent outbox writers as there are shards.
//!
//! This experiment drives the in-process [`ShardedDlm`] directly with a
//! latency-modeled delivery sink (every event costs a fixed simulated
//! wire delay, paid per event so outbox batching cannot amortize it
//! away — the model is a per-notification network round, not a frame).
//! The same hash-balanced OID set and commit schedule run against 1
//! shard and 8 shards; tracing is on, so the per-stage OBS breakdown
//! (DESIGN.md § 12) attributes where each event's latency went.
//!
//! Claim: 8 shards sustain ≥ 3× the notification throughput of the
//! single-table DLM at no worse delivery p95, and the share of delivery
//! latency spent upstream of the wire (intersect + outbox queueing)
//! drops — the sleeping wire, not the partitioned fan-out, is what's
//! left.

use crate::report::{self, Metrics, Table};
use crate::Scale;
use displaydb_common::trace::{self, Stage, StageBreakdown, TraceEvent};
use displaydb_common::{ClientId, DbResult, Oid};
use displaydb_dlm::{DlmConfig, DlmEvent, EventSink, OutboxSink, ShardMap, ShardedDlm, UpdateInfo};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Run R6.
pub fn run(scale: Scale) -> Vec<Table> {
    run_with_metrics(scale).0
}

/// Run R6 and also return the machine-readable metrics for the CI gate.
pub fn run_with_metrics(scale: Scale) -> (Vec<Table>, Metrics) {
    let per_shard = scale.pick(4usize, 8);
    let rounds = scale.pick(30usize, 120);
    let wire_latency = Duration::from_micros(200);

    // A hash-balanced OID set: exactly `per_shard` OIDs landing on each
    // of the 8-way map's shards, so the 8-shard run divides every
    // commit's fan-out evenly and the comparison measures partitioning,
    // not hash luck. The 1-shard run routes the same set to shard 0.
    let map8 = ShardMap::new(8);
    let mut buckets = [0usize; 8];
    let mut oids: Vec<Oid> = Vec::with_capacity(per_shard * 8);
    let mut raw = 1u64;
    while oids.len() < per_shard * 8 {
        let oid = Oid::new(raw);
        raw += 1;
        let s = map8.shard_of(oid) as usize;
        if buckets[s] < per_shard {
            buckets[s] += 1;
            oids.push(oid);
        }
    }

    // Tracing on for both scenarios (ring sized for the full run), then
    // restored so later experiments in the same process run at
    // disabled-path cost.
    trace::enable(1 << 16);
    trace::clear();
    let single = fan_out(1, &oids, rounds, wire_latency);
    trace::clear();
    let sharded = fan_out(8, &oids, rounds, wire_latency);
    trace::disable();
    trace::clear();

    let speedup = sharded.throughput / single.throughput;
    let batch = oids.len();
    let mut t = Table::new(
        "R6 — sharded DLM: notification fan-out scaling",
        format!(
            "{rounds} commits of {batch} updates each (hash-balanced, {per_shard} per \
             8-way shard), fanned out to a viewer whose delivery sink pays a simulated \
             {}µs wire latency per event. Identical workload against 1 shard and 8; \
             per-shard outbox writers overlap the wire waits. Upstream share is the \
             fraction of mean delivery latency spent before the outbox writer handed \
             the event to the wire (intersect + outbox queueing).",
            wire_latency.as_micros()
        ),
        &[
            "scenario",
            "events",
            "elapsed (ms)",
            "events/s",
            "vs 1 shard",
            "p50",
            "p95",
            "upstream share",
        ],
    );
    for (name, o) in [("1 shard (single table)", &single), ("8 shards", &sharded)] {
        t.row(vec![
            name.into(),
            o.events.to_string(),
            report::ms(o.elapsed),
            format!("{:.0}", o.throughput),
            format!("{:.2}x", o.throughput / single.throughput),
            report::ms(o.p50),
            report::ms(o.p95),
            format!("{:.1}%", o.upstream_share * 100.0),
        ]);
    }

    let mut routed = Table::new(
        "R6 — per-shard routing (8-shard run)",
        "Updates routed to each shard by the OID hash; the balanced OID set \
         divides every commit evenly.",
        &["shard", "updates routed"],
    );
    for (s, n) in sharded.per_shard.iter().enumerate() {
        routed.row(vec![format!("shard {s}"), n.to_string()]);
    }

    let mut tables = vec![t, routed];
    for (name, o) in [("1 shard", &single), ("8 shards", &sharded)] {
        let mut st = Table::new(
            format!("R6 — per-stage breakdown, {name}"),
            "Consecutive-stage gaps of every traced event (OBS machinery, \
             DESIGN.md § 12). The commit → intersect and outbox gaps shrink \
             with shards; the simulated wire cost per event does not.",
            &["stage gap", "traces", "p50 (ms)", "p95 (ms)"],
        );
        for ((from, to), rec) in &o.breakdown.pairs {
            if let Some(s) = rec.summary() {
                st.row(vec![
                    format!("{} -> {}", from.name(), to.name()),
                    s.count.to_string(),
                    report::ms(s.p50),
                    report::ms(s.p95),
                ]);
            }
        }
        tables.push(st);
    }

    let mut m = Metrics::new("r6");
    m.put("rounds", rounds as f64);
    m.put("batch", batch as f64);
    m.put("events", sharded.events as f64);
    m.put("wire_latency_us", wire_latency.as_micros() as f64);
    m.put("shard1_throughput", single.throughput);
    m.put("shard8_throughput", sharded.throughput);
    m.put("notify_speedup_x", speedup);
    m.put("shard1_p95_ms", single.p95.as_secs_f64() * 1e3);
    m.put("shard8_p95_ms", sharded.p95.as_secs_f64() * 1e3);
    m.put("shard1_upstream_share", single.upstream_share);
    m.put("shard8_upstream_share", sharded.upstream_share);
    (tables, m)
}

struct Outcome {
    events: u64,
    elapsed: Duration,
    /// Delivered events per second over the whole run.
    throughput: f64,
    p50: Duration,
    p95: Duration,
    /// Mean (commit → outbox-drain) over mean (commit → delivery).
    upstream_share: f64,
    breakdown: StageBreakdown,
    /// Updates routed per shard (len = shard count).
    per_shard: Vec<u64>,
}

/// The latency-modeled delivery sink: every event — including every
/// event inside a `Batch` — costs one simulated wire round before it
/// counts as delivered. Sleeping (not spinning) is what lets per-shard
/// writer threads overlap on any core count.
struct SleepySink {
    latency: Duration,
    delivered: Arc<AtomicU64>,
    deliveries: Arc<Mutex<Vec<(u64, Instant)>>>,
}

impl SleepySink {
    fn consume(&self, event: DlmEvent) {
        match event {
            DlmEvent::Batch(events) => {
                for e in events {
                    self.consume(e);
                }
            }
            DlmEvent::Updated(info) => {
                std::thread::sleep(self.latency);
                trace::record(info.trace, Stage::DlcApply);
                self.deliveries
                    .lock()
                    .unwrap()
                    .push((info.trace, Instant::now()));
                self.delivered.fetch_add(1, Ordering::Release);
            }
            // Control events (acks, markers) are free: the model only
            // charges for object notifications.
            _ => {}
        }
    }
}

impl EventSink for SleepySink {
    fn deliver(&self, event: DlmEvent) -> DbResult<()> {
        self.consume(event);
        Ok(())
    }
}

/// One scenario: the full commit schedule against a `shards`-way DLM.
fn fan_out(shards: usize, oids: &[Oid], rounds: usize, wire_latency: Duration) -> Outcome {
    let mut config = DlmConfig {
        shards,
        ..DlmConfig::default()
    };
    // Overflow sweeps are R2's subject, not this one's: keep every
    // event on the normal path.
    config.overload.outbox_high_water = 4096;
    let dlm = ShardedDlm::new(config);
    let client = ClientId::new(1);

    let delivered = Arc::new(AtomicU64::new(0));
    let deliveries: Arc<Mutex<Vec<(u64, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let sinks: Vec<Arc<dyn EventSink>> = (0..shards)
        .map(|_| {
            let inner: Arc<dyn EventSink> = Arc::new(SleepySink {
                latency: wire_latency,
                delivered: Arc::clone(&delivered),
                deliveries: Arc::clone(&deliveries),
            });
            let outbox: Arc<dyn EventSink> =
                OutboxSink::wrap(inner, config.overload, dlm.stats().overload.clone());
            outbox
        })
        .collect();
    dlm.register_client_sinks(client, sinks);
    dlm.lock(client, oids);

    let batch = oids.len();
    let mut submit: Vec<Instant> = Vec::with_capacity(rounds * batch);
    let start = Instant::now();
    for round in 0..rounds {
        let updates: Vec<UpdateInfo> = oids
            .iter()
            .enumerate()
            .map(|(i, &oid)| {
                let trace_id = (round * batch + i + 1) as u64;
                trace::record(trace_id, Stage::Commit);
                let mut u = UpdateInfo::lazy(oid);
                u.trace = trace_id;
                u
            })
            .collect();
        let now = Instant::now();
        submit.extend(std::iter::repeat(now).take(batch));
        dlm.notify_committed_txn(None, &updates, (round + 1) as u64)
            .expect("fan-out");
        // Closed-loop: wait for the commit to fully deliver before the
        // next, so queue depth (and thus p95) is bounded by one
        // commit's fan-out in both scenarios.
        let want = ((round + 1) * batch) as u64;
        while delivered.load(Ordering::Acquire) < want {
            std::thread::sleep(Duration::from_micros(20));
        }
    }
    let elapsed = start.elapsed();
    let events = delivered.load(Ordering::Acquire);

    let mut latencies: Vec<Duration> = deliveries
        .lock()
        .unwrap()
        .iter()
        .map(|&(trace, at)| at.duration_since(submit[(trace - 1) as usize]))
        .collect();
    latencies.sort_unstable();
    let pick = |q: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
        latencies[idx]
    };
    let (p50, p95) = (pick(0.50), pick(0.95));

    // Per-trace stage walk out of the ring: the upstream share is the
    // time from commit to the outbox writer's drain (everything before
    // the simulated wire), over the full commit → delivery span.
    // (first commit, first outbox-drain, last dlc-apply) timestamps.
    type StageSlots = (Option<u64>, Option<u64>, Option<u64>);
    let trace_events = trace::events();
    let mut stages: HashMap<u64, StageSlots> = HashMap::new();
    for TraceEvent { trace, stage, t_ns } in &trace_events {
        let slot = stages.entry(*trace).or_default();
        match stage {
            Stage::Commit => slot.0 = Some(slot.0.map_or(*t_ns, |t: u64| t.min(*t_ns))),
            Stage::OutboxDrain => slot.1 = Some(slot.1.map_or(*t_ns, |t: u64| t.min(*t_ns))),
            Stage::DlcApply => slot.2 = Some(slot.2.map_or(*t_ns, |t: u64| t.max(*t_ns))),
            _ => {}
        }
    }
    let (mut upstream_ns, mut total_ns) = (0u128, 0u128);
    for (commit, drain, apply) in stages.values() {
        if let (Some(c), Some(d), Some(a)) = (commit, drain, apply) {
            upstream_ns += u128::from(d.saturating_sub(*c));
            total_ns += u128::from(a.saturating_sub(*c));
        }
    }
    let upstream_share = if total_ns == 0 {
        0.0
    } else {
        upstream_ns as f64 / total_ns as f64
    };
    let breakdown = StageBreakdown::from_events(&trace_events);

    let per_shard = (0..shards)
        .map(|s| dlm.shard_stats().updates_of(s))
        .collect();
    dlm.unregister_client(client);
    Outcome {
        events,
        elapsed,
        throughput: events as f64 / elapsed.as_secs_f64(),
        p50,
        p95,
        upstream_share,
        breakdown,
        per_shard,
    }
}
