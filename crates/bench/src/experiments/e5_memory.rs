//! E5 — display cache vs database cache footprint (§ 4.3).
//!
//! The paper: "the required size for the client display cache was from 3
//! to 5 times smaller than the corresponding client database cache ...
//! expected to be a significant factor for real systems."
//!
//! We build displays over growing topologies and report the byte sizes
//! of both caches. Display objects project 1–2 of the Link class's 11
//! attributes (plus a derived color/width), so the ratio should sit in
//! the paper's band or above.

use crate::fixture::Bed;
use crate::report::{ratio, Table};
use crate::Scale;
use displaydb_display::schema::{color_coded_link, width_coded_link, DisplayClassBuilder};
use displaydb_display::{Display, DisplayCache};
use displaydb_schema::Value;
use std::sync::Arc;

/// Run E5.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "E5 — client cache footprints: database cache vs display cache",
        "Paper: display cache 3–5x smaller. DB objects carry full operational state; display \
         objects only what the GUI renders.",
        &[
            "links",
            "display class",
            "db cache objects",
            "db cache bytes",
            "display objects",
            "display bytes",
            "db/display ratio",
        ],
    );
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![100],
        Scale::Full => vec![100, 500, 2000],
    };

    for &links in &sizes {
        for class_kind in ["ColorCodedLink", "WidthCodedLink", "PathSummary"] {
            let bed = Bed::plain("e5").unwrap();
            let topo = bed.topology((links / 2).max(2), links).unwrap();
            let viewer = bed.client("viewer").unwrap();
            let cache = Arc::new(DisplayCache::new());
            let display = Display::open(Arc::clone(&viewer), Arc::clone(&cache), "e5");

            match class_kind {
                "ColorCodedLink" => {
                    let class = color_coded_link("Utilization");
                    for &link in &topo.links {
                        display.add_object(&class, vec![link]).unwrap();
                    }
                }
                "WidthCodedLink" => {
                    let class = width_coded_link("Utilization");
                    for &link in &topo.links {
                        display.add_object(&class, vec![link]).unwrap();
                    }
                }
                _ => {
                    // Paths of 4 links summarized into one display object
                    // (§ 3.1's multi-object association).
                    let class = DisplayClassBuilder::new("PathSummary")
                        .compute("MaxUtil", |ctx| {
                            Ok(Value::Float(ctx.max_float("Utilization")?))
                        })
                        .build();
                    for chunk in topo.links.chunks(4) {
                        display.add_object(&class, chunk.to_vec()).unwrap();
                    }
                }
            }

            let db_bytes = viewer.cache().used_bytes();
            let disp_bytes = cache.used_bytes();
            t.row(vec![
                links.to_string(),
                class_kind.to_string(),
                viewer.cache().len().to_string(),
                db_bytes.to_string(),
                cache.len().to_string(),
                disp_bytes.to_string(),
                ratio(db_bytes as f64, disp_bytes as f64),
            ]);
        }
    }
    vec![t]
}
