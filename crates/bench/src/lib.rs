//! Experiment harness reproducing the paper's evaluation (§ 4.3).
//!
//! The paper reports its evaluation as prose observations, not numbered
//! tables; each observation is reproduced here as a numbered experiment
//! (the mapping lives in `DESIGN.md`):
//!
//! | id | claim |
//! |----|-------|
//! | E0 | figs 1–3: display classes / memory hierarchy / DLM-DLC architecture are real and run end-to-end |
//! | E1 | up to 4 concurrent users + high-rate updater: responsive UI |
//! | E2 | client-side consistency maintenance overhead is very small |
//! | E3 | server-side display-lock handling overhead is a very small fraction |
//! | E4 | update propagation 1–2 s on a mid-90s LAN = 3 messages; eager shipping removes 2 of 3 |
//! | E5 | display cache 3–5× smaller than the database cache |
//! | A1 | ablation: double caching vs database-cache-only interaction latency |
//! | A2 | ablation: DLC hierarchical dedup vs display-per-client |
//! | A3 | ablation: periodic refresh vs notification-driven refresh |
//! | A4 | ablation: early-notify reduces update conflicts and aborts |
//! | R1 | robustness: supervised recovery counters + time-to-recovery for transport blips (session resume) and server restarts (fresh session) |
//! | R2 | robustness: 200 updates/s storm with one 10×-slow viewer — healthy-viewer latency isolation, bounded outbox depth, post-storm convergence via resync |
//! | R3 | projection-aware delta notifications: ≥3× fewer notification bytes than whole-object watching on a 10%-projected-attribute workload, unchanged convergence |
//! | R4 | robustness: mass-reconnect storm — cursor replay catch-up moves ≥5× fewer recovery bytes than full resync, no slower convergence |
//! | R5 | robustness: server hard-kill + restart — durable cross-restart replay moves ≥3× fewer recovery bytes than restart-resync, live cursors survive the incarnation change |
//! | R6 | scalability: 8-way sharded DLM sustains ≥3× the single-table notification throughput against a latency-modeled wire, at equal-or-better p95 and a smaller upstream share of delivery latency |
//!
//! Every experiment returns [`report::Table`]s; the `exp_*` binaries
//! print them, and `exp_all` regenerates the whole evaluation. The
//! R-series additionally emits machine-readable `BENCH_r<n>.json`
//! metrics via [`report::Metrics`]; the `bench_gate` binary compares a
//! quick-scale run against the committed baselines in
//! `crates/bench/baselines/` (see [`gate`]).

pub mod experiments;
pub mod fixture;
pub mod gate;
pub mod report;

pub use report::Table;

/// Scale knob: `quick` shrinks workloads for CI; full mode matches the
/// numbers recorded in `EXPERIMENTS.md`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small parameters, seconds per experiment.
    Quick,
    /// Full parameters, tens of seconds per experiment.
    Full,
}

impl Scale {
    /// Read from the `DISPLAYDB_SCALE` env var (`quick`/`full`; default
    /// full).
    pub fn from_env() -> Self {
        match std::env::var("DISPLAYDB_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Pick between quick and full values.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
