//! Experiment binary: prints the e2 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::e2_client_overhead::run(scale) {
        println!("{table}");
    }
}
