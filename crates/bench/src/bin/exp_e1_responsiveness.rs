//! Experiment binary: prints the e1 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::e1_responsiveness::run(scale) {
        println!("{table}");
    }
}
