//! Experiment binary: prints the a4 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::a4_conflicts::run(scale) {
        println!("{table}");
    }
}
