//! Experiment binary: prints the r3 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::r3_delta::run(scale) {
        println!("{table}");
    }
}
