//! Experiment binary: prints the r4 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::r4_replay::run(scale) {
        println!("{table}");
    }
}
