//! Experiment binary: prints the a1 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::a1_double_caching::run(scale) {
        println!("{table}");
    }
}
