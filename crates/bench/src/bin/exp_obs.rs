//! Experiment binary: runs OBS (end-to-end notification-path tracing),
//! prints the per-stage breakdown tables, and writes the unified
//! stats+trace snapshot to `BENCH_OUT_DIR/OBS_snapshot.json` (default:
//! cwd) plus the machine-readable `BENCH_obs.json` metrics. CI uploads
//! the snapshot as a build artifact.

use std::path::PathBuf;

fn main() {
    let scale = displaydb_bench::Scale::from_env();
    let out_dir = std::env::var("BENCH_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));

    let outcome = displaydb_bench::experiments::obs::run_full(scale);
    for table in &outcome.tables {
        println!("{table}");
    }

    std::fs::create_dir_all(&out_dir).expect("create out dir");
    let snap_path = out_dir.join("OBS_snapshot.json");
    std::fs::write(&snap_path, &outcome.snapshot_json).expect("write snapshot");
    println!("wrote {}", snap_path.display());

    let metrics_path = out_dir.join("BENCH_obs.json");
    outcome.metrics.write(&metrics_path).expect("write metrics");
    println!("wrote {}", metrics_path.display());
}
