//! Experiment binary: prints the r1 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::r1_recovery::run(scale) {
        println!("{table}");
    }
}
