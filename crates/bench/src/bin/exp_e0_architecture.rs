//! Experiment binary: prints the e0 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::e0_architecture::run(scale) {
        println!("{table}");
    }
}
