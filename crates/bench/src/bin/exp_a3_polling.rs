//! Experiment binary: prints the a3 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::a3_polling::run(scale) {
        println!("{table}");
    }
}
