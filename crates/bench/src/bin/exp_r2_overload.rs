//! Experiment binary: prints the r2 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::r2_overload::run(scale) {
        println!("{table}");
    }
}
