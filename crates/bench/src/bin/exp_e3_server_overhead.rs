//! Experiment binary: prints the e3 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::e3_server_overhead::run(scale) {
        println!("{table}");
    }
}
