//! Experiment binary: prints the r5 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::r5_restart::run(scale) {
        println!("{table}");
    }
}
