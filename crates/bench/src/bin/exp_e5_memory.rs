//! Experiment binary: prints the e5 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::e5_memory::run(scale) {
        println!("{table}");
    }
}
