//! Experiment binary: prints the r6 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::r6_shards::run(scale) {
        println!("{table}");
    }
}
