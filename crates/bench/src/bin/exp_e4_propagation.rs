//! Experiment binary: prints the e4 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::e4_propagation::run(scale) {
        println!("{table}");
    }
}
