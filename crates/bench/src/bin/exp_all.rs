//! Run the entire evaluation; optionally write a Markdown report.
//!
//! Usage: `exp_all [--markdown OUT.md]`; scale via `DISPLAYDB_SCALE=quick|full`.
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    eprintln!("running all experiments at {scale:?} scale ...");
    let tables = displaydb_bench::experiments::run_all(scale);
    let mut markdown = String::new();
    for table in &tables {
        println!("{table}");
        markdown.push_str(&table.to_markdown());
        markdown.push('\n');
    }
    let mut args = std::env::args().skip(1);
    if let (Some(flag), Some(path)) = (args.next(), args.next()) {
        if flag == "--markdown" {
            std::fs::write(&path, markdown).expect("write markdown report");
            eprintln!("markdown report written to {path}");
        }
    }
}
