//! CI bench gate: runs the R-series experiments, writes their
//! machine-readable `BENCH_r<n>.json` metrics, and (at quick scale)
//! compares them against the committed baselines in
//! `crates/bench/baselines/`.
//!
//! * `BENCH_OUT_DIR` — where the JSON files go (default: cwd).
//! * `BENCH_BASELINE_DIR` — the committed baselines (default: this
//!   crate's `baselines/` directory).
//! * `DISPLAYDB_SCALE` — `quick` enables the baseline comparison; any
//!   other scale only writes the JSON (full-scale numbers have no
//!   committed baseline to diff against).
//!
//! Exit status 1 on any regression (see `displaydb_bench::gate` for the
//! rules), 0 otherwise.

use displaydb_bench::report::Metrics;
use displaydb_bench::{experiments, gate, Scale};
use std::path::PathBuf;

fn main() {
    let scale = Scale::from_env();
    let out_dir = std::env::var("BENCH_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("."));
    let baseline_dir = std::env::var("BENCH_BASELINE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/baselines")));

    let runs: Vec<(Vec<displaydb_bench::Table>, Metrics)> = vec![
        experiments::r1_recovery::run_with_metrics(scale),
        experiments::r2_overload::run_with_metrics(scale),
        experiments::r3_delta::run_with_metrics(scale),
        experiments::r4_replay::run_with_metrics(scale),
        experiments::r5_restart::run_with_metrics(scale),
        experiments::r6_shards::run_with_metrics(scale),
    ];

    let mut failures = Vec::new();
    for (tables, metrics) in &runs {
        for table in tables {
            println!("{table}");
        }
        let path = out_dir.join(format!("BENCH_{}.json", metrics.experiment));
        metrics.write(&path).expect("write metrics");
        println!("wrote {}", path.display());

        if scale != Scale::Quick {
            println!(
                "[bench-gate] scale is not quick: skipping baseline comparison for {}",
                metrics.experiment
            );
            continue;
        }
        let baseline_path = baseline_dir.join(format!("BENCH_{}.json", metrics.experiment));
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => match Metrics::parse_json(&s) {
                Ok(b) => b,
                Err(e) => {
                    failures.push(format!(
                        "{}: unparsable baseline {}: {e}",
                        metrics.experiment,
                        baseline_path.display()
                    ));
                    continue;
                }
            },
            Err(e) => {
                failures.push(format!(
                    "{}: missing baseline {}: {e}",
                    metrics.experiment,
                    baseline_path.display()
                ));
                continue;
            }
        };
        failures.extend(gate::regressions(metrics, &baseline, gate::TOLERANCE));
    }

    if failures.is_empty() {
        println!("[bench-gate] OK ({} experiments)", runs.len());
    } else {
        eprintln!("[bench-gate] FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
