//! Experiment binary: prints the a2 tables (see crate docs).
fn main() {
    let scale = displaydb_bench::Scale::from_env();
    for table in displaydb_bench::experiments::a2_dlc_dedup::run(scale) {
        println!("{table}");
    }
}
