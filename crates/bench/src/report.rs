//! Result tables: aligned text output for the experiment binaries.

use std::fmt;

/// One result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment/table title.
    pub title: String,
    /// Free-form note printed under the title (the paper claim being
    /// reproduced).
    pub note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, note: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            note: note.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.title
        );
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    /// Render as a Markdown table (used by EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        if !self.note.is_empty() {
            out.push_str(&format!("{}\n\n", self.note));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        if !self.note.is_empty() {
            writeln!(f, "   {}", self.note)?;
        }
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "  +")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "  |")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |", w = w)?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &self.rows {
            write!(f, "  |")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:<w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        line(f)
    }
}

/// Format a `Duration` compactly in milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Format a ratio with one decimal and an `x` suffix.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".into()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", "a note", &["col", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much longer cell".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("a note"));
        assert!(s.contains("much longer cell"));
        // All bordered lines equal length.
        let lens: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with("  |") || l.starts_with("  +"))
            .map(|l| l.len())
            .collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("T", "", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn markdown_output() {
        let mut t = Table::new("T", "note", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.500");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }
}
