//! Result tables: aligned text output for the experiment binaries.

use std::fmt;

/// One result table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment/table title.
    pub title: String,
    /// Free-form note printed under the title (the paper claim being
    /// reproduced).
    pub note: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, note: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            note: note.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in table {}",
            self.title
        );
        self.rows.push(cells);
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        widths
    }

    /// Render as a Markdown table (used by EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        if !self.note.is_empty() {
            out.push_str(&format!("{}\n\n", self.note));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        if !self.note.is_empty() {
            writeln!(f, "   {}", self.note)?;
        }
        let line = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "  +")?;
            for w in &widths {
                write!(f, "{}+", "-".repeat(w + 2))?;
            }
            writeln!(f)
        };
        line(f)?;
        write!(f, "  |")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:<w$} |", w = w)?;
        }
        writeln!(f)?;
        line(f)?;
        for row in &self.rows {
            write!(f, "  |")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:<w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        line(f)
    }
}

/// Machine-readable metrics for one experiment: a flat map of named
/// numbers, serialised to a small JSON file (`BENCH_<id>.json`) that the
/// CI bench gate diffs against a committed baseline. Keys ending in
/// `_ms` or `_bytes` are treated as "lower is better" and gated.
#[derive(Clone, Debug, PartialEq)]
pub struct Metrics {
    /// Experiment id (`r1`, `r2`, `r3`).
    pub experiment: String,
    values: Vec<(String, f64)>,
}

impl Metrics {
    /// Start an empty metric set for `experiment`.
    pub fn new(experiment: impl Into<String>) -> Self {
        Self {
            experiment: experiment.into(),
            values: Vec::new(),
        }
    }

    /// Record (or overwrite) one metric.
    pub fn put(&mut self, key: impl Into<String>, value: f64) {
        let key = key.into();
        if let Some(slot) = self.values.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.values.push((key, value));
        }
    }

    /// Look up one metric.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.values.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    /// All metrics in insertion order.
    pub fn values(&self) -> &[(String, f64)] {
        &self.values
    }

    /// Serialise to JSON (hand-rolled; the workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"experiment\": \"{}\",\n", self.experiment));
        out.push_str("  \"metrics\": {\n");
        for (i, (k, v)) in self.values.iter().enumerate() {
            let comma = if i + 1 == self.values.len() { "" } else { "," };
            // Finite decimal notation keeps the files diff-friendly.
            out.push_str(&format!("    \"{k}\": {v:.6}{comma}\n"));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parse the subset of JSON that [`Self::to_json`] emits (flat string
    /// key → number map under `"metrics"`). Tolerant of whitespace and
    /// key order, nothing else.
    pub fn parse_json(s: &str) -> Result<Self, String> {
        fn string_after<'a>(s: &'a str, key: &str) -> Option<&'a str> {
            let at = s.find(&format!("\"{key}\""))?;
            let rest = &s[at + key.len() + 2..];
            let colon = rest.find(':')?;
            let rest = rest[colon + 1..].trim_start();
            let rest = rest.strip_prefix('"')?;
            let end = rest.find('"')?;
            Some(&rest[..end])
        }
        let experiment = string_after(s, "experiment")
            .ok_or_else(|| "missing \"experiment\"".to_string())?
            .to_string();
        let metrics_at = s
            .find("\"metrics\"")
            .ok_or_else(|| "missing \"metrics\"".to_string())?;
        let body = &s[metrics_at..];
        let open = body
            .find('{')
            .ok_or_else(|| "missing metrics object".to_string())?;
        let close = body[open..]
            .find('}')
            .ok_or_else(|| "unterminated metrics object".to_string())?;
        let body = &body[open + 1..open + close];
        let mut out = Self::new(experiment);
        for pair in body.split(',') {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("bad metric pair {pair:?}"))?;
            let key = key.trim().trim_matches('"').to_string();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad number for {key}: {e}"))?;
            out.put(key, value);
        }
        Ok(out)
    }

    /// Write the JSON file (creating parent directories).
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Format a `Duration` compactly in milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Format a ratio with one decimal and an `x` suffix.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".into()
    } else {
        format!("{:.1}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", "a note", &["col", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["much longer cell".into(), "22".into()]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("a note"));
        assert!(s.contains("much longer cell"));
        // All bordered lines equal length.
        let lens: Vec<usize> = s
            .lines()
            .filter(|l| l.starts_with("  |") || l.starts_with("  +"))
            .map(|l| l.len())
            .collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_enforced() {
        let mut t = Table::new("T", "", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn markdown_output() {
        let mut t = Table::new("T", "note", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.500");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }

    #[test]
    fn metrics_json_roundtrip() {
        let mut m = Metrics::new("r3");
        m.put("delta_notify_bytes", 1234.0);
        m.put("delta_notify_p95_ms", 1.75);
        m.put("bytes_reduction_x", 9.5);
        let back = Metrics::parse_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.get("delta_notify_bytes"), Some(1234.0));
        assert_eq!(back.get("nope"), None);
    }

    #[test]
    fn metrics_put_overwrites() {
        let mut m = Metrics::new("x");
        m.put("k", 1.0);
        m.put("k", 2.0);
        assert_eq!(m.values().len(), 1);
        assert_eq!(m.get("k"), Some(2.0));
    }

    #[test]
    fn metrics_parse_rejects_garbage() {
        assert!(Metrics::parse_json("{}").is_err());
        assert!(Metrics::parse_json("{\"experiment\": \"r1\"}").is_err());
        assert!(
            Metrics::parse_json("{\"experiment\": \"r1\", \"metrics\": {\"a\": \"nan?\"}}")
                .is_err()
        );
    }
}
