//! The CI bench gate: compares a fresh quick-scale run of the R-series
//! experiments against committed baseline JSON files and fails on
//! regressions.
//!
//! Rules:
//!
//! * metrics whose key ends in `_ms` or `_bytes` are "lower is better";
//!   the gate fails when the current value exceeds the baseline by more
//!   than the tolerance (default 25%). Baselines are committed as
//!   conservative ceilings, not exact measurements, so runner noise does
//!   not flake the gate while an order-of-magnitude regression still
//!   trips it.
//! * R3 additionally requires `bytes_reduction_x >= 3`: the
//!   projection-aware notification path must keep at least a 3×
//!   bytes-on-wire reduction over whole-object watching.
//! * R4 additionally requires `recovery_bytes_reduction_x >= 5`: replay
//!   catch-up from a cursor must keep at least a 5× bytes-on-wire
//!   reduction over full resync during a mass-reconnect storm.
//! * R5 additionally requires `recovery_bytes_reduction_x >= 3`:
//!   durable cross-restart replay must keep at least a 3× bytes-on-wire
//!   reduction over restart-resync after a server hard kill.
//!
//! Counters without a gated suffix ride along in the JSON for human
//! inspection and artifact diffing but are not enforced.

use crate::report::Metrics;

/// Relative tolerance for gated metrics: fail above `baseline * (1 + t)`.
pub const TOLERANCE: f64 = 0.25;

/// Floor on the R3 bytes-on-wire reduction ratio.
pub const MIN_BYTES_REDUCTION: f64 = 3.0;

/// Floor on the R4 replay-vs-resync recovery bytes ratio.
pub const MIN_RECOVERY_BYTES_REDUCTION: f64 = 5.0;

/// Floor on the R5 cross-restart replay-vs-resync recovery bytes ratio.
/// Lower than R4's: a restarted server re-registers every reconnecting
/// copy it proves current from the durable window, so R5's replay
/// scenario pays manifest-proof overhead R4's live-server replay never
/// sees.
pub const MIN_RESTART_RECOVERY_BYTES_REDUCTION: f64 = 3.0;

/// Floor on the R6 sharded-vs-single notification throughput ratio: an
/// 8-way partitioned DLM must sustain at least 3× the single-table
/// fan-out rate against the latency-modeled wire. Well under the ideal
/// 8× so hash imbalance, shard-scope spawn overhead, and runner noise
/// do not flake the gate while a serialization regression still trips
/// it.
pub const MIN_SHARD_NOTIFY_SPEEDUP: f64 = 3.0;

/// Whether a metric key is gated (lower-is-better enforced).
pub fn is_gated(key: &str) -> bool {
    key.ends_with("_ms") || key.ends_with("_bytes")
}

/// Compare one experiment's current metrics against its baseline.
/// Returns human-readable failure descriptions (empty = pass).
pub fn regressions(current: &Metrics, baseline: &Metrics, tolerance: f64) -> Vec<String> {
    let mut out = Vec::new();
    for (key, base) in baseline.values() {
        if !is_gated(key) {
            continue;
        }
        let Some(now) = current.get(key) else {
            out.push(format!(
                "{}: gated metric {key} missing from current run",
                current.experiment
            ));
            continue;
        };
        let limit = base * (1.0 + tolerance);
        if now > limit {
            out.push(format!(
                "{}: {key} regressed: {now:.3} > {base:.3} +{:.0}% (limit {limit:.3})",
                current.experiment,
                tolerance * 100.0
            ));
        }
    }
    if current.experiment == "r3" {
        match current.get("bytes_reduction_x") {
            Some(x) if x >= MIN_BYTES_REDUCTION => {}
            Some(x) => out.push(format!(
                "r3: bytes_reduction_x {x:.2} below the required {MIN_BYTES_REDUCTION:.0}x"
            )),
            None => out.push("r3: bytes_reduction_x metric missing".into()),
        }
    }
    if current.experiment == "r4" {
        match current.get("recovery_bytes_reduction_x") {
            Some(x) if x >= MIN_RECOVERY_BYTES_REDUCTION => {}
            Some(x) => out.push(format!(
                "r4: recovery_bytes_reduction_x {x:.2} below the required \
                 {MIN_RECOVERY_BYTES_REDUCTION:.0}x"
            )),
            None => out.push("r4: recovery_bytes_reduction_x metric missing".into()),
        }
    }
    if current.experiment == "r5" {
        match current.get("recovery_bytes_reduction_x") {
            Some(x) if x >= MIN_RESTART_RECOVERY_BYTES_REDUCTION => {}
            Some(x) => out.push(format!(
                "r5: recovery_bytes_reduction_x {x:.2} below the required \
                 {MIN_RESTART_RECOVERY_BYTES_REDUCTION:.0}x"
            )),
            None => out.push("r5: recovery_bytes_reduction_x metric missing".into()),
        }
    }
    if current.experiment == "r6" {
        match current.get("notify_speedup_x") {
            Some(x) if x >= MIN_SHARD_NOTIFY_SPEEDUP => {}
            Some(x) => out.push(format!(
                "r6: notify_speedup_x {x:.2} below the required \
                 {MIN_SHARD_NOTIFY_SPEEDUP:.0}x"
            )),
            None => out.push("r6: notify_speedup_x metric missing".into()),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(experiment: &str, pairs: &[(&str, f64)]) -> Metrics {
        let mut out = Metrics::new(experiment);
        for (k, v) in pairs {
            out.put(*k, *v);
        }
        out
    }

    #[test]
    fn gated_suffixes() {
        assert!(is_gated("notify_p95_ms"));
        assert!(is_gated("delta_notify_bytes"));
        assert!(!is_gated("events"));
        assert!(!is_gated("bytes_reduction_x"));
    }

    #[test]
    fn within_tolerance_passes() {
        let base = m("r2", &[("p95_ms", 10.0), ("events", 100.0)]);
        let now = m("r2", &[("p95_ms", 12.0), ("events", 500.0)]);
        assert!(regressions(&now, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn over_tolerance_fails() {
        let base = m("r2", &[("p95_ms", 10.0)]);
        let now = m("r2", &[("p95_ms", 12.6)]);
        let fails = regressions(&now, &base, TOLERANCE);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("p95_ms"), "{fails:?}");
    }

    #[test]
    fn missing_gated_metric_fails() {
        let base = m("r1", &[("blip_recovery_ms", 5.0)]);
        let now = m("r1", &[]);
        assert_eq!(regressions(&now, &base, TOLERANCE).len(), 1);
    }

    #[test]
    fn improvements_pass() {
        let base = m("r3", &[("delta_notify_bytes", 1000.0)]);
        let now = m(
            "r3",
            &[("delta_notify_bytes", 100.0), ("bytes_reduction_x", 8.0)],
        );
        assert!(regressions(&now, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn r3_requires_bytes_reduction_floor() {
        let base = m("r3", &[]);
        let weak = m("r3", &[("bytes_reduction_x", 2.0)]);
        assert_eq!(regressions(&weak, &base, TOLERANCE).len(), 1);
        let missing = m("r3", &[]);
        assert_eq!(regressions(&missing, &base, TOLERANCE).len(), 1);
        let strong = m("r3", &[("bytes_reduction_x", 5.0)]);
        assert!(regressions(&strong, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn r4_requires_recovery_bytes_reduction_floor() {
        let base = m("r4", &[]);
        let weak = m("r4", &[("recovery_bytes_reduction_x", 3.0)]);
        assert_eq!(regressions(&weak, &base, TOLERANCE).len(), 1);
        let missing = m("r4", &[]);
        assert_eq!(regressions(&missing, &base, TOLERANCE).len(), 1);
        let strong = m("r4", &[("recovery_bytes_reduction_x", 7.5)]);
        assert!(regressions(&strong, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn r5_requires_restart_recovery_bytes_reduction_floor() {
        let base = m("r5", &[]);
        let weak = m("r5", &[("recovery_bytes_reduction_x", 2.0)]);
        assert_eq!(regressions(&weak, &base, TOLERANCE).len(), 1);
        let missing = m("r5", &[]);
        assert_eq!(regressions(&missing, &base, TOLERANCE).len(), 1);
        let strong = m("r5", &[("recovery_bytes_reduction_x", 4.0)]);
        assert!(regressions(&strong, &base, TOLERANCE).is_empty());
    }

    #[test]
    fn r6_requires_notify_speedup_floor() {
        let base = m("r6", &[]);
        let weak = m("r6", &[("notify_speedup_x", 1.5)]);
        assert_eq!(regressions(&weak, &base, TOLERANCE).len(), 1);
        let missing = m("r6", &[]);
        assert_eq!(regressions(&missing, &base, TOLERANCE).len(), 1);
        let strong = m("r6", &[("notify_speedup_x", 6.0)]);
        assert!(regressions(&strong, &base, TOLERANCE).is_empty());
    }
}
