//! Criterion bench: visualization layouts (Tree-Map variants and the
//! PDQ tree-browser) at realistic hierarchy sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use displaydb_viz::pdq::{PdqBrowser, PdqNode, RangeFilter};
use displaydb_viz::{slice_and_dice, squarify, Rect, TreeNode};
use std::hint::black_box;

/// A hierarchy with `fanout`^3 leaves.
fn tree(fanout: usize) -> TreeNode<u64> {
    let mut id = 0u64;
    let mut leaf = |w: f64| {
        id += 1;
        TreeNode::leaf(id, w)
    };
    let level1: Vec<TreeNode<u64>> = (0..fanout)
        .map(|i| {
            let level2: Vec<TreeNode<u64>> = (0..fanout)
                .map(|j| {
                    let leaves: Vec<TreeNode<u64>> = (0..fanout)
                        .map(|k| leaf(1.0 + ((i * 7 + j * 3 + k) % 9) as f64))
                        .collect();
                    TreeNode::branch(0, leaves)
                })
                .collect();
            TreeNode::branch(0, level2)
        })
        .collect();
    TreeNode::branch(0, level1)
}

fn pdq_tree(fanout: usize) -> PdqNode<u64> {
    fn build(depth: usize, fanout: usize, id: &mut u64) -> PdqNode<u64> {
        *id += 1;
        let mut node =
            PdqNode::new(*id, format!("n{id}")).with_attr("load", (*id % 100) as f64 / 100.0);
        if depth > 0 {
            node.children = (0..fanout).map(|_| build(depth - 1, fanout, id)).collect();
        }
        node
    }
    let mut id = 0;
    build(3, fanout, &mut id)
}

const CANVAS: Rect = Rect::new(0.0, 0.0, 1920.0, 1080.0);

fn bench_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("viz_layouts");
    for fanout in [4usize, 8, 12] {
        let t = tree(fanout);
        let leaves = fanout.pow(3);
        group.bench_with_input(BenchmarkId::new("slice_and_dice", leaves), &t, |b, t| {
            b.iter(|| black_box(slice_and_dice(t, CANVAS).len()))
        });
        group.bench_with_input(BenchmarkId::new("squarify", leaves), &t, |b, t| {
            b.iter(|| black_box(squarify(t, CANVAS).len()))
        });

        let p = pdq_tree(fanout);
        let mut browser = PdqBrowser::new();
        browser.prune = true;
        browser.add_filter(3, RangeFilter::new("load", 0.4, 1.0));
        group.bench_with_input(
            BenchmarkId::new("pdq_filtered_layout", leaves),
            &p,
            |b, p| b.iter(|| black_box(browser.layout(p, CANVAS).cells.len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_layouts);
criterion_main!(benches);
