//! Criterion microbench: storage-engine hot paths (page ops, heap ops,
//! WAL appends).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use displaydb_common::{Oid, PageId, TxnId};
use displaydb_storage::page::FLAG_HEAP;
use displaydb_storage::{BufferPool, DiskManager, HeapFile, Page, Wal, WalRecord};
use std::hint::black_box;
use std::sync::Arc;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("displaydb-criterion");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.db", std::process::id()))
}

fn bench_storage(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage");

    group.bench_function("page_insert_100b", |b| {
        let payload = [7u8; 100];
        b.iter_batched(
            || Page::new(PageId::new(1), FLAG_HEAP),
            |mut page| {
                while page.insert(&payload).is_ok() {}
                black_box(page.live_records())
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("page_get", |b| {
        let mut page = Page::new(PageId::new(1), FLAG_HEAP);
        let slots: Vec<u16> = (0..50).map(|_| page.insert(&[9u8; 100]).unwrap()).collect();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(page.get(slots[i % slots.len()]).unwrap().len())
        });
    });

    group.bench_function("buffer_pool_hit", |b| {
        let path = scratch("pool-hit");
        let _ = std::fs::remove_file(&path);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(disk, 64);
        let pid = pool.new_page(FLAG_HEAP).unwrap().page_id();
        b.iter(|| {
            let guard = pool.fetch(pid).unwrap();
            black_box(guard.with_read(|p| p.free_space()))
        });
        let _ = std::fs::remove_file(&path);
    });

    group.bench_function("heap_insert_200b", |b| {
        let path = scratch("heap-ins");
        let _ = std::fs::remove_file(&path);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let heap = HeapFile::create(BufferPool::new(disk, 256));
        let payload = [5u8; 200];
        b.iter(|| black_box(heap.insert(&payload).unwrap()));
        let _ = std::fs::remove_file(&path);
    });

    group.bench_function("heap_get", |b| {
        let path = scratch("heap-get");
        let _ = std::fs::remove_file(&path);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let heap = HeapFile::create(BufferPool::new(disk, 256));
        let rids: Vec<_> = (0..500)
            .map(|_| heap.insert(&[5u8; 200]).unwrap())
            .collect();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(heap.get(rids[i % rids.len()]).unwrap().len())
        });
        let _ = std::fs::remove_file(&path);
    });

    group.bench_function("wal_append_nosync", |b| {
        let path = scratch("wal");
        let _ = std::fs::remove_file(&path);
        let wal = Wal::open(&path).unwrap();
        let record = WalRecord::Put {
            txn: TxnId::new(1),
            oid: Oid::new(1),
            bytes: vec![3u8; 200],
        };
        b.iter(|| black_box(wal.append(&record).unwrap()));
        let _ = std::fs::remove_file(&path);
    });

    group.finish();
}

criterion_group!(benches, bench_storage);
criterion_main!(benches);
