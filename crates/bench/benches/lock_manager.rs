//! Criterion microbench: lock manager hot paths, including the display
//! mode's "compatible with everything" fast path (paper § 3.3/E3).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use displaydb_common::{ClientId, Oid, TxnId};
use displaydb_lockmgr::{LockManager, LockManagerConfig, LockMode, Owner};
use std::hint::black_box;

fn bench_grants(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_manager");

    group.bench_function("x_acquire_release_uncontended", |b| {
        let lm = LockManager::new(LockManagerConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let owner = Owner::Txn(TxnId::new(i));
            lm.acquire(owner, Oid::new(i % 128), LockMode::Exclusive)
                .unwrap();
            lm.release_all(owner);
        });
    });

    group.bench_function("s_acquire_release_shared", |b| {
        let lm = LockManager::new(LockManagerConfig::default());
        // A standing reader on every object.
        for o in 0..128u64 {
            lm.acquire(
                Owner::Txn(TxnId::new(1_000_000)),
                Oid::new(o),
                LockMode::Shared,
            )
            .unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let owner = Owner::Txn(TxnId::new(i));
            lm.acquire(owner, Oid::new(i % 128), LockMode::Shared)
                .unwrap();
            lm.release_all(owner);
        });
    });

    group.bench_function("display_grant", |b| {
        let lm = LockManager::new(LockManagerConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            // Always granted, never queued — the § 3.3 property.
            lm.acquire(
                Owner::Client(ClientId::new(i % 64)),
                Oid::new(i % 4096),
                LockMode::Display,
            )
            .unwrap();
        });
    });

    group.bench_function("x_grant_with_display_holders", |b| {
        let lm = LockManager::new(LockManagerConfig::default());
        for o in 0..128u64 {
            for h in 0..8u64 {
                lm.acquire(
                    Owner::Client(ClientId::new(h)),
                    Oid::new(o),
                    LockMode::Display,
                )
                .unwrap();
            }
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let owner = Owner::Txn(TxnId::new(i));
            lm.acquire(owner, Oid::new(i % 128), LockMode::Exclusive)
                .unwrap();
            lm.release_all(owner);
        });
    });

    group.bench_function("display_holders_lookup", |b| {
        let lm = LockManager::new(LockManagerConfig::default());
        for h in 0..8u64 {
            lm.acquire(
                Owner::Client(ClientId::new(h)),
                Oid::new(7),
                LockMode::Display,
            )
            .unwrap();
        }
        b.iter(|| black_box(lm.display_holders(Oid::new(7))));
    });

    group.bench_function("release_all_100_locks", |b| {
        b.iter_batched(
            || {
                let lm = LockManager::new(LockManagerConfig::default());
                let owner = Owner::Txn(TxnId::new(1));
                for o in 0..100u64 {
                    lm.acquire(owner, Oid::new(o), LockMode::Exclusive).unwrap();
                }
                (lm, owner)
            },
            |(lm, owner)| lm.release_all(owner),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_grants);
criterion_main!(benches);
