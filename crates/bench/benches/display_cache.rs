//! Criterion bench: display cache and DLC hot paths — the operations a
//! GUI performs per frame and per notification.

use criterion::{criterion_group, criterion_main, Criterion};
use displaydb_client::dlc::{Dlc, DlmBackend};
use displaydb_common::{DbResult, DisplayId, Oid, TxnId};
use displaydb_display::{DisplayCache, DisplayObject};
use displaydb_dlm::{DlmEvent, UpdateInfo};
use displaydb_schema::Value;
use std::hint::black_box;
use std::sync::Arc;

struct NullBackend;
impl DlmBackend for NullBackend {
    fn lock(&self, _: Vec<Oid>) -> DbResult<()> {
        Ok(())
    }
    fn release(&self, _: Vec<Oid>) -> DbResult<()> {
        Ok(())
    }
    fn report_commit(&self, _: Vec<UpdateInfo>) -> DbResult<()> {
        Ok(())
    }
    fn report_intent(&self, _: Vec<Oid>, _: TxnId) -> DbResult<()> {
        Ok(())
    }
    fn report_resolution(&self, _: Vec<Oid>, _: TxnId, _: bool) -> DbResult<()> {
        Ok(())
    }
}

fn populated_cache(n: u64) -> (DisplayCache, Vec<displaydb_display::DoId>) {
    let cache = DisplayCache::new();
    let ids = (0..n)
        .map(|i| {
            let id = cache.allocate_id();
            let mut d = DisplayObject::new(id, "ColorCodedLink", vec![Oid::new(i)]);
            d.attrs.push(("Utilization".into(), Value::Float(0.5)));
            d.attrs.push(("Color".into(), Value::Int(0xffffff)));
            cache.insert(d);
            id
        })
        .collect();
    (cache, ids)
}

fn bench_display_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("display_cache");

    group.bench_function("get_hit", |b| {
        let (cache, ids) = populated_cache(10_000);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(cache.get(ids[i % ids.len()]).unwrap().id)
        });
    });

    group.bench_function("dependents_lookup", |b| {
        let (cache, _) = populated_cache(10_000);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(cache.dependents(Oid::new(i % 10_000)).len())
        });
    });

    group.bench_function("with_mut_attr_update", |b| {
        let (cache, ids) = populated_cache(1_000);
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            cache.with_mut(ids[i % ids.len()], |d| {
                d.attrs[0].1 = Value::Float((i % 100) as f64 / 100.0);
                d.dirty = true;
            })
        });
    });

    group.bench_function("dlc_dispatch_fanout4", |b| {
        let dlc = Dlc::new(Arc::new(NullBackend));
        let mut receivers = Vec::new();
        for d in 0..4u64 {
            let rx = dlc.register_display(DisplayId::new(d));
            dlc.acquire(DisplayId::new(d), &[Oid::new(1)]).unwrap();
            receivers.push(rx);
        }
        b.iter(|| {
            dlc.dispatch(DlmEvent::Updated(UpdateInfo::lazy(Oid::new(1))));
            for rx in &receivers {
                black_box(rx.try_recv().unwrap());
            }
        });
    });

    group.bench_function("dlc_acquire_dedup_hit", |b| {
        let dlc = Dlc::new(Arc::new(NullBackend));
        let _rx = dlc.register_display(DisplayId::new(1));
        dlc.acquire(DisplayId::new(1), &[Oid::new(1)]).unwrap();
        b.iter(|| {
            // Re-acquire of an already-locked object: pure local dedup.
            dlc.acquire(DisplayId::new(1), &[Oid::new(1)]).unwrap();
        });
    });

    group.finish();
}

criterion_group!(benches, bench_display_cache);
criterion_main!(benches);
