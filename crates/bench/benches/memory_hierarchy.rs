//! Criterion bench: figure 2 of the paper as numbers — access latency at
//! each level of the extended memory hierarchy.
//!
//! Expected ordering (each level orders of magnitude cheaper than the one
//! below): server disk read > server buffer hit > client database cache
//! hit > client display cache hit.

use criterion::{criterion_group, criterion_main, Criterion};
use displaydb_client::ClientCache;
use displaydb_common::Oid;
use displaydb_display::{DisplayCache, DisplayObject};
use displaydb_nms::nms_catalog;
use displaydb_schema::DbObject;
use displaydb_storage::page::FLAG_HEAP;
use displaydb_storage::{BufferPool, DiskManager};
use std::hint::black_box;
use std::sync::Arc;

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("displaydb-criterion");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}.db", std::process::id()))
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("memory_hierarchy");

    // Level 1: server disk (uncached page read).
    group.bench_function("level1_server_disk_read", |b| {
        let path = scratch("hier-disk");
        let _ = std::fs::remove_file(&path);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let pids: Vec<_> = (0..64)
            .map(|_| {
                let pid = disk.allocate().unwrap();
                let page = displaydb_storage::Page::new(pid, FLAG_HEAP);
                disk.write_page(pid, &page).unwrap();
                pid
            })
            .collect();
        disk.sync().unwrap();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            black_box(disk.read_page(pids[i % pids.len()]).unwrap().slot_count())
        });
        let _ = std::fs::remove_file(&path);
    });

    // Level 2: server buffer pool hit.
    group.bench_function("level2_server_buffer_hit", |b| {
        let path = scratch("hier-buf");
        let _ = std::fs::remove_file(&path);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(disk, 64);
        let pid = pool.new_page(FLAG_HEAP).unwrap().page_id();
        b.iter(|| {
            let guard = pool.fetch(pid).unwrap();
            black_box(guard.with_read(|p| p.slot_count()))
        });
        let _ = std::fs::remove_file(&path);
    });

    // Level 2.5 (footnote 2 of the paper): client local-disk cache hit.
    group.bench_function("level2_5_client_disk_cache_hit", |b| {
        let cat = nms_catalog();
        let dir = std::env::temp_dir().join(format!(
            "displaydb-criterion-diskcache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = displaydb_client::DiskCache::open(&dir, 1 << 20).unwrap();
        let mut obj = DbObject::new_named(&cat, "Link").unwrap();
        obj.oid = Oid::new(1);
        disk.put(&obj);
        b.iter(|| black_box(disk.get(Oid::new(1)).unwrap().oid));
        let _ = std::fs::remove_dir_all(&dir);
    });

    // Level 3: client database cache hit.
    group.bench_function("level3_client_db_cache_hit", |b| {
        let cat = nms_catalog();
        let cache = ClientCache::new(16 << 20);
        let mut obj = DbObject::new_named(&cat, "Link").unwrap();
        obj.oid = Oid::new(1);
        obj.set(&cat, "Utilization", 0.5).unwrap();
        cache.insert(obj);
        b.iter(|| black_box(cache.get(Oid::new(1)).unwrap().oid));
    });

    // Level 4 (the paper's new level): display cache hit.
    group.bench_function("level4_display_cache_hit", |b| {
        let cache = DisplayCache::new();
        let id = cache.allocate_id();
        let mut d = DisplayObject::new(id, "ColorCodedLink", vec![Oid::new(1)]);
        d.attrs
            .push(("Color".into(), displaydb_schema::Value::Int(0xdc1414)));
        cache.insert(d);
        b.iter(|| black_box(cache.get(id).unwrap().id));
    });

    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
