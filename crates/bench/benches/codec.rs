//! Criterion microbench: object and message codecs (every byte on the
//! wire and in the caches goes through these).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use displaydb_nms::nms_catalog;
use displaydb_schema::DbObject;
use displaydb_server::proto::{Envelope, Request};
use displaydb_wire::{Decode, Encode};
use std::hint::black_box;

fn sample_link() -> (displaydb_schema::Catalog, DbObject) {
    let cat = nms_catalog();
    let mut obj = DbObject::new_named(&cat, "Link").unwrap();
    obj.oid = displaydb_common::Oid::new(42);
    obj.set(&cat, "Name", "backbone-atl-dca").unwrap();
    obj.set(&cat, "Utilization", 0.73).unwrap();
    obj.set(&cat, "CircuitId", "CKT-96-000417").unwrap();
    obj.set(&cat, "Notes", "x".repeat(200)).unwrap();
    (cat, obj)
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let (_cat, obj) = sample_link();
    let encoded = obj.encode_to_bytes();
    group.throughput(Throughput::Bytes(encoded.len() as u64));

    group.bench_function("encode_link_object", |b| {
        b.iter(|| black_box(obj.encode_to_bytes()));
    });

    group.bench_function("decode_link_object", |b| {
        b.iter(|| black_box(DbObject::decode_from_bytes(&encoded).unwrap()));
    });

    let envelope = Envelope::Req(
        7,
        Request::Write {
            txn: displaydb_common::TxnId::new(3),
            object: encoded.to_vec(),
        },
    );
    let env_bytes = envelope.encode_to_bytes();
    group.bench_function("encode_write_envelope", |b| {
        b.iter(|| black_box(envelope.encode_to_bytes()));
    });
    group.bench_function("decode_write_envelope", |b| {
        b.iter(|| black_box(Envelope::decode_from_bytes(&env_bytes).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
