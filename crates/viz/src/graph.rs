//! Deterministic network-graph layouts.
//!
//! The NMS map display (paper § 2.1: "a graph representing the nodes and
//! links of a real communication network") needs node positions. Screen
//! coordinates are display-class attributes — they must come from layout
//! algorithms, never from the database schema. Three layouts are
//! provided, all deterministic for reproducible tests and benches.

use crate::geom::{Point, Rect};

/// Place `n` nodes evenly on a circle inscribed in `canvas`.
pub fn circle_layout(n: usize, canvas: Rect) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    let c = canvas.center();
    let r = (canvas.short_side() / 2.0) * 0.9;
    (0..n)
        .map(|i| {
            let theta = std::f32::consts::TAU * i as f32 / n as f32;
            Point::new(c.x + r * theta.cos(), c.y + r * theta.sin())
        })
        .collect()
}

/// Place `n` nodes on a near-square grid inside `canvas`.
pub fn grid_layout(n: usize, canvas: Rect) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    let cols = (n as f32).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let cell_w = canvas.w / cols as f32;
    let cell_h = canvas.h / rows as f32;
    (0..n)
        .map(|i| {
            let (col, row) = (i % cols, i / cols);
            Point::new(
                canvas.x + (col as f32 + 0.5) * cell_w,
                canvas.y + (row as f32 + 0.5) * cell_h,
            )
        })
        .collect()
}

/// Refine an initial circle layout with a few rounds of Fruchterman-
/// Reingold style forces. Deterministic (no randomness: the circle seed
/// breaks symmetry).
pub fn force_layout(
    n: usize,
    edges: &[(usize, usize)],
    canvas: Rect,
    iterations: usize,
) -> Vec<Point> {
    let mut pos = circle_layout(n, canvas);
    if n <= 1 {
        return pos;
    }
    let area = canvas.area().max(1.0);
    let k = (area / n as f32).sqrt();
    let mut temperature = canvas.short_side() / 10.0;

    for _ in 0..iterations {
        let mut disp = vec![Point::default(); n];
        // Repulsion between all pairs.
        for i in 0..n {
            for j in (i + 1)..n {
                let dx = pos[i].x - pos[j].x;
                let dy = pos[i].y - pos[j].y;
                let dist = (dx * dx + dy * dy).sqrt().max(0.01);
                let force = k * k / dist;
                let (fx, fy) = (dx / dist * force, dy / dist * force);
                disp[i].x += fx;
                disp[i].y += fy;
                disp[j].x -= fx;
                disp[j].y -= fy;
            }
        }
        // Attraction along edges.
        for &(a, b) in edges {
            if a >= n || b >= n || a == b {
                continue;
            }
            let dx = pos[a].x - pos[b].x;
            let dy = pos[a].y - pos[b].y;
            let dist = (dx * dx + dy * dy).sqrt().max(0.01);
            let force = dist * dist / k;
            let (fx, fy) = (dx / dist * force, dy / dist * force);
            disp[a].x -= fx;
            disp[a].y -= fy;
            disp[b].x += fx;
            disp[b].y += fy;
        }
        // Apply with temperature clamp, keep inside the canvas.
        for i in 0..n {
            let len = (disp[i].x * disp[i].x + disp[i].y * disp[i].y)
                .sqrt()
                .max(0.01);
            let step = len.min(temperature);
            pos[i].x = (pos[i].x + disp[i].x / len * step).clamp(canvas.x, canvas.x + canvas.w);
            pos[i].y = (pos[i].y + disp[i].y / len * step).clamp(canvas.y, canvas.y + canvas.h);
        }
        temperature *= 0.92;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANVAS: Rect = Rect::new(0.0, 0.0, 1000.0, 800.0);

    #[test]
    fn circle_places_all_on_circle() {
        let pts = circle_layout(12, CANVAS);
        assert_eq!(pts.len(), 12);
        let c = CANVAS.center();
        let r0 = pts[0].distance(c);
        for p in &pts {
            assert!((p.distance(c) - r0).abs() < 0.01);
            assert!(CANVAS.contains(*p));
        }
        // All distinct.
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(pts[i].distance(pts[j]) > 1.0);
            }
        }
    }

    #[test]
    fn grid_is_inside_and_distinct() {
        let pts = grid_layout(10, CANVAS);
        assert_eq!(pts.len(), 10);
        for p in &pts {
            assert!(CANVAS.contains(*p));
        }
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert!(pts[i].distance(pts[j]) > 1.0);
            }
        }
    }

    #[test]
    fn force_layout_pulls_connected_nodes_together() {
        // Two cliques connected by one edge: intra-clique distances should
        // shrink relative to the circle start.
        let edges: Vec<(usize, usize)> = vec![
            (0, 1),
            (0, 2),
            (1, 2), // clique A
            (3, 4),
            (3, 5),
            (4, 5), // clique B
            (2, 3), // bridge
        ];
        let start = circle_layout(6, CANVAS);
        let pts = force_layout(6, &edges, CANVAS, 60);
        let avg = |ps: &[Point], pairs: &[(usize, usize)]| -> f32 {
            pairs
                .iter()
                .map(|&(a, b)| ps[a].distance(ps[b]))
                .sum::<f32>()
                / pairs.len() as f32
        };
        let intra = [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)];
        let inter = [(0, 4), (1, 5), (0, 3)];
        let before_ratio = avg(&start, &inter) / avg(&start, &intra);
        let after_ratio = avg(&pts, &inter) / avg(&pts, &intra);
        assert!(
            after_ratio > before_ratio,
            "layout should separate cliques: {before_ratio} -> {after_ratio}"
        );
        for p in &pts {
            assert!(CANVAS.contains(*p));
        }
    }

    #[test]
    fn deterministic_output() {
        let edges = vec![(0, 1), (1, 2)];
        let a = force_layout(3, &edges, CANVAS, 30);
        let b = force_layout(3, &edges, CANVAS, 30);
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(circle_layout(0, CANVAS).is_empty());
        assert!(grid_layout(0, CANVAS).is_empty());
        assert_eq!(force_layout(1, &[], CANVAS, 10).len(), 1);
        // Self edges and out-of-range edges are ignored.
        let pts = force_layout(2, &[(0, 0), (5, 9)], CANVAS, 5);
        assert_eq!(pts.len(), 2);
    }
}
