//! Colors and the paper's utilization coding schemes.
//!
//! § 2.1 of the paper gives the canonical example: a link's utilization
//! may be *color-coded* ("red, pink and white lines could represent links
//! with high, moderate and low utilization") or *width-coded* ("the line
//! width is proportional to the link utilization"). Both codings are the
//! derivation functions of the example display classes in figure 1.

/// An sRGB color.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Color {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Color {
    /// Construct from channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Self { r, g, b }
    }

    /// White.
    pub const WHITE: Color = Color::new(255, 255, 255);
    /// Pink (moderate utilization in the paper's example).
    pub const PINK: Color = Color::new(255, 105, 180);
    /// Red (high utilization).
    pub const RED: Color = Color::new(220, 20, 20);
    /// Black.
    pub const BLACK: Color = Color::new(0, 0, 0);
    /// Mid gray.
    pub const GRAY: Color = Color::new(128, 128, 128);
    /// Marker color for objects "being updated" under the early-notify
    /// protocol (§ 3.3 suggests turning them red; we use amber to keep it
    /// distinct from high utilization).
    pub const MARKED: Color = Color::new(255, 165, 0);

    /// Linear interpolation between two colors (`t` clamped to \[0,1\]).
    pub fn lerp(self, other: Color, t: f32) -> Color {
        let t = t.clamp(0.0, 1.0);
        let mix = |a: u8, b: u8| -> u8 { (f32::from(a) + (f32::from(b) - f32::from(a)) * t) as u8 };
        Color::new(
            mix(self.r, other.r),
            mix(self.g, other.g),
            mix(self.b, other.b),
        )
    }

    /// Pack as `0xRRGGBB`.
    pub fn to_u32(self) -> u32 {
        (u32::from(self.r) << 16) | (u32::from(self.g) << 8) | u32::from(self.b)
    }
}

/// The paper's three-band color coding: white below `0.4`, pink below
/// `0.8`, red at or above.
pub fn utilization_color(utilization: f64) -> Color {
    if utilization >= 0.8 {
        Color::RED
    } else if utilization >= 0.4 {
        Color::PINK
    } else {
        Color::WHITE
    }
}

/// A continuous white→pink→red ramp for smoother displays.
pub fn utilization_ramp(utilization: f64) -> Color {
    let u = utilization.clamp(0.0, 1.0) as f32;
    if u < 0.5 {
        Color::WHITE.lerp(Color::PINK, u * 2.0)
    } else {
        Color::PINK.lerp(Color::RED, (u - 0.5) * 2.0)
    }
}

/// The paper's width coding: line width proportional to utilization,
/// within `[min_width, max_width]`.
pub fn utilization_width(utilization: f64, min_width: f32, max_width: f32) -> f32 {
    min_width + (max_width - min_width) * (utilization.clamp(0.0, 1.0) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bands() {
        assert_eq!(utilization_color(0.0), Color::WHITE);
        assert_eq!(utilization_color(0.39), Color::WHITE);
        assert_eq!(utilization_color(0.4), Color::PINK);
        assert_eq!(utilization_color(0.79), Color::PINK);
        assert_eq!(utilization_color(0.8), Color::RED);
        assert_eq!(utilization_color(1.0), Color::RED);
    }

    #[test]
    fn ramp_is_monotone_in_redness() {
        let lo = utilization_ramp(0.1);
        let hi = utilization_ramp(0.9);
        assert!(hi.g < lo.g, "green must fall as utilization rises");
        assert_eq!(utilization_ramp(-1.0), Color::WHITE);
        assert_eq!(utilization_ramp(2.0), Color::RED);
    }

    #[test]
    fn width_coding_proportional() {
        assert_eq!(utilization_width(0.0, 1.0, 9.0), 1.0);
        assert_eq!(utilization_width(1.0, 1.0, 9.0), 9.0);
        assert_eq!(utilization_width(0.5, 1.0, 9.0), 5.0);
        assert_eq!(utilization_width(7.0, 1.0, 9.0), 9.0); // clamped
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(Color::BLACK.lerp(Color::WHITE, 0.0), Color::BLACK);
        assert_eq!(Color::BLACK.lerp(Color::WHITE, 1.0), Color::WHITE);
        let mid = Color::BLACK.lerp(Color::WHITE, 0.5);
        assert!(mid.r > 120 && mid.r < 135);
    }

    #[test]
    fn pack_u32() {
        assert_eq!(Color::new(0x12, 0x34, 0x56).to_u32(), 0x123456);
    }
}
