//! A retained-mode scene graph with dirty tracking.
//!
//! Display objects draw themselves into a [`Scene`]; the refresh engine
//! only touches nodes whose database objects changed, and renderers can
//! ask which nodes are dirty (incremental redraw — the paper's concern
//! that "a simple user action ... may be unexpectedly delayed" § 2.2 is
//! about exactly this path staying cheap).

use crate::color::Color;
use crate::geom::{Point, Rect};
use std::collections::HashMap;

/// Identifier of a scene node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

/// What a node draws.
#[derive(Clone, Debug, PartialEq)]
pub enum Shape {
    /// A filled rectangle with optional border.
    Rect {
        /// Geometry.
        rect: Rect,
        /// Fill color.
        fill: Color,
        /// Border color, if any.
        border: Option<Color>,
    },
    /// A line segment with width coding.
    Line {
        /// Start point.
        from: Point,
        /// End point.
        to: Point,
        /// Stroke color.
        color: Color,
        /// Stroke width in pixels.
        width: f32,
    },
    /// A text label anchored at a point.
    Text {
        /// Anchor (top-left).
        at: Point,
        /// The text.
        text: String,
        /// Text color.
        color: Color,
    },
}

impl Shape {
    /// Conservative bounding box.
    pub fn bounds(&self) -> Rect {
        match self {
            Shape::Rect { rect, .. } => *rect,
            Shape::Line {
                from, to, width, ..
            } => {
                let x0 = from.x.min(to.x) - width / 2.0;
                let y0 = from.y.min(to.y) - width / 2.0;
                let x1 = from.x.max(to.x) + width / 2.0;
                let y1 = from.y.max(to.y) + width / 2.0;
                Rect::new(x0, y0, x1 - x0, y1 - y0)
            }
            Shape::Text { at, text, .. } => Rect::new(at.x, at.y, text.len() as f32 * 8.0, 12.0),
        }
    }
}

/// One node of the scene.
#[derive(Clone, Debug, PartialEq)]
pub struct SceneNode {
    /// Node id.
    pub id: NodeId,
    /// Draw order (higher = on top).
    pub z: i32,
    /// The shape.
    pub shape: Shape,
}

/// A retained scene: nodes with z-order and dirty tracking.
#[derive(Debug, Default)]
pub struct Scene {
    nodes: HashMap<NodeId, SceneNode>,
    dirty: Vec<NodeId>,
    next_id: u64,
    /// Generation counter: bumps on every mutation.
    version: u64,
}

impl Scene {
    /// An empty scene.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the scene is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Monotone mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Add a shape at z-order `z`; returns the node id.
    pub fn add(&mut self, shape: Shape, z: i32) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(id, SceneNode { id, z, shape });
        self.dirty.push(id);
        self.version += 1;
        id
    }

    /// Replace a node's shape (marks it dirty). Returns false if the node
    /// does not exist.
    pub fn update(&mut self, id: NodeId, shape: Shape) -> bool {
        match self.nodes.get_mut(&id) {
            Some(node) => {
                node.shape = shape;
                self.dirty.push(id);
                self.version += 1;
                true
            }
            None => false,
        }
    }

    /// Remove a node.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let removed = self.nodes.remove(&id).is_some();
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Fetch a node.
    pub fn get(&self, id: NodeId) -> Option<&SceneNode> {
        self.nodes.get(&id)
    }

    /// Nodes in draw order (z ascending, then id for determinism).
    pub fn draw_order(&self) -> Vec<&SceneNode> {
        let mut nodes: Vec<&SceneNode> = self.nodes.values().collect();
        nodes.sort_by_key(|n| (n.z, n.id));
        nodes
    }

    /// Drain the dirty list (ids may repeat if updated twice; removed
    /// nodes are filtered out).
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .dirty
            .drain(..)
            .filter(|id| self.nodes.contains_key(id))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Topmost node whose bounds contain `p` (hit testing for
    /// point-and-click interaction, § 1 of the paper).
    pub fn hit_test(&self, p: Point) -> Option<NodeId> {
        self.draw_order()
            .into_iter()
            .rev()
            .find(|n| n.shape.bounds().contains(p))
            .map(|n| n.id)
    }

    /// Union of all node bounds.
    pub fn bounds(&self) -> Option<Rect> {
        let mut iter = self.nodes.values().map(|n| n.shape.bounds());
        let first = iter.next()?;
        Some(iter.fold(first, |acc, b| {
            let x0 = acc.x.min(b.x);
            let y0 = acc.y.min(b.y);
            let x1 = (acc.x + acc.w).max(b.x + b.w);
            let y1 = (acc.y + acc.h).max(b.y + b.h);
            Rect::new(x0, y0, x1 - x0, y1 - y0)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x: f32, w: f32) -> Shape {
        Shape::Rect {
            rect: Rect::new(x, 0.0, w, 10.0),
            fill: Color::WHITE,
            border: None,
        }
    }

    #[test]
    fn add_update_remove() {
        let mut s = Scene::new();
        let id = s.add(rect(0.0, 10.0), 0);
        assert_eq!(s.len(), 1);
        assert!(s.update(id, rect(5.0, 10.0)));
        assert_eq!(
            s.get(id).unwrap().shape.bounds(),
            Rect::new(5.0, 0.0, 10.0, 10.0)
        );
        assert!(s.remove(id));
        assert!(!s.update(id, rect(0.0, 1.0)));
        assert!(s.is_empty());
    }

    #[test]
    fn dirty_tracking_dedupes_and_filters() {
        let mut s = Scene::new();
        let a = s.add(rect(0.0, 1.0), 0);
        let b = s.add(rect(1.0, 1.0), 0);
        s.update(a, rect(2.0, 1.0));
        s.remove(b);
        let dirty = s.take_dirty();
        assert_eq!(dirty, vec![a]);
        assert!(s.take_dirty().is_empty());
    }

    #[test]
    fn draw_order_by_z_then_id() {
        let mut s = Scene::new();
        let low = s.add(rect(0.0, 1.0), -1);
        let hi = s.add(rect(0.0, 1.0), 5);
        let mid = s.add(rect(0.0, 1.0), 0);
        let order: Vec<NodeId> = s.draw_order().iter().map(|n| n.id).collect();
        assert_eq!(order, vec![low, mid, hi]);
    }

    #[test]
    fn hit_test_topmost_wins() {
        let mut s = Scene::new();
        let bottom = s.add(rect(0.0, 100.0), 0);
        let top = s.add(rect(0.0, 10.0), 1);
        assert_eq!(s.hit_test(Point::new(5.0, 5.0)), Some(top));
        assert_eq!(s.hit_test(Point::new(50.0, 5.0)), Some(bottom));
        assert_eq!(s.hit_test(Point::new(500.0, 5.0)), None);
    }

    #[test]
    fn line_and_text_bounds() {
        let line = Shape::Line {
            from: Point::new(10.0, 10.0),
            to: Point::new(0.0, 0.0),
            color: Color::RED,
            width: 2.0,
        };
        let b = line.bounds();
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        let text = Shape::Text {
            at: Point::new(0.0, 0.0),
            text: "hello".into(),
            color: Color::BLACK,
        };
        assert!(text.bounds().w >= 40.0);
    }

    #[test]
    fn scene_bounds_union() {
        let mut s = Scene::new();
        assert!(s.bounds().is_none());
        s.add(rect(0.0, 10.0), 0);
        s.add(rect(90.0, 10.0), 0);
        assert_eq!(s.bounds().unwrap(), Rect::new(0.0, 0.0, 100.0, 10.0));
    }
}
