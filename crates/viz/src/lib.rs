//! Headless visualization substrate.
//!
//! The paper's prototype rendered network hardware hierarchies with two
//! visualization techniques: the **Tree-Map** (Johnson & Shneiderman) and
//! the **PDQ Tree-browser** (Kumar, Plaisant & Shneiderman) — both cited
//! in § 4. This crate reimplements those layouts plus the supporting
//! machinery, without a window system: "rendering" produces geometry in a
//! scene graph and, when wanted, pixels/characters via the PPM/ASCII
//! renderers. Latency and consistency semantics are the same as a real
//! GUI; only the final blit is missing.
//!
//! * [`geom`] — rectangles, points, insets;
//! * [`color`] — RGB colors and the paper's utilization color coding
//!   (§ 2.1: red/pink/white for high/moderate/low utilization) plus
//!   continuous ramps and width coding;
//! * [`scene`] — retained-mode scene graph with dirty tracking;
//! * [`treemap`] — slice-and-dice and squarified treemap layouts;
//! * [`pdq`] — the PDQ tree-browser: leveled tree layout with dynamic
//!   query filters and pruning;
//! * [`graph`] — simple deterministic network-graph layouts (circle,
//!   grid, force-refined);
//! * [`render`] — ASCII and PPM rasterizers for scenes.

pub mod color;
pub mod geom;
pub mod graph;
pub mod pdq;
pub mod render;
pub mod scene;
pub mod treemap;

pub use color::{utilization_color, utilization_width, Color};
pub use geom::{Point, Rect};
pub use scene::{NodeId, Scene, SceneNode, Shape};
pub use treemap::{slice_and_dice, squarify, TreeNode};
