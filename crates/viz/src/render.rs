//! Rasterizers: scenes to pixels (PPM) or characters (ASCII).
//!
//! These stand in for the X11 blit of the paper's prototype. The PPM
//! renderer produces real images (examples write them next to their
//! output); the ASCII renderer makes displays observable in terminals and
//! assertable in tests.

use crate::color::Color;
use crate::geom::Point;
use crate::scene::{Scene, Shape};

/// A 24-bit RGB framebuffer.
pub struct PpmRenderer {
    width: usize,
    height: usize,
    pixels: Vec<Color>,
}

impl PpmRenderer {
    /// A `width` x `height` framebuffer cleared to black.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            pixels: vec![Color::BLACK; width * height],
        }
    }

    /// Framebuffer width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Framebuffer height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Read one pixel (None outside).
    pub fn pixel(&self, x: usize, y: usize) -> Option<Color> {
        (x < self.width && y < self.height).then(|| self.pixels[y * self.width + x])
    }

    fn set(&mut self, x: i64, y: i64, c: Color) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.pixels[y as usize * self.width + x as usize] = c;
        }
    }

    /// Rasterize a whole scene in draw order.
    pub fn draw_scene(&mut self, scene: &Scene) {
        for node in scene.draw_order() {
            self.draw_shape(&node.shape);
        }
    }

    /// Rasterize one shape.
    pub fn draw_shape(&mut self, shape: &Shape) {
        match shape {
            Shape::Rect { rect, fill, border } => {
                let (x0, y0) = (rect.x as i64, rect.y as i64);
                let (x1, y1) = ((rect.x + rect.w) as i64, (rect.y + rect.h) as i64);
                for y in y0..y1 {
                    for x in x0..x1 {
                        self.set(x, y, *fill);
                    }
                }
                if let Some(b) = border {
                    for x in x0..x1 {
                        self.set(x, y0, *b);
                        self.set(x, y1 - 1, *b);
                    }
                    for y in y0..y1 {
                        self.set(x0, y, *b);
                        self.set(x1 - 1, y, *b);
                    }
                }
            }
            Shape::Line {
                from,
                to,
                color,
                width,
            } => self.draw_line(*from, *to, *color, *width),
            Shape::Text { at, text, color } => {
                // Headless text: a tick per character along the baseline
                // (enough to observe presence and extent).
                for (i, _) in text.chars().enumerate() {
                    self.set(at.x as i64 + i as i64 * 8, at.y as i64, *color);
                }
            }
        }
    }

    fn draw_line(&mut self, from: Point, to: Point, color: Color, width: f32) {
        // Bresenham over the center line, thickened perpendicular.
        let (mut x0, mut y0) = (from.x as i64, from.y as i64);
        let (x1, y1) = (to.x as i64, to.y as i64);
        let dx = (x1 - x0).abs();
        let dy = -(y1 - y0).abs();
        let sx = if x0 < x1 { 1 } else { -1 };
        let sy = if y0 < y1 { 1 } else { -1 };
        let mut err = dx + dy;
        let half = (width / 2.0).max(0.0) as i64;
        loop {
            for ox in -half..=half {
                for oy in -half..=half {
                    self.set(x0 + ox, y0 + oy, color);
                }
            }
            if x0 == x1 && y0 == y1 {
                break;
            }
            let e2 = 2 * err;
            if e2 >= dy {
                err += dy;
                x0 += sx;
            }
            if e2 <= dx {
                err += dx;
                y0 += sy;
            }
        }
    }

    /// Serialize as a binary PPM (P6) image.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.reserve(self.pixels.len() * 3);
        for p in &self.pixels {
            out.extend_from_slice(&[p.r, p.g, p.b]);
        }
        out
    }

    /// Count pixels exactly equal to `c` (test helper).
    pub fn count_pixels(&self, c: Color) -> usize {
        self.pixels.iter().filter(|&&p| p == c).count()
    }
}

/// A character-cell renderer for terminal displays.
pub struct AsciiRenderer {
    width: usize,
    height: usize,
    cells: Vec<char>,
}

impl AsciiRenderer {
    /// A `width` x `height` character grid of spaces.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            cells: vec![' '; width * height],
        }
    }

    fn set(&mut self, x: i64, y: i64, ch: char) {
        if x >= 0 && y >= 0 && (x as usize) < self.width && (y as usize) < self.height {
            self.cells[y as usize * self.width + x as usize] = ch;
        }
    }

    /// Map a utilization-style color to a shade character.
    fn shade(c: Color) -> char {
        match c {
            Color::RED => '#',
            Color::PINK => '+',
            Color::WHITE => '.',
            Color::MARKED => '!',
            _ => 'o',
        }
    }

    /// Rasterize a scene scaled from `scale` scene units per cell.
    pub fn draw_scene(&mut self, scene: &Scene, scale: f32) {
        let s = scale.max(0.0001);
        for node in scene.draw_order() {
            match &node.shape {
                Shape::Rect { rect, fill, .. } => {
                    let (x0, y0) = ((rect.x / s) as i64, (rect.y / s) as i64);
                    let (x1, y1) = (
                        ((rect.x + rect.w) / s).ceil() as i64,
                        ((rect.y + rect.h) / s).ceil() as i64,
                    );
                    for y in y0..y1 {
                        for x in x0..x1 {
                            self.set(x, y, Self::shade(*fill));
                        }
                    }
                }
                Shape::Line {
                    from, to, color, ..
                } => {
                    // Coarse line: sample along the segment.
                    let steps = (from.distance(*to) / s).ceil().max(1.0) as usize;
                    for i in 0..=steps {
                        let t = i as f32 / steps as f32;
                        let x = (from.x + (to.x - from.x) * t) / s;
                        let y = (from.y + (to.y - from.y) * t) / s;
                        self.set(x as i64, y as i64, Self::shade(*color));
                    }
                }
                Shape::Text { at, text, .. } => {
                    for (i, ch) in text.chars().enumerate() {
                        self.set((at.x / s) as i64 + i as i64, (at.y / s) as i64, ch);
                    }
                }
            }
        }
    }

    /// The grid as newline-joined rows.
    pub fn to_string_grid(&self) -> String {
        let mut out = String::with_capacity((self.width + 1) * self.height);
        for y in 0..self.height {
            out.extend(&self.cells[y * self.width..(y + 1) * self.width]);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Rect;

    #[test]
    fn ppm_rect_fill_and_border() {
        let mut r = PpmRenderer::new(20, 20);
        r.draw_shape(&Shape::Rect {
            rect: Rect::new(5.0, 5.0, 10.0, 10.0),
            fill: Color::PINK,
            border: Some(Color::RED),
        });
        assert_eq!(r.pixel(10, 10), Some(Color::PINK));
        assert_eq!(r.pixel(5, 5), Some(Color::RED));
        assert_eq!(r.pixel(0, 0), Some(Color::BLACK));
        assert_eq!(r.count_pixels(Color::RED), 4 * 10 - 4);
    }

    #[test]
    fn ppm_line_hits_endpoints() {
        let mut r = PpmRenderer::new(30, 30);
        r.draw_shape(&Shape::Line {
            from: Point::new(0.0, 0.0),
            to: Point::new(29.0, 29.0),
            color: Color::WHITE,
            width: 1.0,
        });
        assert_eq!(r.pixel(0, 0), Some(Color::WHITE));
        assert_eq!(r.pixel(29, 29), Some(Color::WHITE));
        assert_eq!(r.pixel(15, 15), Some(Color::WHITE));
        assert!(r.count_pixels(Color::WHITE) >= 30);
    }

    #[test]
    fn ppm_line_width_thickens() {
        let thin = {
            let mut r = PpmRenderer::new(30, 30);
            r.draw_shape(&Shape::Line {
                from: Point::new(0.0, 15.0),
                to: Point::new(29.0, 15.0),
                color: Color::RED,
                width: 1.0,
            });
            r.count_pixels(Color::RED)
        };
        let thick = {
            let mut r = PpmRenderer::new(30, 30);
            r.draw_shape(&Shape::Line {
                from: Point::new(0.0, 15.0),
                to: Point::new(29.0, 15.0),
                color: Color::RED,
                width: 6.0,
            });
            r.count_pixels(Color::RED)
        };
        assert!(
            thick >= thin * 4,
            "width coding must be visible: {thin} vs {thick}"
        );
    }

    #[test]
    fn ppm_header_and_size() {
        let r = PpmRenderer::new(4, 3);
        let ppm = r.to_ppm();
        assert!(ppm.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(ppm.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn draw_order_respects_z() {
        let mut scene = Scene::new();
        scene.add(
            Shape::Rect {
                rect: Rect::new(0.0, 0.0, 10.0, 10.0),
                fill: Color::WHITE,
                border: None,
            },
            0,
        );
        scene.add(
            Shape::Rect {
                rect: Rect::new(0.0, 0.0, 10.0, 10.0),
                fill: Color::RED,
                border: None,
            },
            1,
        );
        let mut r = PpmRenderer::new(10, 10);
        r.draw_scene(&scene);
        assert_eq!(r.pixel(5, 5), Some(Color::RED));
    }

    #[test]
    fn ascii_shades_utilization() {
        let mut scene = Scene::new();
        scene.add(
            Shape::Rect {
                rect: Rect::new(0.0, 0.0, 40.0, 20.0),
                fill: Color::RED,
                border: None,
            },
            0,
        );
        let mut a = AsciiRenderer::new(20, 10);
        a.draw_scene(&scene, 4.0);
        let grid = a.to_string_grid();
        assert!(grid.contains('#'));
        assert_eq!(grid.lines().count(), 10);
        assert!(grid.lines().all(|l| l.chars().count() == 20));
    }

    #[test]
    fn ascii_text_visible() {
        let mut scene = Scene::new();
        scene.add(
            Shape::Text {
                at: Point::new(0.0, 0.0),
                text: "net".into(),
                color: Color::WHITE,
            },
            0,
        );
        let mut a = AsciiRenderer::new(10, 2);
        a.draw_scene(&scene, 1.0);
        assert!(a.to_string_grid().contains("net"));
    }
}
