//! The PDQ Tree-browser: multi-level dynamic queries and pruning.
//!
//! Reference \[9\] of the paper (Kumar, Plaisant, Shneiderman): browse a
//! large hierarchy by laying each tree level out as a column, attaching
//! *dynamic query* range filters to individual levels, and *pruning*
//! subtrees that contain no matching results so the display stays small.
//!
//! The browser here is headless: [`PdqBrowser::layout`] computes the
//! visible node set and its geometry; the display layer draws it.

use crate::geom::{Point, Rect};
use std::collections::HashMap;

/// One node of the browsed hierarchy.
#[derive(Clone, Debug)]
pub struct PdqNode<T> {
    /// Caller payload (e.g. an OID).
    pub data: T,
    /// Display label.
    pub label: String,
    /// Numeric attributes the dynamic queries filter on.
    pub attrs: HashMap<String, f64>,
    /// Children.
    pub children: Vec<PdqNode<T>>,
}

impl<T> PdqNode<T> {
    /// Construct a node.
    pub fn new(data: T, label: impl Into<String>) -> Self {
        Self {
            data,
            label: label.into(),
            attrs: HashMap::new(),
            children: Vec::new(),
        }
    }

    /// Builder: add an attribute.
    pub fn with_attr(mut self, name: impl Into<String>, value: f64) -> Self {
        self.attrs.insert(name.into(), value);
        self
    }

    /// Builder: add children.
    pub fn with_children(mut self, children: Vec<PdqNode<T>>) -> Self {
        self.children = children;
        self
    }

    /// Depth of the tree rooted here.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(PdqNode::depth).max().unwrap_or(0)
    }
}

/// A range filter on one attribute (the "dynamic query slider").
#[derive(Clone, Debug, PartialEq)]
pub struct RangeFilter {
    /// Attribute name.
    pub attr: String,
    /// Inclusive lower bound.
    pub min: f64,
    /// Inclusive upper bound.
    pub max: f64,
}

impl RangeFilter {
    /// Construct a filter.
    pub fn new(attr: impl Into<String>, min: f64, max: f64) -> Self {
        Self {
            attr: attr.into(),
            min,
            max,
        }
    }

    /// Whether a node passes (missing attributes fail).
    pub fn matches<T>(&self, node: &PdqNode<T>) -> bool {
        node.attrs
            .get(&self.attr)
            .is_some_and(|&v| v >= self.min && v <= self.max)
    }
}

/// A laid-out visible node.
#[derive(Clone, Debug)]
pub struct PdqCell<T: Clone> {
    /// Payload.
    pub data: T,
    /// Label.
    pub label: String,
    /// Assigned rectangle (within its level's column).
    pub rect: Rect,
    /// Tree level (root = 0).
    pub level: usize,
}

/// A parent→child connector.
#[derive(Clone, Debug, PartialEq)]
pub struct PdqEdge {
    /// Parent cell center-right.
    pub from: Point,
    /// Child cell center-left.
    pub to: Point,
}

/// The computed browser view.
#[derive(Clone, Debug)]
pub struct PdqLayout<T: Clone> {
    /// Visible nodes with geometry.
    pub cells: Vec<PdqCell<T>>,
    /// Connectors between visible parents and children.
    pub edges: Vec<PdqEdge>,
    /// Nodes hidden by filters/pruning.
    pub pruned_count: usize,
}

/// The PDQ tree-browser configuration.
#[derive(Clone, Debug, Default)]
pub struct PdqBrowser {
    /// Per-level dynamic query filters (level → conjunctive filters).
    pub filters: HashMap<usize, Vec<RangeFilter>>,
    /// When set, hide subtrees with no matching leaf (the browser's
    /// pruning mode).
    pub prune: bool,
}

impl PdqBrowser {
    /// A browser with no filters and pruning off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a filter to a level.
    pub fn add_filter(&mut self, level: usize, filter: RangeFilter) {
        self.filters.entry(level).or_default().push(filter);
    }

    /// Remove all filters on a level.
    pub fn clear_level(&mut self, level: usize) {
        self.filters.remove(&level);
    }

    fn node_matches<T>(&self, node: &PdqNode<T>, level: usize) -> bool {
        self.filters
            .get(&level)
            .map(|fs| fs.iter().all(|f| f.matches(node)))
            .unwrap_or(true)
    }

    /// Whether the subtree rooted at `node` (at `level`) contains a leaf
    /// whose whole root-path matches.
    fn subtree_has_match<T>(&self, node: &PdqNode<T>, level: usize) -> bool {
        if !self.node_matches(node, level) {
            return false;
        }
        if node.children.is_empty() {
            return true;
        }
        node.children
            .iter()
            .any(|c| self.subtree_has_match(c, level + 1))
    }

    /// Compute the visible layout inside `canvas`. Levels become columns
    /// of equal width; visible nodes at each level are stacked in DFS
    /// order.
    pub fn layout<T: Clone>(&self, root: &PdqNode<T>, canvas: Rect) -> PdqLayout<T> {
        let depth = root.depth();
        let col_w = canvas.w / depth as f32;

        // Collect visible nodes per level in DFS order, remembering
        // parent indices for edges.
        struct Visible<T: Clone> {
            data: T,
            label: String,
            level: usize,
            parent: Option<usize>, // index into `visible`
        }
        let mut visible: Vec<Visible<T>> = Vec::new();
        let mut pruned = 0usize;

        fn walk<T: Clone>(
            browser: &PdqBrowser,
            node: &PdqNode<T>,
            level: usize,
            parent: Option<usize>,
            visible: &mut Vec<Visible<T>>,
            pruned: &mut usize,
        ) {
            let shown = if browser.prune {
                browser.subtree_has_match(node, level)
            } else {
                browser.node_matches(node, level)
            };
            if !shown {
                *pruned += node_count(node);
                return;
            }
            let idx = visible.len();
            visible.push(Visible {
                data: node.data.clone(),
                label: node.label.clone(),
                level,
                parent,
            });
            for child in &node.children {
                walk(browser, child, level + 1, Some(idx), visible, pruned);
            }
        }

        fn node_count<T>(node: &PdqNode<T>) -> usize {
            1 + node.children.iter().map(node_count).sum::<usize>()
        }

        walk(self, root, 0, None, &mut visible, &mut pruned);

        // Stack per level.
        let mut per_level: HashMap<usize, usize> = HashMap::new();
        for v in &visible {
            *per_level.entry(v.level).or_insert(0) += 1;
        }
        let mut slot: HashMap<usize, usize> = HashMap::new();
        let mut cells: Vec<PdqCell<T>> = Vec::with_capacity(visible.len());
        for v in &visible {
            let count = per_level[&v.level] as f32;
            let row_h = canvas.h / count;
            let i = slot.entry(v.level).or_insert(0);
            let rect = Rect::new(
                canvas.x + v.level as f32 * col_w,
                canvas.y + *i as f32 * row_h,
                col_w,
                row_h,
            )
            .inset((row_h * 0.05).min(4.0));
            *i += 1;
            cells.push(PdqCell {
                data: v.data.clone(),
                label: v.label.clone(),
                rect,
                level: v.level,
            });
        }

        let edges = visible
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                v.parent.map(|p| {
                    let pr = cells[p].rect;
                    let cr = cells[i].rect;
                    PdqEdge {
                        from: Point::new(pr.x + pr.w, pr.y + pr.h / 2.0),
                        to: Point::new(cr.x, cr.y + cr.h / 2.0),
                    }
                })
            })
            .collect();

        PdqLayout {
            cells,
            edges,
            pruned_count: pruned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANVAS: Rect = Rect::new(0.0, 0.0, 900.0, 600.0);

    /// site -> 2 racks -> devices with a "load" attribute.
    fn fixture() -> PdqNode<u32> {
        PdqNode::new(0, "site")
            .with_attr("load", 0.5)
            .with_children(vec![
                PdqNode::new(1, "rack-a")
                    .with_attr("load", 0.9)
                    .with_children(vec![
                        PdqNode::new(11, "dev-a1").with_attr("load", 0.95),
                        PdqNode::new(12, "dev-a2").with_attr("load", 0.2),
                    ]),
                PdqNode::new(2, "rack-b")
                    .with_attr("load", 0.1)
                    .with_children(vec![PdqNode::new(21, "dev-b1").with_attr("load", 0.05)]),
            ])
    }

    #[test]
    fn no_filters_shows_everything() {
        let b = PdqBrowser::new();
        let layout = b.layout(&fixture(), CANVAS);
        assert_eq!(layout.cells.len(), 6);
        assert_eq!(layout.edges.len(), 5);
        assert_eq!(layout.pruned_count, 0);
    }

    #[test]
    fn level_filter_hides_non_matching_subtrees() {
        let mut b = PdqBrowser::new();
        // Level 1 = racks: require load >= 0.5 → rack-b and its subtree
        // disappear.
        b.add_filter(1, RangeFilter::new("load", 0.5, 1.0));
        let layout = b.layout(&fixture(), CANVAS);
        let labels: Vec<&str> = layout.cells.iter().map(|c| c.label.as_str()).collect();
        assert!(labels.contains(&"rack-a"));
        assert!(!labels.contains(&"rack-b"));
        assert!(!labels.contains(&"dev-b1"));
        assert_eq!(layout.pruned_count, 2);
    }

    #[test]
    fn pruning_removes_branches_without_matching_leaves() {
        let mut b = PdqBrowser::new();
        b.prune = true;
        // Leaves (level 2) must have load >= 0.9: only dev-a1 matches, so
        // rack-b vanishes entirely and rack-a keeps one child.
        b.add_filter(2, RangeFilter::new("load", 0.9, 1.0));
        let layout = b.layout(&fixture(), CANVAS);
        let labels: Vec<&str> = layout.cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["site", "rack-a", "dev-a1"]);
        assert_eq!(layout.pruned_count, 3);
    }

    #[test]
    fn without_pruning_inner_nodes_stay() {
        let mut b = PdqBrowser::new();
        b.prune = false;
        b.add_filter(2, RangeFilter::new("load", 0.9, 1.0));
        let layout = b.layout(&fixture(), CANVAS);
        let labels: Vec<&str> = layout.cells.iter().map(|c| c.label.as_str()).collect();
        // Racks remain visible even though most of their leaves are
        // filtered.
        assert!(labels.contains(&"rack-b"));
        assert!(!labels.contains(&"dev-b1"));
    }

    #[test]
    fn columns_by_level_and_no_overlap_within_level() {
        let layout = PdqBrowser::new().layout(&fixture(), CANVAS);
        let col_w = CANVAS.w / 3.0;
        for c in &layout.cells {
            let expected_x = c.level as f32 * col_w;
            assert!(
                (c.rect.x - expected_x).abs() <= col_w,
                "cell {} in wrong column",
                c.label
            );
            assert!(CANVAS.contains_rect(c.rect, 0.5));
        }
        for i in 0..layout.cells.len() {
            for j in (i + 1)..layout.cells.len() {
                let (a, b) = (&layout.cells[i], &layout.cells[j]);
                if a.level == b.level {
                    assert!(
                        !a.rect.intersects(b.rect),
                        "{} overlaps {}",
                        a.label,
                        b.label
                    );
                }
            }
        }
    }

    #[test]
    fn edges_connect_adjacent_columns() {
        let layout = PdqBrowser::new().layout(&fixture(), CANVAS);
        for e in &layout.edges {
            assert!(e.to.x > e.from.x, "edge must flow left to right");
        }
    }

    #[test]
    fn missing_attr_fails_filter() {
        let mut b = PdqBrowser::new();
        b.add_filter(0, RangeFilter::new("nonexistent", 0.0, 1.0));
        let layout = b.layout(&fixture(), CANVAS);
        assert!(layout.cells.is_empty());
        assert_eq!(layout.pruned_count, 6);
    }

    #[test]
    fn filter_update_changes_view() {
        let mut b = PdqBrowser::new();
        b.prune = true;
        b.add_filter(2, RangeFilter::new("load", 0.9, 1.0));
        assert_eq!(b.layout(&fixture(), CANVAS).cells.len(), 3);
        b.clear_level(2);
        assert_eq!(b.layout(&fixture(), CANVAS).cells.len(), 6);
    }
}
