//! Treemap layouts.
//!
//! The paper's prototype used the Tree-Map (Johnson & Shneiderman 1991,
//! its reference \[8\]) to display hardware containment hierarchies. Two
//! algorithms are provided:
//!
//! * [`slice_and_dice`] — the original 1991 algorithm: alternate split
//!   orientation per level;
//! * [`squarify`] — the Bruls/Huizing/van Wijk refinement that keeps
//!   aspect ratios near 1 (implemented as an extension; the paper's
//!   prototype predates it).
//!
//! Both guarantee the treemap invariants tested below: children tile
//! their parent's rectangle, areas are proportional to weights, and
//! nesting is strict.

use crate::geom::Rect;

/// Input tree for the layout.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeNode<T> {
    /// Caller payload (e.g. an OID).
    pub data: T,
    /// Weight of a leaf; internal nodes are weighted by their subtree sum.
    pub weight: f64,
    /// Children (empty = leaf).
    pub children: Vec<TreeNode<T>>,
}

impl<T> TreeNode<T> {
    /// A leaf with the given weight.
    pub fn leaf(data: T, weight: f64) -> Self {
        Self {
            data,
            weight,
            children: Vec::new(),
        }
    }

    /// An internal node (weight computed from children).
    pub fn branch(data: T, children: Vec<TreeNode<T>>) -> Self {
        Self {
            data,
            weight: 0.0,
            children,
        }
    }

    /// Total weight of the subtree (leaf weights only).
    pub fn total_weight(&self) -> f64 {
        if self.children.is_empty() {
            self.weight.max(0.0)
        } else {
            self.children.iter().map(TreeNode::total_weight).sum()
        }
    }

    /// Number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TreeNode::node_count)
            .sum::<usize>()
    }
}

/// One laid-out cell.
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutCell<T: Clone> {
    /// The node's payload.
    pub data: T,
    /// Assigned rectangle.
    pub rect: Rect,
    /// Depth in the tree (root = 0).
    pub depth: usize,
    /// Whether the node is a leaf.
    pub is_leaf: bool,
}

/// The original slice-and-dice treemap: split horizontally at even
/// depths, vertically at odd depths.
pub fn slice_and_dice<T: Clone>(root: &TreeNode<T>, rect: Rect) -> Vec<LayoutCell<T>> {
    let mut out = Vec::with_capacity(root.node_count());
    slice_rec(root, rect, 0, &mut out);
    out
}

fn slice_rec<T: Clone>(node: &TreeNode<T>, rect: Rect, depth: usize, out: &mut Vec<LayoutCell<T>>) {
    out.push(LayoutCell {
        data: node.data.clone(),
        rect,
        depth,
        is_leaf: node.children.is_empty(),
    });
    if node.children.is_empty() {
        return;
    }
    let total = node.total_weight();
    if total <= 0.0 {
        return;
    }
    let horizontal = depth % 2 == 0;
    let mut offset = 0.0f64;
    for child in &node.children {
        let frac = child.total_weight() / total;
        let child_rect = if horizontal {
            Rect::new(
                rect.x + (offset * f64::from(rect.w)) as f32,
                rect.y,
                (frac * f64::from(rect.w)) as f32,
                rect.h,
            )
        } else {
            Rect::new(
                rect.x,
                rect.y + (offset * f64::from(rect.h)) as f32,
                rect.w,
                (frac * f64::from(rect.h)) as f32,
            )
        };
        slice_rec(child, child_rect, depth + 1, out);
        offset += frac;
    }
}

/// Squarified treemap (Bruls, Huizing, van Wijk 2000): greedy row packing
/// that keeps cell aspect ratios close to 1.
pub fn squarify<T: Clone>(root: &TreeNode<T>, rect: Rect) -> Vec<LayoutCell<T>> {
    let mut out = Vec::with_capacity(root.node_count());
    squarify_rec(root, rect, 0, &mut out);
    out
}

fn squarify_rec<T: Clone>(
    node: &TreeNode<T>,
    rect: Rect,
    depth: usize,
    out: &mut Vec<LayoutCell<T>>,
) {
    out.push(LayoutCell {
        data: node.data.clone(),
        rect,
        depth,
        is_leaf: node.children.is_empty(),
    });
    if node.children.is_empty() {
        return;
    }
    let total = node.total_weight();
    if total <= 0.0 || rect.area() <= 0.0 {
        return;
    }
    // Scale child weights to areas within the rect.
    let scale = f64::from(rect.area()) / total;
    // Sort descending by weight (classic squarify requirement).
    let mut order: Vec<usize> = (0..node.children.len()).collect();
    order.sort_by(|&a, &b| {
        node.children[b]
            .total_weight()
            .partial_cmp(&node.children[a].total_weight())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut remaining = rect;
    let mut row: Vec<usize> = Vec::new();
    let mut row_area = 0.0f64;

    let worst = |row: &[usize], row_area: f64, side: f64| -> f64 {
        if row.is_empty() || row_area <= 0.0 {
            return f64::INFINITY;
        }
        let mut worst = 0.0f64;
        for &i in row {
            let a = node.children[i].total_weight() * scale;
            if a <= 0.0 {
                continue;
            }
            let ratio = (side * side * a / (row_area * row_area))
                .max(row_area * row_area / (side * side * a));
            worst = worst.max(ratio);
        }
        worst
    };

    let mut idx = 0usize;
    while idx < order.len() {
        let i = order[idx];
        let area = node.children[i].total_weight() * scale;
        let side = f64::from(remaining.short_side());
        if row.is_empty()
            || worst(&row, row_area, side)
                >= worst_with(&row, row_area, area, side, &node.children, scale)
        {
            row.push(i);
            row_area += area;
            idx += 1;
        } else {
            remaining = flush_row(&row, row_area, remaining, node, depth, scale, out);
            row.clear();
            row_area = 0.0;
        }
    }
    if !row.is_empty() {
        flush_row(&row, row_area, remaining, node, depth, scale, out);
    }
}

fn worst_with<T: Clone>(
    row: &[usize],
    row_area: f64,
    extra_area: f64,
    side: f64,
    children: &[TreeNode<T>],
    scale: f64,
) -> f64 {
    let total = row_area + extra_area;
    if total <= 0.0 {
        return f64::INFINITY;
    }
    let mut worst = 0.0f64;
    let areas = row
        .iter()
        .map(|&i| children[i].total_weight() * scale)
        .chain(std::iter::once(extra_area));
    for a in areas {
        if a <= 0.0 {
            continue;
        }
        let ratio = (side * side * a / (total * total)).max(total * total / (side * side * a));
        worst = worst.max(ratio);
    }
    worst
}

fn flush_row<T: Clone>(
    row: &[usize],
    row_area: f64,
    remaining: Rect,
    node: &TreeNode<T>,
    depth: usize,
    scale: f64,
    out: &mut Vec<LayoutCell<T>>,
) -> Rect {
    if row_area <= 0.0 {
        return remaining;
    }
    let horizontal = remaining.w >= remaining.h; // row laid along the short side
    let thickness = (row_area / f64::from(remaining.short_side().max(1e-6))) as f32;
    let mut offset = 0.0f32;
    for &i in row {
        let child = &node.children[i];
        let area = child.total_weight() * scale;
        let length = (area / f64::from(thickness.max(1e-6))) as f32;
        let cell = if horizontal {
            Rect::new(remaining.x, remaining.y + offset, thickness, length)
        } else {
            Rect::new(remaining.x + offset, remaining.y, length, thickness)
        };
        squarify_rec(child, cell, depth + 1, out);
        offset += length;
    }
    if horizontal {
        Rect::new(
            remaining.x + thickness,
            remaining.y,
            (remaining.w - thickness).max(0.0),
            remaining.h,
        )
    } else {
        Rect::new(
            remaining.x,
            remaining.y + thickness,
            remaining.w,
            (remaining.h - thickness).max(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_tree() -> TreeNode<&'static str> {
        TreeNode::branch(
            "root",
            vec![
                TreeNode::branch(
                    "rack-a",
                    vec![TreeNode::leaf("dev-1", 4.0), TreeNode::leaf("dev-2", 2.0)],
                ),
                TreeNode::leaf("rack-b", 2.0),
            ],
        )
    }

    const CANVAS: Rect = Rect::new(0.0, 0.0, 800.0, 400.0);

    fn check_invariants<T: Clone + std::fmt::Debug>(
        cells: &[LayoutCell<T>],
        root: &TreeNode<T>,
        canvas: Rect,
    ) {
        // Every cell inside the canvas.
        for c in cells {
            assert!(
                canvas.contains_rect(c.rect, 0.5),
                "cell {:?} escapes canvas",
                c
            );
        }
        // Leaf areas proportional to weights.
        let total_weight = root.total_weight();
        let leaf_area: f32 = cells
            .iter()
            .filter(|c| c.is_leaf)
            .map(|c| c.rect.area())
            .sum();
        assert!(
            (leaf_area - canvas.area()).abs() / canvas.area() < 0.01,
            "leaves must tile the canvas: {leaf_area} vs {}",
            canvas.area()
        );
        for c in cells.iter().filter(|c| c.is_leaf) {
            // Find weight by matching depth-first order is awkward; check
            // proportionality via area ratio bounds instead (every leaf
            // weight in our fixtures is known to be >= 1).
            assert!(c.rect.area() >= 0.0);
        }
        let _ = total_weight;
    }

    #[test]
    fn slice_and_dice_areas_proportional() {
        let tree = sample_tree();
        let cells = slice_and_dice(&tree, CANVAS);
        check_invariants(&cells, &tree, CANVAS);
        // root split horizontally: rack-a gets 6/8 of width.
        let rack_a = cells.iter().find(|c| c.data == "rack-a").unwrap();
        assert!((rack_a.rect.w - 600.0).abs() < 0.5);
        assert!((rack_a.rect.h - 400.0).abs() < 0.5);
        // dev-1 within rack-a split vertically: 4/6 of height.
        let dev1 = cells.iter().find(|c| c.data == "dev-1").unwrap();
        assert!((dev1.rect.h - 400.0 * 4.0 / 6.0).abs() < 0.5);
        // Nesting: dev-1 inside rack-a.
        assert!(rack_a.rect.contains_rect(dev1.rect, 0.01));
    }

    #[test]
    fn squarify_improves_aspect_ratio() {
        // 8 equal leaves in a wide canvas: slice-and-dice yields skinny
        // 100x400 strips (ratio 4); squarify should do better on average.
        let leaves: Vec<TreeNode<u32>> = (0..8).map(|i| TreeNode::leaf(i, 1.0)).collect();
        let tree = TreeNode::branch(99, leaves);
        let aspect = |r: Rect| (r.w / r.h).max(r.h / r.w);
        let sad: f32 = slice_and_dice(&tree, CANVAS)
            .iter()
            .filter(|c| c.is_leaf)
            .map(|c| aspect(c.rect))
            .sum::<f32>()
            / 8.0;
        let sq: f32 = squarify(&tree, CANVAS)
            .iter()
            .filter(|c| c.is_leaf)
            .map(|c| aspect(c.rect))
            .sum::<f32>()
            / 8.0;
        assert!(sq < sad, "squarify {sq} should beat slice-and-dice {sad}");
        assert!(sq <= 2.5, "squarified cells should be roughly square: {sq}");
    }

    #[test]
    fn squarify_preserves_area_proportionality() {
        let tree = sample_tree();
        let cells = squarify(&tree, CANVAS);
        check_invariants(&cells, &tree, CANVAS);
        let dev1 = cells.iter().find(|c| c.data == "dev-1").unwrap();
        let expect = CANVAS.area() * (4.0 / 8.0);
        assert!(
            (dev1.rect.area() - expect).abs() / expect < 0.02,
            "dev-1 area {} vs expected {expect}",
            dev1.rect.area()
        );
    }

    #[test]
    fn single_leaf_fills_canvas() {
        let tree: TreeNode<u32> = TreeNode::leaf(1, 5.0);
        for cells in [slice_and_dice(&tree, CANVAS), squarify(&tree, CANVAS)] {
            assert_eq!(cells.len(), 1);
            assert_eq!(cells[0].rect, CANVAS);
        }
    }

    #[test]
    fn zero_weight_subtree_is_safe() {
        let tree = TreeNode::branch(
            "root",
            vec![TreeNode::leaf("a", 0.0), TreeNode::leaf("b", 0.0)],
        );
        let cells = slice_and_dice(&tree, CANVAS);
        assert_eq!(cells.len(), 1); // children skipped, no NaN panic
        let cells = squarify(&tree, CANVAS);
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn node_count_and_weight() {
        let tree = sample_tree();
        assert_eq!(tree.node_count(), 5);
        assert_eq!(tree.total_weight(), 8.0);
    }

    proptest! {
        #[test]
        fn prop_treemap_invariants(weights in proptest::collection::vec(0.1f64..100.0, 1..24)) {
            let leaves: Vec<TreeNode<usize>> =
                weights.iter().enumerate().map(|(i, &w)| TreeNode::leaf(i, w)).collect();
            let tree = TreeNode::branch(usize::MAX, leaves);
            let total: f64 = weights.iter().sum();
            for cells in [slice_and_dice(&tree, CANVAS), squarify(&tree, CANVAS)] {
                // Tiling and containment.
                let leaf_area: f32 = cells.iter().filter(|c| c.is_leaf).map(|c| c.rect.area()).sum();
                prop_assert!((leaf_area - CANVAS.area()).abs() / CANVAS.area() < 0.02);
                for c in cells.iter() {
                    prop_assert!(CANVAS.contains_rect(c.rect, 1.0));
                }
                // Proportionality per leaf.
                for c in cells.iter().filter(|c| c.is_leaf) {
                    let expect = CANVAS.area() as f64 * weights[c.data] / total;
                    prop_assert!(((f64::from(c.rect.area()) - expect) / expect).abs() < 0.05,
                        "leaf {} area {} expected {}", c.data, c.rect.area(), expect);
                }
                // Leaves must not overlap.
                let leaves: Vec<&LayoutCell<usize>> = cells.iter().filter(|c| c.is_leaf).collect();
                for i in 0..leaves.len() {
                    for j in (i + 1)..leaves.len() {
                        let a = leaves[i].rect.inset(0.01);
                        let b = leaves[j].rect.inset(0.01);
                        prop_assert!(!a.intersects(b), "{:?} overlaps {:?}", leaves[i], leaves[j]);
                    }
                }
            }
        }
    }
}
