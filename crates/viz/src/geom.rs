//! 2D geometry primitives.

/// A point in screen space.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Point {
    /// X coordinate.
    pub x: f32,
    /// Y coordinate.
    pub y: f32,
}

impl Point {
    /// Construct a point.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f32 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// An axis-aligned rectangle (origin at top-left).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: f32,
    /// Top edge.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl Rect {
    /// Construct a rectangle.
    pub const fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Self { x, y, w, h }
    }

    /// Area (`w * h`).
    pub fn area(self) -> f32 {
        self.w * self.h
    }

    /// Center point.
    pub fn center(self) -> Point {
        Point::new(self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// The shorter side length.
    pub fn short_side(self) -> f32 {
        self.w.min(self.h)
    }

    /// Whether `p` lies inside (inclusive of edges).
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.x && p.x <= self.x + self.w && p.y >= self.y && p.y <= self.y + self.h
    }

    /// Whether `other` lies fully within `self` (with `eps` tolerance).
    pub fn contains_rect(self, other: Rect, eps: f32) -> bool {
        other.x >= self.x - eps
            && other.y >= self.y - eps
            && other.x + other.w <= self.x + self.w + eps
            && other.y + other.h <= self.y + self.h + eps
    }

    /// Whether two rectangles overlap with positive area (touching edges
    /// do not count).
    pub fn intersects(self, other: Rect) -> bool {
        self.x < other.x + other.w
            && other.x < self.x + self.w
            && self.y < other.y + other.h
            && other.y < self.y + self.h
    }

    /// Shrink by `margin` on every side (clamped to non-negative size).
    pub fn inset(self, margin: f32) -> Rect {
        let w = (self.w - 2.0 * margin).max(0.0);
        let h = (self.h - 2.0 * margin).max(0.0);
        Rect::new(self.x + margin, self.y + margin, w, h)
    }

    /// Split horizontally at fraction `f` of the width, returning
    /// (left, right).
    pub fn split_h(self, f: f32) -> (Rect, Rect) {
        let w1 = self.w * f;
        (
            Rect::new(self.x, self.y, w1, self.h),
            Rect::new(self.x + w1, self.y, self.w - w1, self.h),
        )
    }

    /// Split vertically at fraction `f` of the height, returning
    /// (top, bottom).
    pub fn split_v(self, f: f32) -> (Rect, Rect) {
        let h1 = self.h * f;
        (
            Rect::new(self.x, self.y, self.w, h1),
            Rect::new(self.x, self.y + h1, self.w, self.h - h1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_center_contains() {
        let r = Rect::new(10.0, 20.0, 100.0, 50.0);
        assert_eq!(r.area(), 5000.0);
        assert_eq!(r.center(), Point::new(60.0, 45.0));
        assert!(r.contains(Point::new(10.0, 20.0)));
        assert!(r.contains(Point::new(110.0, 70.0)));
        assert!(!r.contains(Point::new(9.9, 20.0)));
    }

    #[test]
    fn splits_partition_area() {
        let r = Rect::new(0.0, 0.0, 100.0, 40.0);
        let (a, b) = r.split_h(0.25);
        assert_eq!(a.w, 25.0);
        assert_eq!(b.x, 25.0);
        assert!((a.area() + b.area() - r.area()).abs() < 1e-3);
        let (t, btm) = r.split_v(0.5);
        assert_eq!(t.h, 20.0);
        assert_eq!(btm.y, 20.0);
    }

    #[test]
    fn inset_clamps() {
        let r = Rect::new(0.0, 0.0, 10.0, 10.0);
        let i = r.inset(2.0);
        assert_eq!(i, Rect::new(2.0, 2.0, 6.0, 6.0));
        let collapsed = r.inset(6.0);
        assert_eq!(collapsed.w, 0.0);
        assert_eq!(collapsed.h, 0.0);
    }

    #[test]
    fn intersects_excludes_touching() {
        let a = Rect::new(0.0, 0.0, 10.0, 10.0);
        let b = Rect::new(10.0, 0.0, 10.0, 10.0);
        assert!(!a.intersects(b));
        let c = Rect::new(9.0, 9.0, 5.0, 5.0);
        assert!(a.intersects(c));
    }

    #[test]
    fn contains_rect_with_tolerance() {
        let outer = Rect::new(0.0, 0.0, 100.0, 100.0);
        let inner = Rect::new(0.0, 0.0, 100.00001, 50.0);
        assert!(outer.contains_rect(inner, 0.001));
        assert!(!outer.contains_rect(Rect::new(0.0, 0.0, 101.0, 50.0), 0.001));
    }

    #[test]
    fn point_distance() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }
}
