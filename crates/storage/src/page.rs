//! Slotted pages.
//!
//! Classic layout: a fixed header, a slot directory growing downward from
//! the header, and record payloads packed upward from the end of the page.
//! Deleted slots are tombstoned (never reused for a *different* record id
//! while the page lives, so record ids stay stable until explicit
//! compaction by the heap layer).
//!
//! ```text
//! +-----------+-----------------+......free......+----------+--------+
//! | header 24B| slot dir 4B/slot|                | rec N .. | rec 0  |
//! +-----------+-----------------+......free......+----------+--------+
//!                               ^free ends       ^free_ptr
//! ```

use displaydb_common::{DbError, DbResult, PageId, SlotId};

/// Size of every page in bytes.
pub const PAGE_SIZE: usize = 8192;

/// Byte size of the page header.
pub const HEADER_SIZE: usize = 24;

/// Byte size of one slot directory entry (offset u16 + len u16).
const SLOT_SIZE: usize = 4;

/// Largest record payload a single page can host.
pub const MAX_RECORD_LEN: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

// Header field offsets.
const OFF_PAGE_ID: usize = 0; // u64
const OFF_LSN: usize = 8; // u64
const OFF_SLOT_COUNT: usize = 16; // u16
const OFF_FREE_PTR: usize = 18; // u16: lowest offset of used record space
const OFF_FLAGS: usize = 20; // u16
const OFF_GARBAGE: usize = 22; // u16: dead record bytes reclaimable by compaction

/// Page flag: the page belongs to a heap file.
pub const FLAG_HEAP: u16 = 0x0001;

/// A fixed-size slotted page.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("page_id", &self.page_id())
            .field("slots", &self.slot_count())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Page {
    /// A zeroed page formatted as empty with the given id and flags.
    pub fn new(page_id: PageId, flags: u16) -> Self {
        let mut p = Self {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        };
        p.format(page_id, flags);
        p
    }

    /// Reinitialize as an empty page.
    pub fn format(&mut self, page_id: PageId, flags: u16) {
        self.data.fill(0);
        self.set_u64(OFF_PAGE_ID, page_id.raw());
        self.set_u16(OFF_FREE_PTR, PAGE_SIZE as u16);
        self.set_u16(OFF_FLAGS, flags);
    }

    /// Construct from raw bytes read off disk.
    pub fn from_bytes(bytes: &[u8]) -> DbResult<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(DbError::Corrupt(format!(
                "page must be {PAGE_SIZE} bytes, got {}",
                bytes.len()
            )));
        }
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        data.copy_from_slice(bytes);
        Ok(Self {
            data: data.try_into().unwrap(),
        })
    }

    /// Raw page bytes (for writing to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data[..]
    }

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn set_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    fn set_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// The page's self-recorded id.
    pub fn page_id(&self) -> PageId {
        PageId::new(self.get_u64(OFF_PAGE_ID))
    }

    /// Log sequence number of the last change (set by the WAL layer).
    pub fn lsn(&self) -> u64 {
        self.get_u64(OFF_LSN)
    }

    /// Set the page LSN.
    pub fn set_lsn(&mut self, lsn: u64) {
        self.set_u64(OFF_LSN, lsn);
    }

    /// Page flags.
    pub fn flags(&self) -> u16 {
        self.get_u16(OFF_FLAGS)
    }

    /// Number of slot directory entries (including tombstones).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(OFF_SLOT_COUNT)
    }

    fn free_ptr(&self) -> usize {
        self.get_u16(OFF_FREE_PTR) as usize
    }

    fn garbage(&self) -> usize {
        self.get_u16(OFF_GARBAGE) as usize
    }

    fn slot_entry(&self, slot: SlotId) -> (usize, usize) {
        let base = HEADER_SIZE + SLOT_SIZE * slot as usize;
        (self.get_u16(base) as usize, self.get_u16(base + 2) as usize)
    }

    fn set_slot_entry(&mut self, slot: SlotId, offset: usize, len: usize) {
        let base = HEADER_SIZE + SLOT_SIZE * slot as usize;
        self.set_u16(base, offset as u16);
        self.set_u16(base + 2, len as u16);
    }

    /// Contiguous free bytes between the slot directory and record space.
    pub fn free_space(&self) -> usize {
        let dir_end = HEADER_SIZE + SLOT_SIZE * self.slot_count() as usize;
        self.free_ptr().saturating_sub(dir_end)
    }

    /// Free bytes recoverable if the page were compacted, including dead
    /// record space.
    pub fn usable_space(&self) -> usize {
        self.free_space() + self.garbage()
    }

    /// Whether a record of `len` bytes could be inserted (possibly after
    /// compaction).
    pub fn can_insert(&self, len: usize) -> bool {
        if len > MAX_RECORD_LEN {
            return false;
        }
        // A new slot may be needed (worst case).
        self.usable_space() >= len + SLOT_SIZE
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_records(&self) -> usize {
        (0..self.slot_count())
            .filter(|&s| {
                let (off, _) = self.slot_entry(s);
                off != 0
            })
            .count()
    }

    /// Insert a record, compacting the page if fragmentation requires it.
    pub fn insert(&mut self, payload: &[u8]) -> DbResult<SlotId> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(DbError::PageFull);
        }
        let need = payload.len() + SLOT_SIZE;
        if self.free_space() < need {
            if self.usable_space() < need {
                return Err(DbError::PageFull);
            }
            self.compact();
            if self.free_space() < need {
                return Err(DbError::PageFull);
            }
        }
        let slot = self.slot_count();
        self.set_u16(OFF_SLOT_COUNT, slot + 1);
        let new_ptr = self.free_ptr() - payload.len();
        self.data[new_ptr..new_ptr + payload.len()].copy_from_slice(payload);
        self.set_u16(OFF_FREE_PTR, new_ptr as u16);
        self.set_slot_entry(slot, new_ptr, payload.len());
        Ok(slot)
    }

    /// Read a record.
    pub fn get(&self, slot: SlotId) -> DbResult<&[u8]> {
        if slot >= self.slot_count() {
            return Err(DbError::Corrupt(format!("slot {slot} out of range")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return Err(DbError::Corrupt(format!("slot {slot} is deleted")));
        }
        Ok(&self.data[off..off + len])
    }

    /// Whether `slot` holds a live record.
    pub fn is_live(&self, slot: SlotId) -> bool {
        slot < self.slot_count() && self.slot_entry(slot).0 != 0
    }

    /// Overwrite a record in place. Fails with [`DbError::PageFull`] if the
    /// new payload cannot fit even after compaction (the caller relocates
    /// to another page).
    pub fn update(&mut self, slot: SlotId, payload: &[u8]) -> DbResult<()> {
        if slot >= self.slot_count() {
            return Err(DbError::Corrupt(format!("slot {slot} out of range")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return Err(DbError::Corrupt(format!("slot {slot} is deleted")));
        }
        if payload.len() <= len {
            // Shrink or same-size: rewrite in place, leak the tail as
            // garbage (reclaimed on compaction).
            self.data[off..off + payload.len()].copy_from_slice(payload);
            self.set_slot_entry(slot, off, payload.len());
            self.add_garbage(len - payload.len());
            return Ok(());
        }
        if payload.len() > MAX_RECORD_LEN {
            return Err(DbError::PageFull);
        }
        // Grow: dead the old space, place a fresh copy.
        let need = payload.len();
        if self.free_space() < need {
            if self.usable_space() + len < need {
                return Err(DbError::PageFull);
            }
            // Tombstone first so compaction reclaims the old copy.
            self.set_slot_entry(slot, 0, 0);
            self.add_garbage(len);
            self.compact();
            if self.free_space() < need {
                // Restore nothing: caller sees PageFull and relocates, but
                // the record is gone. Avoid that: we checked usable_space
                // above so this cannot happen.
                return Err(DbError::PageFull);
            }
        } else {
            self.set_slot_entry(slot, 0, 0);
            self.add_garbage(len);
        }
        let new_ptr = self.free_ptr() - payload.len();
        self.data[new_ptr..new_ptr + payload.len()].copy_from_slice(payload);
        self.set_u16(OFF_FREE_PTR, new_ptr as u16);
        self.set_slot_entry(slot, new_ptr, payload.len());
        Ok(())
    }

    /// Tombstone a record.
    pub fn delete(&mut self, slot: SlotId) -> DbResult<()> {
        if slot >= self.slot_count() {
            return Err(DbError::Corrupt(format!("slot {slot} out of range")));
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return Err(DbError::Corrupt(format!("slot {slot} already deleted")));
        }
        self.set_slot_entry(slot, 0, 0);
        self.add_garbage(len);
        Ok(())
    }

    fn add_garbage(&mut self, n: usize) {
        let g = self.garbage() + n;
        self.set_u16(OFF_GARBAGE, g as u16);
    }

    /// Repack live records to the end of the page, zeroing garbage.
    pub fn compact(&mut self) {
        let count = self.slot_count();
        let mut records: Vec<(SlotId, Vec<u8>)> = Vec::with_capacity(count as usize);
        for s in 0..count {
            let (off, len) = self.slot_entry(s);
            if off != 0 {
                records.push((s, self.data[off..off + len].to_vec()));
            }
        }
        let mut ptr = PAGE_SIZE;
        for (s, bytes) in &records {
            ptr -= bytes.len();
            self.data[ptr..ptr + bytes.len()].copy_from_slice(bytes);
            self.set_slot_entry(*s, ptr, bytes.len());
        }
        self.set_u16(OFF_FREE_PTR, ptr as u16);
        self.set_u16(OFF_GARBAGE, 0);
    }

    /// Iterate `(slot, payload)` over live records.
    pub fn iter_live(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.slot_count()).filter_map(move |s| {
            let (off, len) = self.slot_entry(s);
            (off != 0).then(|| (s, &self.data[off..off + len]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn page() -> Page {
        Page::new(PageId::new(1), FLAG_HEAP)
    }

    #[test]
    fn empty_page_properties() {
        let p = page();
        assert_eq!(p.page_id(), PageId::new(1));
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.flags(), FLAG_HEAP);
        assert_eq!(p.free_space(), PAGE_SIZE - HEADER_SIZE);
        assert_eq!(p.live_records(), 0);
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut p = page();
        let s1 = p.insert(b"hello").unwrap();
        let s2 = p.insert(b"world!").unwrap();
        assert_eq!(p.get(s1).unwrap(), b"hello");
        assert_eq!(p.get(s2).unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_tombstones() {
        let mut p = page();
        let s = p.insert(b"gone").unwrap();
        p.delete(s).unwrap();
        assert!(p.get(s).is_err());
        assert!(!p.is_live(s));
        assert!(p.delete(s).is_err());
        assert_eq!(p.live_records(), 0);
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = page();
        let s = p.insert(b"aaaa").unwrap();
        p.update(s, b"bb").unwrap();
        assert_eq!(p.get(s).unwrap(), b"bb");
        p.update(s, b"cccccccccc").unwrap();
        assert_eq!(p.get(s).unwrap(), b"cccccccccc");
    }

    #[test]
    fn fill_page_until_full() {
        let mut p = page();
        let rec = [0xABu8; 100];
        let mut count = 0;
        while p.insert(&rec).is_ok() {
            count += 1;
        }
        // 8192 - 24 header; each record costs 104 bytes.
        assert!(count >= 77, "only {count} records fit");
        assert!(p.free_space() < 104 + SLOT_SIZE);
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = page();
        let huge = vec![0u8; MAX_RECORD_LEN + 1];
        assert!(matches!(p.insert(&huge), Err(DbError::PageFull)));
        let max = vec![7u8; MAX_RECORD_LEN];
        let s = p.insert(&max).unwrap();
        assert_eq!(p.get(s).unwrap().len(), MAX_RECORD_LEN);
    }

    #[test]
    fn compaction_reclaims_garbage() {
        let mut p = page();
        let mut slots = Vec::new();
        for _ in 0..50 {
            slots.push(p.insert(&[1u8; 100]).unwrap());
        }
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let before = p.free_space();
        p.compact();
        assert!(p.free_space() > before);
        // Survivors intact after compaction.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.get(*s).unwrap(), &[1u8; 100]);
        }
    }

    #[test]
    fn insert_triggers_compaction_when_fragmented() {
        let mut p = page();
        // Fill the page with 100-byte records.
        let mut slots = Vec::new();
        while let Ok(s) = p.insert(&[9u8; 100]) {
            slots.push(s);
        }
        // Free half the space via deletions (fragmented).
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        // A 2000-byte record only fits after compaction.
        let big = vec![5u8; 2000];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.get(s).unwrap(), &big[..]);
    }

    #[test]
    fn disk_roundtrip_preserves_content() {
        let mut p = page();
        let s = p.insert(b"persisted").unwrap();
        let bytes = p.as_bytes().to_vec();
        let p2 = Page::from_bytes(&bytes).unwrap();
        assert_eq!(p2.get(s).unwrap(), b"persisted");
        assert_eq!(p2.page_id(), p.page_id());
    }

    #[test]
    fn from_bytes_wrong_size_rejected() {
        assert!(Page::from_bytes(&[0u8; 100]).is_err());
    }

    #[test]
    fn iter_live_skips_tombstones() {
        let mut p = page();
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b).unwrap();
        let live: Vec<_> = p.iter_live().map(|(s, d)| (s, d.to_vec())).collect();
        assert_eq!(live, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    proptest! {
        /// Random op sequences: a HashMap model must agree with the page,
        /// and internal invariants must hold throughout.
        #[test]
        fn prop_page_model_equivalence(ops in proptest::collection::vec(
            (0u8..4, 0usize..64, proptest::collection::vec(any::<u8>(), 0..300)), 1..120))
        {
            let mut p = page();
            let mut model: HashMap<SlotId, Vec<u8>> = HashMap::new();
            let mut known_slots: Vec<SlotId> = Vec::new();

            for (op, pick, payload) in ops {
                match op {
                    0 => { // insert
                        if let Ok(slot) = p.insert(&payload) {
                            model.insert(slot, payload);
                            known_slots.push(slot);
                        }
                    }
                    1 => { // delete a known slot
                        if known_slots.is_empty() { continue; }
                        let slot = known_slots[pick % known_slots.len()];
                        let res = p.delete(slot);
                        prop_assert_eq!(res.is_ok(), model.remove(&slot).is_some());
                    }
                    2 => { // update a known slot
                        if known_slots.is_empty() { continue; }
                        let slot = known_slots[pick % known_slots.len()];
                        if let std::collections::hash_map::Entry::Occupied(mut e) = model.entry(slot) {
                            if p.update(slot, &payload).is_ok() {
                                e.insert(payload);
                            }
                        } else {
                            prop_assert!(p.update(slot, &payload).is_err());
                        }
                    }
                    _ => { p.compact(); }
                }
                // Invariants after every op.
                prop_assert_eq!(p.live_records(), model.len());
                for (slot, expect) in &model {
                    prop_assert_eq!(p.get(*slot).unwrap(), &expect[..]);
                }
            }
            // Survives a disk roundtrip.
            let p2 = Page::from_bytes(p.as_bytes()).unwrap();
            for (slot, expect) in &model {
                prop_assert_eq!(p2.get(*slot).unwrap(), &expect[..]);
            }
        }
    }
}
