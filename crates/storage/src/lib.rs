//! Page-based storage engine.
//!
//! This crate is the bottom of the memory hierarchy the paper extends
//! (§ 3.2, figure 2): **server disk** → server buffer pool → client
//! database cache → (the paper's new level) client display cache. It
//! provides:
//!
//! * [`page`] — 8 KiB slotted pages with in-page compaction,
//! * [`disk`] — a file-backed page allocator,
//! * [`buffer`] — a pinning buffer pool with LRU eviction (the *server
//!   main-memory* level of the hierarchy),
//! * [`heap`] — heap files of variable-length records addressed by
//!   [`displaydb_common::RecordId`],
//! * [`wal`] — a redo-only write-ahead log with checksummed records and
//!   torn-tail repair, plus replay for crash recovery,
//! * [`seglog`] — the durable segment log backing the DLM's replayable
//!   update log across restarts (incarnation id, batch records, cursor
//!   frontiers; DESIGN.md § 14).
//!
//! The server crate composes these into an object store; nothing in here
//! knows about objects, classes, or displays.

pub mod buffer;
pub mod disk;
pub mod heap;
pub mod page;
pub mod seglog;
pub mod wal;

pub use buffer::{BufferPool, BufferPoolStats, PageGuard};
pub use disk::DiskManager;
pub use heap::HeapFile;
pub use page::{Page, PAGE_SIZE};
pub use seglog::{RecoveredBatch, SegLog, SegLogRecovery, SegRecord};
pub use wal::{Wal, WalRecord};
