//! Redo-only write-ahead log.
//!
//! The server uses a **no-steal / force-log** policy: data pages reflect
//! only committed state, so the log never needs undo. Each record is
//! framed as `[u32 len][u64 fnv1a checksum][payload]`; recovery stops at
//! the first torn or corrupt record (a crash mid-append loses only the
//! uncommitted tail, which is exactly the transaction that had not yet
//! acknowledged its commit).
//!
//! Records are *object-level* (`Put`/`Delete` by OID) rather than
//! page-level: the object directory is rebuilt from the heap on open, so
//! replay simply re-applies committed object states on top.

use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{DbError, DbResult, Lsn, Oid, TxnId};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// One log record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction started.
    Begin(TxnId),
    /// A committed-intent object write (insert or update).
    Put {
        /// Writing transaction.
        txn: TxnId,
        /// Object identifier.
        oid: Oid,
        /// Full encoded object state.
        bytes: Vec<u8>,
    },
    /// An object deletion.
    Delete {
        /// Deleting transaction.
        txn: TxnId,
        /// Object identifier.
        oid: Oid,
    },
    /// The transaction's effects are durable once this record is on disk.
    Commit(TxnId),
    /// The transaction was abandoned; its records must not be replayed.
    Abort(TxnId),
    /// All earlier effects are already reflected in the heap.
    Checkpoint,
}

const TAG_BEGIN: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_ABORT: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;

impl Encode for WalRecord {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            WalRecord::Begin(t) => {
                w.put_u8(TAG_BEGIN);
                t.encode(w);
            }
            WalRecord::Put { txn, oid, bytes } => {
                w.put_u8(TAG_PUT);
                txn.encode(w);
                oid.encode(w);
                w.put_bytes(bytes);
            }
            WalRecord::Delete { txn, oid } => {
                w.put_u8(TAG_DELETE);
                txn.encode(w);
                oid.encode(w);
            }
            WalRecord::Commit(t) => {
                w.put_u8(TAG_COMMIT);
                t.encode(w);
            }
            WalRecord::Abort(t) => {
                w.put_u8(TAG_ABORT);
                t.encode(w);
            }
            WalRecord::Checkpoint => w.put_u8(TAG_CHECKPOINT),
        }
    }
}

impl Decode for WalRecord {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            TAG_BEGIN => WalRecord::Begin(TxnId::decode(r)?),
            TAG_PUT => WalRecord::Put {
                txn: TxnId::decode(r)?,
                oid: Oid::decode(r)?,
                bytes: r.get_bytes()?.to_vec(),
            },
            TAG_DELETE => WalRecord::Delete {
                txn: TxnId::decode(r)?,
                oid: Oid::decode(r)?,
            },
            TAG_COMMIT => WalRecord::Commit(TxnId::decode(r)?),
            TAG_ABORT => WalRecord::Abort(TxnId::decode(r)?),
            TAG_CHECKPOINT => WalRecord::Checkpoint,
            t => return Err(DbError::Corrupt(format!("unknown wal tag {t}"))),
        })
    }
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Length of the valid framed-record prefix of `buf`: the scan stops at
/// the first torn frame (header or payload cut short) or checksum
/// mismatch, exactly where [`Wal::read_all`] stops reading.
pub(crate) fn valid_prefix_len(buf: &[u8]) -> usize {
    let mut pos = 0usize;
    while buf.len() - pos >= 12 {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        if buf.len() - pos - 12 < len {
            break;
        }
        let checksum = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
        if fnv1a(&buf[pos + 12..pos + 12 + len]) != checksum {
            break;
        }
        pos += 12 + len;
    }
    pos
}

/// Fsync a directory so a just-created (or just-renamed/removed) entry in
/// it survives a crash. Creating a file makes its *contents* durable once
/// the file is synced, but the *directory entry* pointing at it is only
/// durable after the directory itself is synced — the classic
/// create-then-crash durability gap.
pub(crate) fn fsync_dir(dir: &Path) -> DbResult<()> {
    let d = File::open(dir)?;
    d.sync_all()?;
    Ok(())
}

/// Fsync the parent directory of `path` (no-op when `path` has no parent
/// component, e.g. a bare relative file name).
pub(crate) fn fsync_parent_dir(path: &Path) -> DbResult<()> {
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => fsync_dir(dir),
        _ => Ok(()),
    }
}

/// Append-only log writer.
pub struct Wal {
    writer: OrderedMutex<BufWriter<File>>,
    path: PathBuf,
    next_lsn: AtomicU64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish()
    }
}

impl Wal {
    /// Open (appending) or create the log at `path`.
    ///
    /// A torn tail left by a crash mid-append is truncated away here, so
    /// post-recovery appends start at the last valid record instead of
    /// interleaving with corrupt bytes that a later scan could misparse
    /// as a frame header. The parent directory is then fsynced so a
    /// freshly created log file survives a crash right after creation.
    pub fn open(path: impl AsRef<Path>) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let valid = valid_prefix_len(&buf);
        if valid < buf.len() {
            file.set_len(valid as u64)?;
            file.sync_data()?;
        }
        fsync_parent_dir(&path)?;
        Ok(Self {
            writer: OrderedMutex::new(ranks::STORAGE_WAL, BufWriter::new(file)),
            path,
            next_lsn: AtomicU64::new(1),
        })
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a record. Not yet durable (see [`Wal::sync`]).
    pub fn append(&self, record: &WalRecord) -> DbResult<Lsn> {
        let payload = record.encode_to_bytes();
        let mut w = self.writer.lock();
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&fnv1a(&payload).to_le_bytes())?;
        w.write_all(&payload)?;
        Ok(Lsn::new(self.next_lsn.fetch_add(1, Ordering::Relaxed)))
    }

    /// Flush buffered records and fsync to stable storage. Called on every
    /// commit (force policy).
    pub fn sync(&self) -> DbResult<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        w.get_ref().sync_data()?;
        Ok(())
    }

    /// Truncate the log after a checkpoint has made its contents redundant.
    pub fn reset(&self) -> DbResult<()> {
        let mut w = self.writer.lock();
        w.flush()?;
        let file = w.get_ref();
        file.set_len(0)?;
        file.sync_all()?;
        Ok(())
    }

    /// Read every intact record from a log file, stopping silently at a
    /// torn tail.
    pub fn read_all(path: impl AsRef<Path>) -> DbResult<Vec<WalRecord>> {
        let mut buf = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut buf)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        }
        let mut records = Vec::new();
        let mut pos = 0usize;
        while buf.len() - pos >= 12 {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
            if buf.len() - pos - 12 < len {
                break; // torn tail
            }
            let payload = &buf[pos + 12..pos + 12 + len];
            if fnv1a(payload) != checksum {
                break; // corrupt tail
            }
            match WalRecord::decode_from_bytes(payload) {
                Ok(r) => records.push(r),
                Err(_) => break,
            }
            pos += 12 + len;
        }
        Ok(records)
    }
}

/// The net effect of replaying a log: final object states for committed
/// transactions after the last checkpoint.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct RedoEffects {
    /// `Some(bytes)` = object must exist with this state; `None` = object
    /// must not exist.
    pub objects: HashMap<Oid, Option<Vec<u8>>>,
    /// Highest transaction id seen (to restart the txn id allocator past
    /// it).
    pub max_txn: u64,
    /// Highest transaction id with a `Commit` record anywhere in the log
    /// (0 = none). The DLM's durable update log is cross-checked against
    /// this at startup: a durable notification stream whose newest batch
    /// trails it is missing committed updates (DESIGN.md § 14).
    pub max_committed_txn: u64,
    /// Highest OID seen (to restart the OID allocator past it).
    pub max_oid: u64,
}

/// Compute redo effects from a record sequence.
pub fn redo_effects(records: &[WalRecord]) -> RedoEffects {
    // Only records after the last checkpoint need replaying.
    let start = records
        .iter()
        .rposition(|r| matches!(r, WalRecord::Checkpoint))
        .map(|i| i + 1)
        .unwrap_or(0);
    let tail = &records[start..];

    let committed: HashSet<TxnId> = tail
        .iter()
        .filter_map(|r| match r {
            WalRecord::Commit(t) => Some(*t),
            _ => None,
        })
        .collect();

    let mut fx = RedoEffects::default();
    for r in records {
        match r {
            WalRecord::Begin(t) | WalRecord::Commit(t) | WalRecord::Abort(t) => {
                fx.max_txn = fx.max_txn.max(t.raw());
                if matches!(r, WalRecord::Commit(_)) {
                    fx.max_committed_txn = fx.max_committed_txn.max(t.raw());
                }
            }
            WalRecord::Put { txn, oid, .. } | WalRecord::Delete { txn, oid } => {
                fx.max_txn = fx.max_txn.max(txn.raw());
                fx.max_oid = fx.max_oid.max(oid.raw());
            }
            WalRecord::Checkpoint => {}
        }
    }
    for r in tail {
        match r {
            WalRecord::Put { txn, oid, bytes } if committed.contains(txn) => {
                fx.objects.insert(*oid, Some(bytes.clone()));
            }
            WalRecord::Delete { txn, oid } if committed.contains(txn) => {
                fx.objects.insert(*oid, None);
            }
            _ => {}
        }
    }
    fx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("displaydb-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{}.wal", name, std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn put(txn: u64, oid: u64, data: &[u8]) -> WalRecord {
        WalRecord::Put {
            txn: TxnId::new(txn),
            oid: Oid::new(oid),
            bytes: data.to_vec(),
        }
    }

    #[test]
    fn append_sync_read_roundtrip() {
        let path = tmp("roundtrip");
        let wal = Wal::open(&path).unwrap();
        let records = vec![
            WalRecord::Begin(TxnId::new(1)),
            put(1, 10, b"state"),
            WalRecord::Delete {
                txn: TxnId::new(1),
                oid: Oid::new(11),
            },
            WalRecord::Commit(TxnId::new(1)),
            WalRecord::Checkpoint,
        ];
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        assert_eq!(Wal::read_all(&path).unwrap(), records);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn");
        let wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Begin(TxnId::new(1))).unwrap();
        wal.append(&put(1, 1, b"ok")).unwrap();
        wal.sync().unwrap();
        // Simulate a crash mid-append: write a partial frame.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        let records = Wal::read_all(&path).unwrap();
        assert_eq!(records.len(), 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_truncates_torn_tail_before_appending() {
        let path = tmp("reopen-torn");
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Begin(TxnId::new(1))).unwrap();
            wal.append(&put(1, 1, b"ok")).unwrap();
            wal.sync().unwrap();
        }
        let intact_len = std::fs::metadata(&path).unwrap().len();
        // Crash mid-append: a partial frame lands after the valid records.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[200, 0, 0, 0, 1, 2, 3]).unwrap();
        }
        // Reopen repairs the tail in place...
        let wal = Wal::open(&path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), intact_len);
        // ...so new appends follow the last valid record and the whole
        // log parses cleanly again (no torn bytes hiding mid-file).
        wal.append(&put(2, 2, b"after"))
            .and_then(|_| wal.sync())
            .unwrap();
        let records = Wal::read_all(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[2], put(2, 2, b"after"));
        let repaired_len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(
            valid_prefix_len(&std::fs::read(&path).unwrap()),
            repaired_len as usize
        );
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupt_checksum_stops_reading() {
        let path = tmp("corrupt");
        let wal = Wal::open(&path).unwrap();
        wal.append(&put(1, 1, b"first")).unwrap();
        wal.append(&put(1, 2, b"second")).unwrap();
        wal.sync().unwrap();
        // Flip one byte in the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        let records = Wal::read_all(&path).unwrap();
        assert_eq!(records.len(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn redo_skips_uncommitted_and_aborted() {
        let records = vec![
            WalRecord::Begin(TxnId::new(1)),
            put(1, 1, b"committed"),
            WalRecord::Commit(TxnId::new(1)),
            WalRecord::Begin(TxnId::new(2)),
            put(2, 2, b"aborted"),
            WalRecord::Abort(TxnId::new(2)),
            WalRecord::Begin(TxnId::new(3)),
            put(3, 3, b"in flight"),
        ];
        let fx = redo_effects(&records);
        assert_eq!(fx.objects.len(), 1);
        assert_eq!(fx.objects[&Oid::new(1)], Some(b"committed".to_vec()));
        assert_eq!(fx.max_txn, 3);
        assert_eq!(fx.max_oid, 3);
    }

    #[test]
    fn redo_respects_last_checkpoint() {
        let records = vec![
            WalRecord::Begin(TxnId::new(1)),
            put(1, 1, b"before checkpoint"),
            WalRecord::Commit(TxnId::new(1)),
            WalRecord::Checkpoint,
            WalRecord::Begin(TxnId::new(2)),
            put(2, 2, b"after checkpoint"),
            WalRecord::Commit(TxnId::new(2)),
        ];
        let fx = redo_effects(&records);
        assert_eq!(fx.objects.len(), 1);
        assert!(fx.objects.contains_key(&Oid::new(2)));
        // id allocators still account for pre-checkpoint history
        assert_eq!(fx.max_txn, 2);
        assert_eq!(fx.max_oid, 2);
    }

    #[test]
    fn redo_last_write_wins_in_order() {
        let records = vec![
            put(1, 1, b"v1"),
            WalRecord::Commit(TxnId::new(1)),
            put(2, 1, b"v2"),
            WalRecord::Commit(TxnId::new(2)),
            WalRecord::Delete {
                txn: TxnId::new(3),
                oid: Oid::new(1),
            },
            WalRecord::Commit(TxnId::new(3)),
        ];
        let fx = redo_effects(&records);
        assert_eq!(fx.objects[&Oid::new(1)], None);
    }

    #[test]
    fn reset_truncates() {
        let path = tmp("reset");
        let wal = Wal::open(&path).unwrap();
        wal.append(&put(1, 1, b"x")).unwrap();
        wal.sync().unwrap();
        wal.reset().unwrap();
        assert!(Wal::read_all(&path).unwrap().is_empty());
        // And keeps working after reset.
        wal.append(&put(2, 2, b"y")).unwrap();
        wal.sync().unwrap();
        assert_eq!(Wal::read_all(&path).unwrap().len(), 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_reads_empty() {
        let path = tmp("missing");
        let _ = std::fs::remove_file(&path);
        assert!(Wal::read_all(&path).unwrap().is_empty());
    }
}
