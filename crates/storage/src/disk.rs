//! File-backed page allocation and I/O.
//!
//! One file per database; page `i` lives at byte offset `i * PAGE_SIZE`.
//! Deallocated pages are tracked in an in-memory free list and reused;
//! discovery after restart is the heap layer's job (it scans pages and
//! recognizes its own flag bits).

use crate::page::{Page, PAGE_SIZE};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{DbError, DbResult, PageId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Allocates, reads and writes fixed-size pages in a single file.
pub struct DiskManager {
    file: OrderedMutex<File>,
    path: PathBuf,
    page_count: AtomicU64,
    free_list: OrderedMutex<Vec<PageId>>,
}

impl std::fmt::Debug for DiskManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DiskManager")
            .field("path", &self.path)
            .field("pages", &self.page_count())
            .finish()
    }
}

impl DiskManager {
    /// Open (creating if absent) the database file at `path`.
    pub fn open(path: impl AsRef<Path>) -> DbResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DbError::Corrupt(format!(
                "database file length {len} is not a multiple of page size"
            )));
        }
        Ok(Self {
            file: OrderedMutex::new(ranks::STORAGE_DISK, file),
            path,
            page_count: AtomicU64::new(len / PAGE_SIZE as u64),
            free_list: OrderedMutex::new(ranks::STORAGE_DISK_FREELIST, Vec::new()),
        })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of pages ever allocated (including freed ones).
    pub fn page_count(&self) -> u64 {
        self.page_count.load(Ordering::Acquire)
    }

    /// Allocate a page id (reusing freed pages when available).
    pub fn allocate(&self) -> DbResult<PageId> {
        if let Some(pid) = self.free_list.lock().pop() {
            return Ok(pid);
        }
        let pid = PageId::new(self.page_count.fetch_add(1, Ordering::AcqRel));
        // Extend the file eagerly so reads of fresh pages succeed.
        let zeros = vec![0u8; PAGE_SIZE];
        self.write_raw(pid, &zeros)?;
        Ok(pid)
    }

    /// Return a page to the free list (contents remain until reuse).
    pub fn deallocate(&self, pid: PageId) {
        self.free_list.lock().push(pid);
    }

    /// Record a page as free during startup discovery.
    pub fn note_free(&self, pid: PageId) {
        self.free_list.lock().push(pid);
    }

    /// Read a page.
    pub fn read_page(&self, pid: PageId) -> DbResult<Page> {
        if pid.raw() >= self.page_count() {
            return Err(DbError::Corrupt(format!("read of unallocated {pid}")));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(pid.raw() * PAGE_SIZE as u64))?;
            f.read_exact(&mut buf)?;
        }
        Page::from_bytes(&buf)
    }

    /// Write a page.
    pub fn write_page(&self, pid: PageId, page: &Page) -> DbResult<()> {
        self.write_raw(pid, page.as_bytes())
    }

    fn write_raw(&self, pid: PageId, bytes: &[u8]) -> DbResult<()> {
        debug_assert_eq!(bytes.len(), PAGE_SIZE);
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(pid.raw() * PAGE_SIZE as u64))?;
        f.write_all(bytes)?;
        Ok(())
    }

    /// Flush file contents to stable storage.
    pub fn sync(&self) -> DbResult<()> {
        self.file.lock().sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::FLAG_HEAP;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("displaydb-disk-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{}.db", name, std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn allocate_write_read() {
        let path = tmp("rw");
        let dm = DiskManager::open(&path).unwrap();
        let pid = dm.allocate().unwrap();
        let mut page = Page::new(pid, FLAG_HEAP);
        let slot = page.insert(b"on disk").unwrap();
        dm.write_page(pid, &page).unwrap();
        let back = dm.read_page(pid).unwrap();
        assert_eq!(back.get(slot).unwrap(), b"on disk");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_preserves_pages() {
        let path = tmp("reopen");
        let pid;
        {
            let dm = DiskManager::open(&path).unwrap();
            pid = dm.allocate().unwrap();
            let mut page = Page::new(pid, 0);
            page.insert(b"durable").unwrap();
            dm.write_page(pid, &page).unwrap();
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&path).unwrap();
        assert_eq!(dm.page_count(), 1);
        let back = dm.read_page(pid).unwrap();
        assert_eq!(back.get(0).unwrap(), b"durable");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn free_list_reuses_pages() {
        let path = tmp("freelist");
        let dm = DiskManager::open(&path).unwrap();
        let a = dm.allocate().unwrap();
        let _b = dm.allocate().unwrap();
        dm.deallocate(a);
        let c = dm.allocate().unwrap();
        assert_eq!(c, a, "freed page should be reused");
        assert_eq!(dm.page_count(), 2);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn read_unallocated_fails() {
        let path = tmp("unalloc");
        let dm = DiskManager::open(&path).unwrap();
        assert!(dm.read_page(PageId::new(5)).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupt_file_length_rejected() {
        let path = tmp("badlen");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(DiskManager::open(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
