//! Heap files: unordered collections of variable-length records.
//!
//! The server's object store keeps every persistent object as one record
//! in a heap file; records are addressed by [`RecordId`] and may relocate
//! on growth (the object directory above tracks the current address).
//! Pages belonging to the heap are discovered on open by their
//! [`FLAG_HEAP`] bit, so no separate metadata page is needed.

use crate::buffer::BufferPool;
use crate::page::{FLAG_HEAP, MAX_RECORD_LEN};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{DbError, DbResult, PageId, RecordId};
use std::collections::HashMap;
use std::sync::Arc;

/// A heap file of records over a buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    inner: OrderedMutex<HeapState>,
}

struct HeapState {
    /// All pages owned by this heap, in allocation order.
    pages: Vec<PageId>,
    /// Approximate usable bytes per page, maintained after every op.
    free_hints: HashMap<PageId, usize>,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("pages", &self.inner.lock().pages.len())
            .finish()
    }
}

impl HeapFile {
    /// Create an empty heap over `pool`.
    pub fn create(pool: Arc<BufferPool>) -> Self {
        Self {
            pool,
            inner: OrderedMutex::new(
                ranks::STORAGE_HEAP,
                HeapState {
                    pages: Vec::new(),
                    free_hints: HashMap::new(),
                },
            ),
        }
    }

    /// Open an existing heap by scanning the file for heap pages.
    pub fn open(pool: Arc<BufferPool>) -> DbResult<Self> {
        let mut pages = Vec::new();
        let mut free_hints = HashMap::new();
        let count = pool.disk().page_count();
        for raw in 0..count {
            let pid = PageId::new(raw);
            let guard = pool.fetch(pid)?;
            let keep = guard.with_read(|p| {
                if p.flags() & FLAG_HEAP != 0 && p.page_id() == pid {
                    Some(p.usable_space())
                } else {
                    None
                }
            });
            if let Some(usable) = keep {
                pages.push(pid);
                free_hints.insert(pid, usable);
            } else {
                pool.disk().note_free(pid);
            }
        }
        Ok(Self {
            pool,
            inner: OrderedMutex::new(ranks::STORAGE_HEAP, HeapState { pages, free_hints }),
        })
    }

    /// The buffer pool backing this heap.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Number of pages owned.
    pub fn page_count(&self) -> usize {
        self.inner.lock().pages.len()
    }

    /// Insert a record, returning its address.
    pub fn insert(&self, payload: &[u8]) -> DbResult<RecordId> {
        if payload.len() > MAX_RECORD_LEN {
            return Err(DbError::PageFull);
        }
        // Prefer an existing page with room (per the hint map).
        let candidate = {
            let inner = self.inner.lock();
            inner
                .free_hints
                .iter()
                .find(|(_, &usable)| usable >= payload.len() + 8)
                .map(|(&pid, _)| pid)
        };
        if let Some(pid) = candidate {
            let guard = self.pool.fetch(pid)?;
            let result = guard.with_write(|p| p.insert(payload).map(|s| (s, p.usable_space())));
            if let Ok((slot, usable)) = result {
                self.inner.lock().free_hints.insert(pid, usable);
                return Ok(RecordId::new(pid, slot));
            }
            // Hint was stale; fall through to a fresh page.
        }
        let guard = self.pool.new_page(FLAG_HEAP)?;
        let pid = guard.page_id();
        let (slot, usable) =
            guard.with_write(|p| p.insert(payload).map(|s| (s, p.usable_space())))?;
        let mut inner = self.inner.lock();
        inner.pages.push(pid);
        inner.free_hints.insert(pid, usable);
        Ok(RecordId::new(pid, slot))
    }

    /// Read a record.
    pub fn get(&self, rid: RecordId) -> DbResult<Vec<u8>> {
        let guard = self.pool.fetch(rid.page)?;
        guard.with_read(|p| p.get(rid.slot).map(|b| b.to_vec()))
    }

    /// Overwrite a record, relocating it when it no longer fits its page.
    /// Returns the (possibly new) address.
    pub fn update(&self, rid: RecordId, payload: &[u8]) -> DbResult<RecordId> {
        let guard = self.pool.fetch(rid.page)?;
        let in_place = guard.with_write(|p| match p.update(rid.slot, payload) {
            Ok(()) => Ok(Some(p.usable_space())),
            Err(DbError::PageFull) => Ok(None),
            Err(e) => Err(e),
        })?;
        if let Some(usable) = in_place {
            self.inner.lock().free_hints.insert(rid.page, usable);
            return Ok(rid);
        }
        // Relocate: remove then insert elsewhere.
        let usable = guard.with_write(|p| {
            p.delete(rid.slot)?;
            Ok::<usize, DbError>(p.usable_space())
        })?;
        self.inner.lock().free_hints.insert(rid.page, usable);
        drop(guard);
        self.insert(payload)
    }

    /// Delete a record.
    pub fn delete(&self, rid: RecordId) -> DbResult<()> {
        let guard = self.pool.fetch(rid.page)?;
        let usable = guard.with_write(|p| {
            p.delete(rid.slot)?;
            Ok::<usize, DbError>(p.usable_space())
        })?;
        self.inner.lock().free_hints.insert(rid.page, usable);
        Ok(())
    }

    /// Visit every live record. The callback receives the record address
    /// and payload.
    pub fn for_each(&self, mut f: impl FnMut(RecordId, &[u8])) -> DbResult<()> {
        let pages: Vec<PageId> = self.inner.lock().pages.clone();
        for pid in pages {
            let guard = self.pool.fetch(pid)?;
            guard.with_read(|p| {
                for (slot, payload) in p.iter_live() {
                    f(RecordId::new(pid, slot), payload);
                }
            });
        }
        Ok(())
    }

    /// Collect all live records (convenience for small heaps and tests).
    pub fn scan(&self) -> DbResult<Vec<(RecordId, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each(|rid, payload| out.push((rid, payload.to_vec())))?;
        Ok(out)
    }

    /// Total live records.
    pub fn record_count(&self) -> DbResult<usize> {
        let mut n = 0;
        self.for_each(|_, _| n += 1)?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("displaydb-heap-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{}.db", name, std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn heap(name: &str, frames: usize) -> (HeapFile, PathBuf) {
        let path = tmp(name);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        (HeapFile::create(BufferPool::new(disk, frames)), path)
    }

    #[test]
    fn insert_get_update_delete() {
        let (h, path) = heap("crud", 8);
        let rid = h.insert(b"record one").unwrap();
        assert_eq!(h.get(rid).unwrap(), b"record one");
        let rid2 = h.update(rid, b"record one, version two").unwrap();
        assert_eq!(h.get(rid2).unwrap(), b"record one, version two");
        h.delete(rid2).unwrap();
        assert!(h.get(rid2).is_err());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn many_records_span_pages() {
        let (h, path) = heap("span", 16);
        let mut rids = Vec::new();
        for i in 0..1000u32 {
            let payload = format!("record number {i} with some padding {}", "x".repeat(50));
            rids.push((h.insert(payload.as_bytes()).unwrap(), payload));
        }
        assert!(h.page_count() > 1, "1000 records should span pages");
        for (rid, payload) in &rids {
            assert_eq!(h.get(*rid).unwrap(), payload.as_bytes());
        }
        assert_eq!(h.record_count().unwrap(), 1000);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn update_relocates_grown_records() {
        let (h, path) = heap("grow", 8);
        // Fill one page nearly full.
        let mut rids = Vec::new();
        for _ in 0..70 {
            rids.push(h.insert(&[1u8; 100]).unwrap());
        }
        // Grow the first record beyond what its page can hold.
        let big = vec![2u8; 4000];
        let new_rid = h.update(rids[0], &big).unwrap();
        assert_eq!(h.get(new_rid).unwrap(), big);
        // Others are untouched.
        assert_eq!(h.get(rids[1]).unwrap(), &[1u8; 100][..]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn reopen_discovers_pages_and_records() {
        let path = tmp("reopen");
        let mut rids = Vec::new();
        {
            let disk = Arc::new(DiskManager::open(&path).unwrap());
            let pool = BufferPool::new(disk, 8);
            let h = HeapFile::create(Arc::clone(&pool));
            for i in 0..300u32 {
                rids.push(h.insert(format!("persisted {i}").as_bytes()).unwrap());
            }
            pool.flush_all().unwrap();
        }
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        let pool = BufferPool::new(disk, 8);
        let h = HeapFile::open(pool).unwrap();
        assert_eq!(h.record_count().unwrap(), 300);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), format!("persisted {i}").as_bytes());
        }
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn scan_returns_all_live() {
        let (h, path) = heap("scan", 8);
        let a = h.insert(b"a").unwrap();
        let b = h.insert(b"b").unwrap();
        h.delete(a).unwrap();
        let all = h.scan().unwrap();
        assert_eq!(all, vec![(b, b"b".to_vec())]);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn works_with_tiny_buffer_pool() {
        // Pool smaller than the working set forces constant eviction.
        let (h, path) = heap("tiny", 2);
        let mut rids = Vec::new();
        for i in 0..500u32 {
            rids.push(
                h.insert(format!("tiny pool {i} {}", "y".repeat(40)).as_bytes())
                    .unwrap(),
            );
        }
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(
                h.get(*rid).unwrap(),
                format!("tiny pool {i} {}", "y".repeat(40)).as_bytes()
            );
        }
        assert!(h.pool().stats().evictions.get() > 0);
        std::fs::remove_file(path).unwrap();
    }
}
