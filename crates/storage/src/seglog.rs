//! Durable segment log for the DLM's replayable update log (DESIGN.md § 14).
//!
//! The in-memory update log (PR 6) gives reconnecting displays cursor
//! catch-up — but it dies with the process, so a server restart turns a
//! fleet's recovery into the full-resync storm the log exists to avoid.
//! This module is the stable-storage spill: committed notification batches
//! are framed with the WAL's `[u32 len][u64 fnv1a][payload]` discipline
//! into append-only **segment files** under one directory, together with
//!
//! * a `meta` file carrying the **log incarnation id** (minted once, then
//!   stable across restarts; cursors are only comparable within one
//!   incarnation), and
//! * **cursor frontier** records (client → last acked seqno), appended as
//!   the outbox writers acknowledge delivery.
//!
//! Batch payloads are opaque bytes: the DLM encodes/decodes its own batch
//! representation, so this crate stays ignorant of notification shapes.
//!
//! # Segments, rotation, retention
//!
//! The active segment rotates once it reaches `segment_bytes`; rotation
//! seals it, fsyncs it, opens `seg-<base seqno, hex>.log` for the next
//! window, and fsyncs the directory so the new file's existence is itself
//! durable. Retention deletes **whole oldest segments** once the total
//! durable budget is exceeded, so the retained seqno window — like the
//! in-memory ring's front eviction — is always a contiguous suffix.
//!
//! # Recovery
//!
//! [`SegLog::open`] scans segments in base order, validating framing,
//! checksums, record decode, header incarnations, and seqno contiguity. A
//! torn or corrupt tail is truncated in place. Because the durable batch
//! stream trails the main WAL's commit stream (batches are spilled at
//! notification fan-out, after the commit record is already forced), a
//! tear means the tail batch's commit outcome is unknowable from this log
//! alone — so any tear **truncates the whole recovered window**: the
//! incarnation and seqno space survive, but resuming clients fall back to
//! resync instead of silently missing the lost tail batch. The server
//! additionally cross-checks the last recovered transaction id against
//! the main WAL's committed tail and applies the same demotion if the
//! notification log is behind (see `ServerCore::open`).
//!
//! # Crash points
//!
//! The append and rotation paths probe the deterministic crash-point
//! harness (`displaydb_common::crashpoint`). An armed point performs the
//! partial on-disk effect a real crash would leave (torn frame, unsynced
//! record, header-less fresh segment) and returns
//! [`DbError::CrashPoint`]; the restart-and-verify tests then reopen the
//! same directory and assert the recovery invariants.

use crate::wal::{fnv1a, fsync_dir, fsync_parent_dir, valid_prefix_len};
use displaydb_common::crashpoint::{self, CrashPoint};
use displaydb_common::metrics::SegLogStats;
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{ClientId, DbError, DbResult, DurableLogConfig};
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Format marker in the `meta` file ("SLM1").
const META_MAGIC: u32 = 0x534C_4D31;

const TAG_HEADER: u8 = 1;
const TAG_BATCH: u8 = 2;
const TAG_FRONTIER: u8 = 3;

/// One durable record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SegRecord {
    /// First record of every segment: binds the file to an incarnation
    /// and names the first seqno that may appear in it.
    Header {
        /// Incarnation the segment belongs to.
        incarnation: u64,
        /// First seqno eligible to be appended to this segment.
        base_seqno: u64,
    },
    /// A committed notification batch (payload opaque to storage).
    Batch {
        /// The batch's update-log seqno (monotonic, 1-based).
        seqno: u64,
        /// Committing transaction id (0 when unknown, e.g. agent-fed
        /// batches); lets the server cross-check the durable tail
        /// against the main WAL's committed tail.
        txn: u64,
        /// DLM-encoded batch bytes.
        payload: Vec<u8>,
    },
    /// A client's acked cursor frontier at append time.
    Frontier {
        /// Acknowledging client.
        client: ClientId,
        /// Last seqno the client's outbox acked.
        cursor: u64,
    },
}

impl Encode for SegRecord {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            SegRecord::Header {
                incarnation,
                base_seqno,
            } => {
                w.put_u8(TAG_HEADER);
                w.put_u64(*incarnation);
                w.put_varint(*base_seqno);
            }
            SegRecord::Batch {
                seqno,
                txn,
                payload,
            } => {
                w.put_u8(TAG_BATCH);
                w.put_varint(*seqno);
                w.put_varint(*txn);
                w.put_bytes(payload);
            }
            SegRecord::Frontier { client, cursor } => {
                w.put_u8(TAG_FRONTIER);
                client.encode(w);
                w.put_varint(*cursor);
            }
        }
    }
}

impl Decode for SegRecord {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            TAG_HEADER => SegRecord::Header {
                incarnation: r.get_u64()?,
                base_seqno: r.get_varint()?,
            },
            TAG_BATCH => SegRecord::Batch {
                seqno: r.get_varint()?,
                txn: r.get_varint()?,
                payload: r.get_bytes()?.to_vec(),
            },
            TAG_FRONTIER => SegRecord::Frontier {
                client: ClientId::decode(r)?,
                cursor: r.get_varint()?,
            },
            t => return Err(DbError::Corrupt(format!("unknown seglog tag {t}"))),
        })
    }
}

/// A batch recovered by the startup scan.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredBatch {
    /// The batch's seqno.
    pub seqno: u64,
    /// Committing transaction id (0 = unknown).
    pub txn: u64,
    /// DLM-encoded batch bytes.
    pub payload: Vec<u8>,
}

/// Everything [`SegLog::open`] learned from the directory.
#[derive(Debug, Default)]
pub struct SegLogRecovery {
    /// The (recovered or freshly minted) incarnation id.
    pub incarnation: u64,
    /// `true` when the incarnation was read back from `meta` rather than
    /// minted this open — the precondition for honoring old cursors.
    pub incarnation_recovered: bool,
    /// Recovered batches: strictly ascending, contiguous seqnos (a
    /// contiguous suffix of everything ever appended). Empty when the
    /// window was truncated.
    pub batches: Vec<RecoveredBatch>,
    /// Last acked cursor per client, max over all frontier records.
    pub frontiers: HashMap<ClientId, u64>,
    /// Next seqno to append (durable head + 1; 1 for a fresh log).
    pub next_seqno: u64,
    /// Highest transaction id stamped on any recovered batch — including
    /// batches later dropped by a window truncation, so the server's
    /// WAL cross-check still sees how far the durable stream got.
    pub last_txn: u64,
    /// `true` when a torn/corrupt tail (or header mismatch) forced the
    /// recovered window empty. The seqno space and incarnation survive;
    /// resuming cursors must fall back to resync.
    pub window_truncated: bool,
}

struct Segment {
    path: PathBuf,
    bytes: u64,
}

struct Inner {
    active: BufWriter<File>,
    active_path: PathBuf,
    active_bytes: u64,
    appends_since_sync: u32,
    sealed: Vec<Segment>,
    /// Next batch seqno expected; names the base of a rotated-to segment.
    next_seqno: u64,
}

/// Append side of the durable update log. One per DLM update log.
pub struct SegLog {
    dir: PathBuf,
    config: DurableLogConfig,
    stats: SegLogStats,
    incarnation: u64,
    inner: OrderedMutex<Inner>,
}

impl std::fmt::Debug for SegLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegLog")
            .field("dir", &self.dir)
            .field("incarnation", &self.incarnation)
            .finish()
    }
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("seg-{base:016x}.log"))
}

fn parse_segment_base(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("seg-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Decode every intact framed record in `buf`; also returns the number
/// of valid bytes consumed (`< buf.len()` means a torn/corrupt tail; a
/// frame whose checksum passes but whose payload fails to decode also
/// ends the valid prefix).
fn scan_records(buf: &[u8]) -> (Vec<SegRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let framed = valid_prefix_len(buf);
    while pos < framed {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        let payload = &buf[pos + 12..pos + 12 + len];
        match SegRecord::decode_from_bytes(payload) {
            Ok(r) => records.push(r),
            Err(_) => break,
        }
        pos += 12 + len;
    }
    (records, pos)
}

impl SegLog {
    /// Open (or create) the durable log under `dir`, recovering whatever
    /// the previous incarnation left there.
    ///
    /// `fresh_incarnation` is used only when no valid `meta` exists (first
    /// open, or an unrecoverable directory — in which case old cursors
    /// are unhonorable by construction, since the incarnation changes).
    ///
    /// `min_last_txn` is the caller's notion of the last transaction the
    /// main WAL committed (0 = no cross-check). The durable batch stream
    /// trails the WAL — batches are spilled at notification fan-out,
    /// after the commit record is forced — so a recovered tail behind
    /// `min_last_txn` means committed updates are missing from the
    /// window; it is truncated exactly like a torn tail, and resuming
    /// cursors fall back to resync instead of silently skipping them.
    pub fn open(
        dir: impl AsRef<Path>,
        config: DurableLogConfig,
        stats: SegLogStats,
        fresh_incarnation: u64,
        min_last_txn: u64,
    ) -> DbResult<(Self, SegLogRecovery)> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        fsync_parent_dir(&dir)?;

        let mut recovery = SegLogRecovery::default();

        // Incarnation: recover from `meta`, else mint and persist.
        match read_meta(&dir.join("meta")) {
            Some(inc) => {
                recovery.incarnation = inc;
                recovery.incarnation_recovered = true;
            }
            None => {
                recovery.incarnation = fresh_incarnation.max(1);
                write_meta(&dir, recovery.incarnation)?;
            }
        }

        // Scan segments in base order.
        let mut seg_paths: Vec<(u64, PathBuf)> = fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter_map(|p| parse_segment_base(&p).map(|b| (b, p)))
            .collect();
        seg_paths.sort();

        let mut sealed: Vec<Segment> = Vec::new();
        let mut max_seqno = 0u64;
        let mut max_base = 0u64;
        let mut torn_at: Option<usize> = None; // index into seg_paths
        for (i, (name_base, path)) in seg_paths.iter().enumerate() {
            let mut buf = Vec::new();
            File::open(path)?.read_to_end(&mut buf)?;
            let (records, valid) = scan_records(&buf);
            let mut seg_torn = valid < buf.len();
            max_base = max_base.max(*name_base);
            for rec in records {
                match rec {
                    SegRecord::Header {
                        incarnation,
                        base_seqno,
                    } => {
                        if incarnation != recovery.incarnation || base_seqno != *name_base {
                            seg_torn = true;
                            break;
                        }
                        max_base = max_base.max(base_seqno);
                    }
                    SegRecord::Batch {
                        seqno,
                        txn,
                        payload,
                    } => {
                        recovery.last_txn = recovery.last_txn.max(txn);
                        if seqno <= max_seqno {
                            // Seqnos never repeat or regress; this is
                            // corruption, not a crash artifact.
                            seg_torn = true;
                            break;
                        }
                        if max_seqno != 0 && seqno != max_seqno + 1 {
                            // A gap (e.g. a manually deleted middle
                            // segment): only the suffix after the gap is
                            // a usable window.
                            recovery.batches.clear();
                        }
                        max_seqno = seqno;
                        recovery.batches.push(RecoveredBatch {
                            seqno,
                            txn,
                            payload,
                        });
                    }
                    SegRecord::Frontier { client, cursor } => {
                        let e = recovery.frontiers.entry(client).or_insert(0);
                        *e = (*e).max(cursor);
                    }
                }
            }
            if seg_torn {
                // Repair in place: drop the bad tail, and everything
                // after it (later segments would leave a seqno gap).
                if valid < buf.len() {
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(valid as u64)?;
                    f.sync_data()?;
                }
                stats.torn_tails_truncated.inc();
                torn_at = Some(i);
                sealed.push(Segment {
                    path: path.clone(),
                    bytes: valid as u64,
                });
                break;
            }
            sealed.push(Segment {
                path: path.clone(),
                bytes: buf.len() as u64,
            });
        }
        if let Some(i) = torn_at {
            for (_, path) in &seg_paths[i + 1..] {
                let _ = fs::remove_file(path);
            }
            fsync_dir(&dir)?;
            recovery.window_truncated = true;
        }
        recovery.next_seqno = (max_seqno + 1).max(max_base).max(1);

        // WAL cross-check: the durable stream stops short of what the
        // main WAL committed — the missing tail batches are gone for
        // good, so the window is as unusable as after a tear.
        if recovery.last_txn < min_last_txn {
            recovery.window_truncated = true;
        }

        // A torn tail makes the final batch's commit outcome unknowable
        // (see module docs): surrender the whole window rather than let
        // a resuming cursor silently skip the lost tail. The seqno space
        // and incarnation survive so cursors stay comparable.
        if recovery.window_truncated {
            recovery.batches.clear();
            for seg in sealed.drain(..) {
                let _ = fs::remove_file(&seg.path);
            }
            fsync_dir(&dir)?;
        }

        stats.recovered_records.add(recovery.batches.len() as u64);
        stats
            .recovered_frontiers
            .add(recovery.frontiers.len() as u64);

        // Pick the active segment: reuse an intact, non-full last
        // segment, else start a fresh one at `next_seqno`. A zero-byte
        // leftover (rotation crashed before the header landed) goes
        // through `create_segment`, which stamps the missing header.
        let (active_path, reuse_bytes) = match sealed.last() {
            Some(s) if s.bytes > 0 && s.bytes < config.segment_bytes => {
                let s = sealed.pop().unwrap();
                (s.path, s.bytes)
            }
            Some(s) if s.bytes == 0 => {
                let s = sealed.pop().unwrap();
                (s.path, 0)
            }
            _ => (segment_path(&dir, recovery.next_seqno), 0),
        };
        let (active, active_bytes) = if reuse_bytes == 0 {
            let (file, bytes) = create_segment(
                &dir,
                &active_path,
                recovery.incarnation,
                recovery.next_seqno,
            )?;
            (BufWriter::new(file), bytes)
        } else {
            let file = OpenOptions::new().append(true).open(&active_path)?;
            (BufWriter::new(file), reuse_bytes)
        };

        let log = Self {
            dir,
            config,
            stats: stats.clone(),
            incarnation: recovery.incarnation,
            inner: OrderedMutex::new(
                ranks::STORAGE_SEGLOG,
                Inner {
                    active,
                    active_path,
                    active_bytes,
                    appends_since_sync: 0,
                    sealed,
                    next_seqno: recovery.next_seqno,
                },
            ),
        };
        log.refresh_gauges(&mut log.inner.lock());
        Ok((log, recovery))
    }

    /// The stable incarnation id.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Shared counters.
    pub fn stats(&self) -> &SegLogStats {
        &self.stats
    }

    /// Directory holding meta + segments.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn refresh_gauges(&self, inner: &mut Inner) {
        let total: u64 = inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.active_bytes;
        self.stats.durable_bytes.set(total);
        self.stats.segments.set(inner.sealed.len() as u64 + 1);
    }

    /// Append a committed notification batch under `seqno`.
    pub fn append_batch(&self, seqno: u64, txn: u64, payload: &[u8]) -> DbResult<()> {
        let rec = SegRecord::Batch {
            seqno,
            txn,
            payload: payload.to_vec(),
        };
        self.append_record(&rec, true, Some(seqno))?;
        self.stats.records_appended.inc();
        Ok(())
    }

    /// Append a client's acked cursor frontier. Never forces a sync on
    /// its own: losing a frontier record merely widens the replay the
    /// client performs after recovery.
    pub fn append_frontier(&self, client: ClientId, cursor: u64) -> DbResult<()> {
        let rec = SegRecord::Frontier { client, cursor };
        self.append_record(&rec, false, None)?;
        self.stats.frontiers_appended.inc();
        Ok(())
    }

    fn append_record(&self, rec: &SegRecord, is_batch: bool, seqno: Option<u64>) -> DbResult<()> {
        let payload = rec.encode_to_bytes();
        let framed = frame(&payload);
        let mut inner = self.inner.lock();
        if let Some(s) = seqno {
            inner.next_seqno = inner.next_seqno.max(s + 1);
        }

        if is_batch && crashpoint::hit(CrashPoint::MidAppend) {
            // Partial effect: the header and roughly half the payload
            // reach the file — a genuinely torn frame.
            let cut = 12 + payload.len() / 2;
            inner.active.write_all(&framed[..cut])?;
            inner.active.flush()?;
            return Err(crashpoint::error(CrashPoint::MidAppend));
        }

        inner.active.write_all(&framed)?;
        inner.active_bytes += framed.len() as u64;

        if is_batch && crashpoint::hit(CrashPoint::PostAppendPreSync) {
            // The record is fully written but not synced. (In-process
            // simulation keeps the bytes; a real crash may or may not —
            // recovery must accept either.)
            inner.active.flush()?;
            return Err(crashpoint::error(CrashPoint::PostAppendPreSync));
        }

        inner.appends_since_sync += 1;
        if inner.appends_since_sync >= self.config.sync_every {
            self.sync_inner(&mut inner)?;
        }

        if is_batch && crashpoint::hit(CrashPoint::PostSyncPreAck) {
            // Force durability, then crash before the caller learns of
            // it: the classic "durable but unacknowledged" window.
            self.sync_inner(&mut inner)?;
            return Err(crashpoint::error(CrashPoint::PostSyncPreAck));
        }

        if inner.active_bytes >= self.config.segment_bytes {
            self.rotate(&mut inner)?;
        }
        self.refresh_gauges(&mut inner);
        Ok(())
    }

    fn sync_inner(&self, inner: &mut Inner) -> DbResult<()> {
        inner.active.flush()?;
        inner.active.get_ref().sync_data()?;
        inner.appends_since_sync = 0;
        self.stats.syncs.inc();
        Ok(())
    }

    /// Flush and fsync the active segment.
    pub fn sync(&self) -> DbResult<()> {
        let mut inner = self.inner.lock();
        self.sync_inner(&mut inner)
    }

    fn rotate(&self, inner: &mut Inner) -> DbResult<()> {
        // Seal: everything in the outgoing segment becomes durable
        // before the new one exists.
        self.sync_inner(inner)?;

        let next_seqno = inner.next_seqno;
        let new_path = segment_path(&self.dir, next_seqno);
        if crashpoint::hit(CrashPoint::MidRotation) {
            // Partial effect: the fresh segment file exists (empty — no
            // header yet) but bookkeeping never switches over.
            if new_path != inner.active_path {
                drop(File::create(&new_path)?);
                fsync_dir(&self.dir)?;
            }
            return Err(crashpoint::error(CrashPoint::MidRotation));
        }

        if new_path == inner.active_path {
            // Degenerate rotation (no batch landed in this segment —
            // e.g. a frontier-only segment): keep appending in place.
            return Ok(());
        }

        let (file, bytes) = create_segment(&self.dir, &new_path, self.incarnation, next_seqno)?;
        let old = std::mem::replace(&mut inner.active, BufWriter::new(file));
        // BufWriter::into_inner would re-flush; sync_inner already did.
        drop(old);
        inner.sealed.push(Segment {
            path: std::mem::replace(&mut inner.active_path, new_path),
            bytes: inner.active_bytes,
        });
        inner.active_bytes = bytes;
        inner.appends_since_sync = 0;
        self.stats.rotations.inc();

        // Retention: drop whole oldest segments past the total budget,
        // keeping the window a contiguous suffix.
        let mut removed = false;
        loop {
            let total: u64 = inner.sealed.iter().map(|s| s.bytes).sum::<u64>() + inner.active_bytes;
            if total <= self.config.max_total_bytes || inner.sealed.is_empty() {
                break;
            }
            let victim = inner.sealed.remove(0);
            fs::remove_file(&victim.path)?;
            self.stats.segments_retired.inc();
            removed = true;
        }
        if removed {
            fsync_dir(&self.dir)?;
        }
        Ok(())
    }
}

impl Drop for SegLog {
    fn drop(&mut self) {
        // Best effort: push buffered appends to stable storage so a clean
        // shutdown loses nothing (a crash loses at most the unsynced
        // window, which recovery handles).
        if let Some(mut inner) = self.inner.try_lock() {
            let _ = self.sync_inner(&mut inner);
        }
    }
}

fn read_meta(path: &Path) -> Option<u64> {
    let mut buf = Vec::new();
    File::open(path).ok()?.read_to_end(&mut buf).ok()?;
    let valid = valid_prefix_len(&buf);
    if valid < 12 {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    let payload = &buf[12..12 + len];
    let mut r = WireReader::new(payload);
    if r.get_u32().ok()? != META_MAGIC {
        return None;
    }
    let incarnation = r.get_u64().ok()?;
    (incarnation > 0).then_some(incarnation)
}

fn write_meta(dir: &Path, incarnation: u64) -> DbResult<()> {
    let mut w = WireWriter::new();
    w.put_u32(META_MAGIC);
    w.put_u64(incarnation);
    let framed = frame(&w.finish());
    let tmp = dir.join("meta.tmp");
    let mut f = File::create(&tmp)?;
    f.write_all(&framed)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dir.join("meta"))?;
    fsync_dir(dir)?;
    Ok(())
}

fn create_segment(
    dir: &Path,
    path: &Path,
    incarnation: u64,
    base_seqno: u64,
) -> DbResult<(File, u64)> {
    let existed = path.exists();
    let file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut bytes = if existed { file.metadata()?.len() } else { 0 };
    if bytes == 0 {
        // Fresh (or crash-abandoned empty) segment: stamp the header.
        let hdr = SegRecord::Header {
            incarnation,
            base_seqno,
        }
        .encode_to_bytes();
        let framed = frame(&hdr);
        let mut f = &file;
        f.write_all(&framed)?;
        file.sync_data()?;
        bytes = framed.len() as u64;
    }
    fsync_dir(dir)?;
    Ok((file, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_common::crashpoint::CrashGuard;
    use std::sync::Mutex;

    // Crash points are process-global; serialize the tests that arm them.
    static SERIAL: Mutex<()> = Mutex::new(());

    struct TempDir(PathBuf);
    impl TempDir {
        fn new(name: &str) -> Self {
            let p = std::env::temp_dir()
                .join("displaydb-seglog-tests")
                .join(format!("{}-{}", name, std::process::id()));
            let _ = fs::remove_dir_all(&p);
            fs::create_dir_all(&p).unwrap();
            TempDir(p)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn cfg() -> DurableLogConfig {
        DurableLogConfig {
            enabled: true,
            segment_bytes: 512,
            max_total_bytes: 64 << 10,
            sync_every: 2,
        }
    }

    fn open(dir: &Path) -> (SegLog, SegLogRecovery) {
        SegLog::open(dir, cfg(), SegLogStats::new(), 77, 0).unwrap()
    }

    fn payload(i: u64) -> Vec<u8> {
        format!("batch-{i}").into_bytes()
    }

    #[test]
    fn roundtrip_across_reopen() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        let tmp = TempDir::new("roundtrip");
        let (log, rec) = open(tmp.path());
        assert_eq!(rec.next_seqno, 1);
        assert!(!rec.incarnation_recovered);
        assert_eq!(rec.incarnation, 77);
        for i in 1..=20u64 {
            log.append_batch(i, 100 + i, &payload(i)).unwrap();
        }
        log.append_frontier(ClientId::new(5), 18).unwrap();
        log.append_frontier(ClientId::new(5), 12).unwrap(); // stale; max wins
        log.sync().unwrap();
        drop(log);

        let (_log2, rec2) = open(tmp.path());
        assert!(rec2.incarnation_recovered);
        assert_eq!(rec2.incarnation, 77);
        assert!(!rec2.window_truncated);
        assert_eq!(rec2.next_seqno, 21);
        assert_eq!(rec2.last_txn, 120);
        let seqnos: Vec<u64> = rec2.batches.iter().map(|b| b.seqno).collect();
        assert_eq!(seqnos, (1..=20).collect::<Vec<_>>());
        assert_eq!(rec2.batches[4].payload, payload(5));
        assert_eq!(rec2.frontiers[&ClientId::new(5)], 18);
    }

    #[test]
    fn rotation_seals_and_retention_keeps_contiguous_suffix() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        let tmp = TempDir::new("rotate");
        let config = DurableLogConfig {
            enabled: true,
            segment_bytes: 256,
            max_total_bytes: 1024,
            sync_every: 1,
        };
        let stats = SegLogStats::new();
        let (log, _) = SegLog::open(tmp.path(), config, stats.clone(), 1, 0).unwrap();
        let big = vec![0xAB; 64];
        for i in 1..=64u64 {
            log.append_batch(i, i, &big).unwrap();
        }
        assert!(
            stats.rotations.get() >= 2,
            "rotations: {}",
            stats.rotations.get()
        );
        assert!(stats.segments_retired.get() >= 1);
        drop(log);

        let (_log2, rec) = SegLog::open(tmp.path(), config, SegLogStats::new(), 1, 0).unwrap();
        assert!(!rec.window_truncated);
        let seqnos: Vec<u64> = rec.batches.iter().map(|b| b.seqno).collect();
        assert!(!seqnos.is_empty());
        // Contiguous suffix ending at the durable head.
        assert_eq!(*seqnos.last().unwrap(), 64);
        for w in seqnos.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        assert_eq!(rec.next_seqno, 65);
    }

    #[test]
    fn torn_tail_truncates_window_but_keeps_incarnation_and_seqnos() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        let tmp = TempDir::new("torn");
        let (log, _) = open(tmp.path());
        for i in 1..=5u64 {
            log.append_batch(i, i, &payload(i)).unwrap();
        }
        log.sync().unwrap();
        drop(log);
        // Tear the newest segment by hand.
        let mut segs: Vec<PathBuf> = fs::read_dir(tmp.path())
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| parse_segment_base(p).is_some())
            .collect();
        segs.sort();
        let mut f = OpenOptions::new()
            .append(true)
            .open(segs.last().unwrap())
            .unwrap();
        f.write_all(&[9, 0, 0, 0, 1, 2]).unwrap();
        drop(f);

        let (log2, rec) = open(tmp.path());
        assert!(rec.window_truncated, "tear must truncate the window");
        assert!(rec.batches.is_empty());
        assert_eq!(rec.incarnation, 77);
        assert!(rec.incarnation_recovered);
        assert_eq!(rec.next_seqno, 6, "seqno space survives the tear");
        // The log keeps working past the tear.
        log2.append_batch(6, 6, &payload(6)).unwrap();
        log2.sync().unwrap();
        drop(log2);
        let (_log3, rec3) = open(tmp.path());
        assert!(!rec3.window_truncated);
        assert_eq!(rec3.batches.len(), 1);
        assert_eq!(rec3.batches[0].seqno, 6);
    }

    #[test]
    fn crash_points_leave_recoverable_state() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        for point in CrashPoint::ALL {
            let _guard = CrashGuard::new();
            let tmp = TempDir::new(&format!("cp-{}", point.name().replace('.', "-")));
            let config = DurableLogConfig {
                enabled: true,
                // Small segments so MidRotation actually fires.
                segment_bytes: 96,
                max_total_bytes: 64 << 10,
                sync_every: 1,
            };
            let (log, _) = SegLog::open(tmp.path(), config, SegLogStats::new(), 9, 0).unwrap();
            let mut acked = Vec::new();
            let mut crashed = None;
            // Append-path points are visited once per batch; the rotation
            // point only when a segment fills, so arm it for first hit.
            let skip = if point == CrashPoint::MidRotation {
                0
            } else {
                3
            };
            crashpoint::arm_after(point, skip);
            for i in 1..=8u64 {
                match log.append_batch(i, i, &payload(i)) {
                    Ok(()) => acked.push(i),
                    Err(DbError::CrashPoint(name)) => {
                        assert_eq!(name, point.name());
                        crashed = Some(i);
                        break;
                    }
                    Err(e) => panic!("unexpected error at {}: {e}", point.name()),
                }
            }
            let crashed = crashed.unwrap_or_else(|| panic!("{} never fired", point.name()));
            drop(log);

            let (_log2, rec) = SegLog::open(tmp.path(), config, SegLogStats::new(), 9, 0).unwrap();
            assert_eq!(rec.incarnation, 9, "{}", point.name());
            let seqnos: Vec<u64> = rec.batches.iter().map(|b| b.seqno).collect();
            for w in seqnos.windows(2) {
                assert_eq!(w[1], w[0] + 1, "{}: window not contiguous", point.name());
            }
            // No lost *acked* batch unless the tear truncated the window
            // (in which case the window is empty and resync takes over).
            if rec.window_truncated {
                assert!(seqnos.is_empty());
            } else if let Some(&last) = seqnos.last() {
                assert!(
                    acked.iter().all(|s| seqnos.contains(s)),
                    "{}: acked {acked:?} not all in recovered {seqnos:?}",
                    point.name()
                );
                assert!(
                    last <= crashed,
                    "{}: phantom seqno beyond crash",
                    point.name()
                );
            } else {
                assert!(acked.is_empty(), "{}: acked batches lost", point.name());
            }
            // Seqno space is monotone: recovery never re-issues a seqno
            // at or below one that was already durable.
            assert!(rec.next_seqno > seqnos.last().copied().unwrap_or(0));
        }
    }

    #[test]
    fn wal_cross_check_demotes_trailing_window() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        let tmp = TempDir::new("xcheck");
        let (log, _) = open(tmp.path());
        for i in 1..=4u64 {
            log.append_batch(i, 10 + i, &payload(i)).unwrap();
        }
        log.sync().unwrap();
        drop(log);

        // The WAL committed through txn 14: the window is current.
        let (_l, rec) = SegLog::open(tmp.path(), cfg(), SegLogStats::new(), 77, 14).unwrap();
        assert!(!rec.window_truncated);
        assert_eq!(rec.batches.len(), 4);
        drop(_l);

        // The WAL committed through txn 20: notification batches for
        // txns 15..=20 never reached the log — the window must go.
        let (_l2, rec2) = SegLog::open(tmp.path(), cfg(), SegLogStats::new(), 77, 20).unwrap();
        assert!(rec2.window_truncated, "trailing window must be demoted");
        assert!(rec2.batches.is_empty());
        assert_eq!(rec2.incarnation, 77);
        assert_eq!(rec2.next_seqno, 5, "seqno space survives the demotion");
    }

    #[test]
    fn unrecoverable_meta_mints_fresh_incarnation() {
        let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let _guard = CrashGuard::new();
        let tmp = TempDir::new("badmeta");
        let (log, rec) = open(tmp.path());
        assert_eq!(rec.incarnation, 77);
        log.append_batch(1, 1, &payload(1)).unwrap();
        log.sync().unwrap();
        drop(log);
        fs::write(tmp.path().join("meta"), b"garbage").unwrap();
        let (_log2, rec2) = SegLog::open(tmp.path(), cfg(), SegLogStats::new(), 123, 0).unwrap();
        assert!(!rec2.incarnation_recovered);
        assert_eq!(rec2.incarnation, 123);
        // Old segments carry the old incarnation → invalid under the new
        // one → window truncated; cursors from incarnation 77 can never
        // be honored, which is exactly the resync-only contract.
        assert!(rec2.window_truncated || rec2.batches.is_empty());
    }
}
