//! A pinning buffer pool with LRU eviction.
//!
//! This is the *server main-memory* level of the paper's memory hierarchy
//! (§ 3.2). Pages are pinned by [`PageGuard`]s; unpinned pages are evicted
//! least-recently-used when a frame is needed, with dirty pages written
//! back first. The paper's argument for the display cache rests on exactly
//! this behaviour: levels below the display cache may evict data at any
//! time for reasons the application cannot control (§ 2.2).

use crate::disk::DiskManager;
use crate::page::Page;
use displaydb_common::metrics::Counter;
use displaydb_common::sync::{
    ranks, OrderedMutex, OrderedReadGuard, OrderedRwLock, OrderedWriteGuard,
};
use displaydb_common::{DbError, DbResult, PageId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

struct Frame {
    page: OrderedRwLock<Option<Page>>,
    pins: AtomicU32,
    dirty: AtomicBool,
    last_used: AtomicU64,
}

struct Inner {
    /// page id -> frame index
    table: HashMap<PageId, usize>,
    /// frame index -> resident page id
    resident: Vec<Option<PageId>>,
    /// frames never used yet
    free: Vec<usize>,
}

/// Cache statistics.
#[derive(Clone, Debug, Default)]
pub struct BufferPoolStats {
    /// Fetches served from memory.
    pub hits: Counter,
    /// Fetches that had to read from disk.
    pub misses: Counter,
    /// Pages evicted to make room.
    pub evictions: Counter,
    /// Dirty pages written back during eviction or flush.
    pub writebacks: Counter,
}

/// Fixed-capacity page cache over a [`DiskManager`].
pub struct BufferPool {
    disk: Arc<DiskManager>,
    frames: Vec<Frame>,
    inner: OrderedMutex<Inner>,
    tick: AtomicU64,
    stats: BufferPoolStats,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.frames.len())
            .finish()
    }
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> Arc<Self> {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                page: OrderedRwLock::new(ranks::BUFFER_FRAME, None),
                pins: AtomicU32::new(0),
                dirty: AtomicBool::new(false),
                last_used: AtomicU64::new(0),
            })
            .collect();
        Arc::new(Self {
            disk,
            frames,
            inner: OrderedMutex::new(
                ranks::BUFFER_POOL,
                Inner {
                    table: HashMap::new(),
                    resident: vec![None; capacity],
                    free: (0..capacity).rev().collect(),
                },
            ),
            tick: AtomicU64::new(1),
            stats: BufferPoolStats::default(),
        })
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// The underlying disk manager.
    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Pool statistics (shared counters).
    pub fn stats(&self) -> &BufferPoolStats {
        &self.stats
    }

    /// Fetch `pid`, pinning it for the lifetime of the returned guard.
    pub fn fetch(self: &Arc<Self>, pid: PageId) -> DbResult<PageGuard> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.table.get(&pid) {
            self.frames[idx].pins.fetch_add(1, Ordering::AcqRel);
            self.stats.hits.inc();
            return Ok(self.guard(idx, pid));
        }
        self.stats.misses.inc();
        let idx = self.take_frame(&mut inner)?;
        let page = self.disk.read_page(pid)?;
        *self.frames[idx].page.write() = Some(page);
        self.frames[idx].dirty.store(false, Ordering::Release);
        self.frames[idx].pins.store(1, Ordering::Release);
        inner.table.insert(pid, idx);
        inner.resident[idx] = Some(pid);
        Ok(self.guard(idx, pid))
    }

    /// Allocate a fresh page on disk, format it with `flags`, and return it
    /// pinned and dirty.
    pub fn new_page(self: &Arc<Self>, flags: u16) -> DbResult<PageGuard> {
        let pid = self.disk.allocate()?;
        let mut inner = self.inner.lock();
        let idx = self.take_frame(&mut inner)?;
        *self.frames[idx].page.write() = Some(Page::new(pid, flags));
        self.frames[idx].dirty.store(true, Ordering::Release);
        self.frames[idx].pins.store(1, Ordering::Release);
        inner.table.insert(pid, idx);
        inner.resident[idx] = Some(pid);
        Ok(self.guard(idx, pid))
    }

    /// Drop `pid` from the pool (must be unpinned) and free it on disk.
    pub fn delete_page(&self, pid: PageId) -> DbResult<()> {
        let mut inner = self.inner.lock();
        if let Some(idx) = inner.table.remove(&pid) {
            if self.frames[idx].pins.load(Ordering::Acquire) != 0 {
                inner.table.insert(pid, idx);
                return Err(DbError::InvalidArgument(format!(
                    "cannot delete pinned {pid}"
                )));
            }
            inner.resident[idx] = None;
            inner.free.push(idx);
            *self.frames[idx].page.write() = None;
            self.frames[idx].dirty.store(false, Ordering::Release);
        }
        self.disk.deallocate(pid);
        Ok(())
    }

    fn guard(self: &Arc<Self>, idx: usize, pid: PageId) -> PageGuard {
        PageGuard {
            pool: Arc::clone(self),
            idx,
            pid,
        }
    }

    /// Pick a frame: an unused one, else evict the LRU unpinned page.
    /// Caller holds `inner`.
    fn take_frame(&self, inner: &mut Inner) -> DbResult<usize> {
        if let Some(idx) = inner.free.pop() {
            return Ok(idx);
        }
        let victim = (0..self.frames.len())
            .filter(|&i| self.frames[i].pins.load(Ordering::Acquire) == 0)
            .min_by_key(|&i| self.frames[i].last_used.load(Ordering::Acquire))
            .ok_or(DbError::BufferExhausted)?;
        let old_pid = inner.resident[victim].expect("occupied frame has a page id");
        if self.frames[victim].dirty.swap(false, Ordering::AcqRel) {
            let guard = self.frames[victim].page.read();
            let page = guard.as_ref().expect("occupied frame has a page");
            self.disk.write_page(old_pid, page)?;
            self.stats.writebacks.inc();
        }
        inner.table.remove(&old_pid);
        inner.resident[victim] = None;
        self.stats.evictions.inc();
        Ok(victim)
    }

    /// Write back one page if resident and dirty.
    pub fn flush_page(&self, pid: PageId) -> DbResult<()> {
        let inner = self.inner.lock();
        if let Some(&idx) = inner.table.get(&pid) {
            if self.frames[idx].dirty.swap(false, Ordering::AcqRel) {
                let guard = self.frames[idx].page.read();
                if let Some(page) = guard.as_ref() {
                    self.disk.write_page(pid, page)?;
                    self.stats.writebacks.inc();
                }
            }
        }
        Ok(())
    }

    /// Write back every dirty resident page and sync the file.
    pub fn flush_all(&self) -> DbResult<()> {
        let pids: Vec<PageId> = {
            let inner = self.inner.lock();
            inner.table.keys().copied().collect()
        };
        for pid in pids {
            self.flush_page(pid)?;
        }
        self.disk.sync()
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().table.len()
    }
}

/// A pinned page. Dropping the guard unpins it.
pub struct PageGuard {
    pool: Arc<BufferPool>,
    idx: usize,
    pid: PageId,
}

impl PageGuard {
    /// The pinned page's id.
    pub fn page_id(&self) -> PageId {
        self.pid
    }

    /// Shared access to the page contents.
    pub fn read(&self) -> OrderedReadGuard<'_, Option<Page>> {
        self.pool.frames[self.idx].page.read()
    }

    /// Exclusive access; marks the page dirty.
    pub fn write(&self) -> OrderedWriteGuard<'_, Option<Page>> {
        self.pool.frames[self.idx]
            .dirty
            .store(true, Ordering::Release);
        self.pool.frames[self.idx].page.write()
    }

    /// Run `f` with shared access to the page.
    pub fn with_read<T>(&self, f: impl FnOnce(&Page) -> T) -> T {
        f(self.read().as_ref().expect("pinned page present"))
    }

    /// Run `f` with exclusive access to the page (marks it dirty).
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Page) -> T) -> T {
        f(self.write().as_mut().expect("pinned page present"))
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        let tick = self.pool.tick.fetch_add(1, Ordering::Relaxed);
        self.pool.frames[self.idx]
            .last_used
            .store(tick, Ordering::Release);
        self.pool.frames[self.idx]
            .pins
            .fetch_sub(1, Ordering::AcqRel);
    }
}

impl std::fmt::Debug for PageGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageGuard({})", self.pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::FLAG_HEAP;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("displaydb-buffer-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{}-{}.db", name, std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn pool(name: &str, cap: usize) -> (Arc<BufferPool>, PathBuf) {
        let path = tmp(name);
        let disk = Arc::new(DiskManager::open(&path).unwrap());
        (BufferPool::new(disk, cap), path)
    }

    #[test]
    fn new_page_then_fetch() {
        let (pool, path) = pool("basic", 4);
        let pid = {
            let g = pool.new_page(FLAG_HEAP).unwrap();
            g.with_write(|p| p.insert(b"hello").unwrap());
            g.page_id()
        };
        let g = pool.fetch(pid).unwrap();
        assert_eq!(g.with_read(|p| p.get(0).unwrap().to_vec()), b"hello");
        drop(g);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let (pool, path) = pool("evict", 2);
        let mut pids = Vec::new();
        for i in 0..5u8 {
            let g = pool.new_page(FLAG_HEAP).unwrap();
            g.with_write(|p| p.insert(&[i; 10]).unwrap());
            pids.push(g.page_id());
        }
        // Pool holds 2 frames; earlier pages must have been evicted and
        // written back. Fetch them again and verify contents.
        for (i, pid) in pids.iter().enumerate() {
            let g = pool.fetch(*pid).unwrap();
            assert_eq!(
                g.with_read(|p| p.get(0).unwrap().to_vec()),
                vec![i as u8; 10]
            );
        }
        assert!(pool.stats().evictions.get() >= 3);
        assert!(pool.stats().writebacks.get() >= 3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (pool, path) = pool("pin", 2);
        let g1 = pool.new_page(FLAG_HEAP).unwrap();
        let g2 = pool.new_page(FLAG_HEAP).unwrap();
        // Both frames pinned: next allocation must fail.
        assert!(matches!(
            pool.new_page(FLAG_HEAP),
            Err(DbError::BufferExhausted)
        ));
        drop(g1);
        // Now one frame is evictable.
        let g3 = pool.new_page(FLAG_HEAP).unwrap();
        drop(g2);
        drop(g3);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (pool, path) = pool("lru", 2);
        let a = pool.new_page(FLAG_HEAP).unwrap().page_id();
        let b = pool.new_page(FLAG_HEAP).unwrap().page_id();
        // Touch a so b is LRU.
        drop(pool.fetch(a).unwrap());
        let _c = pool.new_page(FLAG_HEAP).unwrap();
        // b must have been evicted; a should still be resident (hit).
        let hits_before = pool.stats().hits.get();
        drop(pool.fetch(a).unwrap());
        assert_eq!(pool.stats().hits.get(), hits_before + 1);
        let misses_before = pool.stats().misses.get();
        drop(pool.fetch(b).unwrap());
        assert_eq!(pool.stats().misses.get(), misses_before + 1);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flush_all_persists_without_eviction() {
        let (pool, path) = pool("flush", 8);
        let pid = {
            let g = pool.new_page(FLAG_HEAP).unwrap();
            g.with_write(|p| p.insert(b"durable").unwrap());
            g.page_id()
        };
        pool.flush_all().unwrap();
        // Read through a second pool over the same file.
        let disk2 = Arc::new(DiskManager::open(&path).unwrap());
        let pool2 = BufferPool::new(disk2, 2);
        let g = pool2.fetch(pid).unwrap();
        assert_eq!(g.with_read(|p| p.get(0).unwrap().to_vec()), b"durable");
        drop(g);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn delete_page_rejects_pinned() {
        let (pool, path) = pool("delete", 4);
        let g = pool.new_page(FLAG_HEAP).unwrap();
        let pid = g.page_id();
        assert!(pool.delete_page(pid).is_err());
        drop(g);
        pool.delete_page(pid).unwrap();
        assert_eq!(pool.resident_pages(), 0);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn concurrent_fetches_share_and_pin() {
        let (pool, path) = pool("concurrent", 8);
        let pid = {
            let g = pool.new_page(FLAG_HEAP).unwrap();
            g.with_write(|p| p.insert(b"shared").unwrap());
            g.page_id()
        };
        pool.flush_all().unwrap();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let g = pool.fetch(pid).unwrap();
                    assert_eq!(g.with_read(|p| p.get(0).unwrap().to_vec()), b"shared");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(path).unwrap();
    }
}
