//! Property tests for the durable segment log (DESIGN.md § 14).
//!
//! Random batch sequences are pushed through a [`SegLog`] with a crash
//! simulated at a randomly chosen armed crash point, then the directory is
//! reopened ("restarted") and the recovery invariants checked:
//!
//! * the retained window is always a **contiguous suffix** of the appended
//!   seqno space, with byte-identical payloads,
//! * every *acked* append (one whose `append_batch` returned `Ok`) is
//!   recovered — unless the tear truncated the window entirely, which is
//!   the documented resync-fallback case,
//! * every recovered **frontier ≤ the durable head**, and the next seqno
//!   never re-issues a recovered one (cursor monotonicity across
//!   incarnations),
//! * a second, crash-free reopen is idempotent: same incarnation, same
//!   window.
//!
//! The crash-point harness is process-global, so everything runs inside
//! one `#[test]` (proptest executes cases sequentially) — this file must
//! not gain a second test that arms crash points.

use displaydb_common::crashpoint::{self, CrashGuard, CrashPoint};
use displaydb_common::metrics::SegLogStats;
use displaydb_common::{ClientId, DbError, DurableLogConfig};
use displaydb_storage::seglog::SegLog;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static CASE: AtomicU64 = AtomicU64::new(0);

struct TempDir(PathBuf);
impl TempDir {
    fn new() -> Self {
        let p = std::env::temp_dir()
            .join("displaydb-seglog-proptest")
            .join(format!(
                "case-{}-{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed)
            ));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        TempDir(p)
    }
}
impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[derive(Clone, Debug)]
struct Plan {
    payloads: Vec<Vec<u8>>,
    crash: Option<CrashPoint>,
    skip: u64,
    segment_bytes: u64,
    sync_every: u32,
    frontier_every: usize,
}

fn plan() -> impl Strategy<Value = Plan> {
    (
        (
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..32),
            // 0 = no crash; 1..=4 index CrashPoint::ALL.
            0usize..5,
            0u64..8,
        ),
        (
            prop_oneof![Just(96u64), Just(192u64), Just(512u64)],
            1u32..4,
            1usize..5,
        ),
    )
        .prop_map(
            |((payloads, crash_idx, skip), (segment_bytes, sync_every, frontier_every))| Plan {
                payloads,
                crash: crash_idx.checked_sub(1).map(|i| CrashPoint::ALL[i]),
                skip,
                segment_bytes,
                sync_every,
                frontier_every,
            },
        )
}

proptest! {
    #[test]
    fn crash_and_recover_preserves_window_invariants(plan in plan()) {
        let _guard = CrashGuard::new();
        let tmp = TempDir::new();
        let config = DurableLogConfig {
            enabled: true,
            segment_bytes: plan.segment_bytes,
            max_total_bytes: 1 << 20,
            sync_every: plan.sync_every,
        };
        let (log, rec0) = SegLog::open(&tmp.0, config, SegLogStats::new(), 42, 0).unwrap();
        prop_assert_eq!(rec0.next_seqno, 1);

        if let Some(point) = plan.crash {
            crashpoint::arm_after(point, plan.skip);
        }

        let client = ClientId::new(7);
        let mut acked: Vec<u64> = Vec::new();
        let mut appended: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut max_frontier = 0u64;
        let mut crashed = false;
        for (i, payload) in plan.payloads.iter().enumerate() {
            let seqno = (i + 1) as u64;
            match log.append_batch(seqno, seqno, payload) {
                Ok(()) => {
                    acked.push(seqno);
                    appended.push((seqno, payload.clone()));
                    if seqno % plan.frontier_every as u64 == 0 {
                        // Frontiers trail the acked head, like real outbox
                        // acks do. Count it before the append: the record
                        // is fully framed before the only crash point a
                        // frontier can trip (mid-rotation), so an Err here
                        // can still leave the frontier durable.
                        let cursor = seqno.saturating_sub(1).max(1);
                        max_frontier = max_frontier.max(cursor);
                        if log.append_frontier(client, cursor).is_err() {
                            crashed = true;
                            break;
                        }
                    }
                }
                Err(DbError::CrashPoint(_)) => {
                    // The crashing batch is un-acked; it may or may not be
                    // durable.
                    appended.push((seqno, payload.clone()));
                    crashed = true;
                    break;
                }
                Err(e) => return Err(format!("unexpected error: {e}")),
            }
        }
        if !crashed {
            log.sync().unwrap();
        }
        drop(log);

        // "Restart": reopen the same directory.
        crashpoint::disarm_all();
        let (log2, rec) = SegLog::open(&tmp.0, config, SegLogStats::new(), 99, 0).unwrap();
        prop_assert!(rec.incarnation_recovered);
        prop_assert_eq!(rec.incarnation, 42);

        let seqnos: Vec<u64> = rec.batches.iter().map(|b| b.seqno).collect();
        // Contiguous suffix with intact payloads.
        for w in seqnos.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1, "window not contiguous: {:?}", seqnos);
        }
        for b in &rec.batches {
            let (_, ref want) = appended[(b.seqno - 1) as usize];
            prop_assert_eq!(&b.payload, want, "payload mismatch at seqno {}", b.seqno);
        }
        if rec.window_truncated {
            prop_assert!(seqnos.is_empty());
        } else {
            // No lost acked batch: the window covers every Ok append.
            for s in &acked {
                prop_assert!(
                    seqnos.contains(s),
                    "acked seqno {} missing from recovered window {:?}",
                    s,
                    seqnos
                );
            }
        }
        // No phantom: nothing beyond what was ever appended.
        if let Some(&last) = seqnos.last() {
            prop_assert!(last <= appended.len() as u64);
        }
        // Recovered frontier ≤ durable head; seqno space is monotone.
        let durable_head = rec.next_seqno - 1;
        if let Some(&f) = rec.frontiers.get(&client) {
            prop_assert!(f <= durable_head, "frontier {} > head {}", f, durable_head);
            prop_assert!(f <= max_frontier);
        }
        prop_assert!(rec.next_seqno > seqnos.last().copied().unwrap_or(0));
        prop_assert!(durable_head <= appended.len() as u64);
        drop(log2);

        // Crash-free reopen is idempotent.
        let (_log3, rec2) = SegLog::open(&tmp.0, config, SegLogStats::new(), 99, 0).unwrap();
        prop_assert!(!rec2.window_truncated);
        prop_assert_eq!(rec2.incarnation, 42);
        let seqnos2: Vec<u64> = rec2.batches.iter().map(|b| b.seqno).collect();
        prop_assert_eq!(&seqnos2, &seqnos, "second recovery changed the window");
        prop_assert_eq!(rec2.next_seqno, rec.next_seqno);
    }
}
