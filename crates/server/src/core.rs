//! The request processor: transactions, locking, callbacks, display
//! notifications.
//!
//! ## Consistency model
//!
//! The server keeps client caches coherent with an avoidance-style
//! callback protocol:
//!
//! * **Grant-time callbacks** — when a transaction acquires an exclusive
//!   lock, every other client recorded in the copy table is called back
//!   and drops its copy before the grant returns (read-one/write-all).
//! * **Commit-time callbacks** — copies registered *while* the exclusive
//!   lock was held (reads of the pre-commit state are legal under strict
//!   2PL ordering) are invalidated when the update commits. With
//!   [`ServerConfig::sync_callbacks`] (default), the commit does not
//!   acknowledge until these invalidations are acknowledged, giving
//!   cached reads ROWA semantics; async mode trades a bounded staleness
//!   window (one message delay) for commit latency — the same trade-off
//!   the paper's 1–2 s display-propagation measurement lives in.
//! * **Momentary shared locks on reads** — a server-side read briefly
//!   acquires S, so it can never observe a half-applied update.
//!
//! ## Display notifications
//!
//! The commit and exclusive-grant paths raise events on the embedded
//! [`DlmCore`] (integrated deployment): `Marked` on X-grant (early-notify
//! protocol), `Resolved` + `Updated` on commit/abort. The same server
//! works with an external DLM agent instead — clients then report commits
//! themselves (paper § 4.1) and the embedded core simply has no
//! registered holders.

use crate::copies::CopyTable;
use crate::proto::{Request, Response, ResumeCursors, ResumeRequest, ServerPush, WireLockMode};
use crate::store::{ObjectStore, WriteOp};
use crate::txn::TxnManager;
use displaydb_common::ids::IdGen;
use displaydb_common::metrics::{Counter, SegLogStats};
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{ClientId, DbError, DbResult, DurableLogConfig, Oid, TxnId};
use displaydb_dlm::{
    DlmConfig, DurableRecovery, EventSink, OutboxSink, ShardTagSink, ShardedDlm, UpdateInfo,
};
use displaydb_lockmgr::{LockManager, LockManagerConfig, LockMode, Owner};
use displaydb_schema::{Catalog, DbObject};
use displaydb_wire::{Channel, Encode};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Directory for the data file and WAL.
    pub data_dir: PathBuf,
    /// Buffer pool frames.
    pub buffer_frames: usize,
    /// fsync the WAL on every commit.
    pub sync_commits: bool,
    /// Lock manager tuning.
    pub lock: LockManagerConfig,
    /// Display-lock notification protocol (integrated deployment).
    pub dlm: DlmConfig,
    /// How long to wait for one client's callback acknowledgement.
    pub callback_timeout: Duration,
    /// Wait for commit-time callback acks before acknowledging commits.
    pub sync_callbacks: bool,
    /// Spill the DLM update log to stable storage under
    /// `data_dir/dlmlog` so notification cursors survive restarts
    /// (DESIGN.md § 14). Disabled by default: the in-memory log's seqno
    /// space then dies with the process, exactly as before.
    pub durable_log: DurableLogConfig,
}

impl ServerConfig {
    /// The overload-protection knobs (shared with the embedded DLM so
    /// outbox high-water, admission control, and shutdown drain are one
    /// coherent policy).
    pub fn overload(&self) -> displaydb_common::OverloadConfig {
        self.dlm.overload
    }
}

impl ServerConfig {
    /// A config rooted at `data_dir` with defaults suitable for tests and
    /// examples.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        Self {
            data_dir: data_dir.into(),
            buffer_frames: 256,
            sync_commits: false,
            lock: LockManagerConfig::default(),
            dlm: DlmConfig::default(),
            callback_timeout: Duration::from_secs(2),
            sync_callbacks: true,
            durable_log: DurableLogConfig::default(),
        }
    }
}

/// Server-wide counters.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Requests processed.
    pub requests: Counter,
    /// Object reads served.
    pub reads: Counter,
    /// Commits processed.
    pub commits: Counter,
    /// Aborts processed.
    pub aborts: Counter,
    /// Callback pushes sent.
    pub callbacks: Counter,
    /// Messages pushed to clients (all kinds).
    pub pushes: Counter,
    /// Sessions recovered **across a restart** via the durable update
    /// log (cursor admitted under a surviving log incarnation, currency
    /// proven from the durable window; DESIGN.md § 14).
    pub sessions_recovered: Counter,
}

impl ServerStats {
    /// Counter values for reports and the unified stats registry.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("requests", self.requests.get()),
            ("reads", self.reads.get()),
            ("commits", self.commits.get()),
            ("aborts", self.aborts.get()),
            ("callbacks", self.callbacks.get()),
            ("pushes", self.pushes.get()),
            ("sessions_recovered", self.sessions_recovered.get()),
        ]
    }
}

impl displaydb_common::StatsSource for ServerStats {
    fn stat_values(&self) -> Vec<(&'static str, u64)> {
        self.snapshot()
    }
}

/// One connected client's push channel and ack bookkeeping.
pub struct SessionHandle {
    /// The client this session serves.
    pub client: ClientId,
    channel: Arc<dyn Channel>,
    acks: OrderedMutex<HashMap<u64, crossbeam::channel::Sender<()>>>,
    ack_gen: IdGen,
    stats: ServerStats,
    /// The bounded outboxes wrapped around this session's DLM sinks
    /// (one per DLM shard; a single entry in the unsharded deployment);
    /// kept here so shutdown can drain them before closing the channel.
    /// Weak because each outbox's inner sink points back at this handle
    /// — the strong references live in the DLM's sink registries.
    outboxes: OrderedMutex<Vec<std::sync::Weak<OutboxSink>>>,
    /// Requests currently being processed for this session (admission
    /// control; see `session_loop`).
    in_flight: std::sync::atomic::AtomicUsize,
}

impl SessionHandle {
    fn new(client: ClientId, channel: Arc<dyn Channel>, stats: ServerStats) -> Self {
        Self {
            client,
            channel,
            acks: OrderedMutex::new(ranks::SESSION_ACKS, HashMap::new()),
            ack_gen: IdGen::starting_at(1),
            stats,
            outboxes: OrderedMutex::new(ranks::SESSION_OUTBOX, Vec::new()),
            in_flight: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Try to admit one more concurrent request; `false` means shed.
    pub fn try_admit(&self, max_in_flight: usize) -> bool {
        use std::sync::atomic::Ordering;
        let mut current = self.in_flight.load(Ordering::Relaxed);
        loop {
            if current >= max_in_flight {
                return false;
            }
            match self.in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Release one admission slot taken by [`SessionHandle::try_admit`].
    pub fn finish_request(&self) {
        self.in_flight
            .fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Requests currently in flight for this session.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Flush the session's notification outboxes, bounded by `timeout`
    /// across all of them together. Returns whether every outbox
    /// emptied (vacuously true when the session has none).
    pub fn drain_outbox(&self, timeout: Duration) -> bool {
        // Upgrade to strong references and release the slot's lock
        // before the (blocking) drains: holding a guard across them
        // would stall every other caller for the full drain timeout.
        let outboxes: Vec<_> = self
            .outboxes
            .lock_or_recover()
            .iter()
            .filter_map(std::sync::Weak::upgrade)
            .collect();
        let deadline = std::time::Instant::now() + timeout;
        let mut all = true;
        for outbox in outboxes {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            all &= outbox.drain(left);
        }
        all
    }

    /// Whether this session's client has been demoted to resync-only
    /// notification mode (slow consumer) on any shard.
    pub fn is_lagging(&self) -> bool {
        // Same shape as `drain_outbox`: take the strong references, drop
        // the slot guard, then ask each outbox (which takes its own lock).
        let outboxes: Vec<_> = self
            .outboxes
            .lock_or_recover()
            .iter()
            .filter_map(std::sync::Weak::upgrade)
            .collect();
        outboxes.iter().any(|outbox| outbox.is_lagging())
    }

    /// Push a message without expecting an ack.
    pub fn push(&self, push: ServerPush) -> DbResult<()> {
        self.stats.pushes.inc();
        self.channel
            .send(crate::proto::Envelope::Push(push).encode_to_bytes())
    }

    /// Send a callback for `oids`. When `wait` is set, returns a waiter
    /// handle to pass to [`SessionHandle::callback_wait`]; callbacks to
    /// many clients are sent first and awaited together, so the total
    /// cost is one round-trip, not one per client.
    pub fn callback_send(
        &self,
        oids: Vec<Oid>,
        wait: bool,
    ) -> DbResult<Option<(u64, crossbeam::channel::Receiver<()>)>> {
        let ack = self.ack_gen.next();
        let (tx, rx) = crossbeam::channel::bounded(1);
        if wait {
            self.acks.lock_or_recover().insert(ack, tx);
        }
        self.stats.callbacks.inc();
        match self.push(ServerPush::Callback { ack, oids }) {
            Ok(()) => Ok(wait.then_some((ack, rx))),
            Err(e) => {
                self.acks.lock_or_recover().remove(&ack);
                Err(e)
            }
        }
    }

    /// Wait for an ack issued by [`SessionHandle::callback_send`].
    pub fn callback_wait(
        &self,
        ack: u64,
        rx: &crossbeam::channel::Receiver<()>,
        deadline: std::time::Instant,
    ) -> DbResult<()> {
        let now = std::time::Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        let result = rx
            .recv_timeout(timeout)
            .map_err(|_| DbError::Timeout("callback ack".into()));
        self.acks.lock_or_recover().remove(&ack);
        result
    }

    /// Send a callback and wait for its ack (single-client convenience).
    pub fn callback(&self, oids: Vec<Oid>, timeout: Duration, wait: bool) -> DbResult<()> {
        match self.callback_send(oids, wait)? {
            Some((ack, rx)) => self.callback_wait(ack, &rx, std::time::Instant::now() + timeout),
            None => Ok(()),
        }
    }

    /// Route an incoming ack to its waiter.
    pub fn handle_ack(&self, ack: u64) {
        // Remove under the lock, send outside it: an `if let` scrutinee
        // guard would live for the whole block, holding the ack table
        // across the channel send.
        let waiter = self.acks.lock_or_recover().remove(&ack);
        if let Some(tx) = waiter {
            let _ = tx.send(());
        }
    }

    /// Tear down the underlying channel.
    pub fn close(&self) {
        self.channel.close();
    }
}

struct SessionSink {
    handle: Arc<SessionHandle>,
    /// Shared byte counter so experiments can measure notification
    /// traffic on the wire (counted after coalescing and batching).
    bytes: Counter,
}

impl EventSink for SessionSink {
    fn deliver(&self, event: displaydb_dlm::DlmEvent) -> DbResult<()> {
        self.handle.stats.pushes.inc();
        event.record_stage(displaydb_common::trace::Stage::WireSend);
        let frame = crate::proto::Envelope::Push(ServerPush::Dlm(event)).encode_to_bytes();
        self.bytes.add(frame.len() as u64);
        self.handle.channel.send(frame)
    }
}

/// All connected sessions.
pub struct SessionRegistry {
    sessions: OrderedMutex<HashMap<ClientId, Arc<SessionHandle>>>,
}

impl Default for SessionRegistry {
    fn default() -> Self {
        Self {
            sessions: OrderedMutex::new(ranks::SERVER_SESSIONS, HashMap::new()),
        }
    }
}

impl SessionRegistry {
    /// Look up a session.
    pub fn get(&self, client: ClientId) -> Option<Arc<SessionHandle>> {
        self.sessions.lock().get(&client).cloned()
    }

    fn insert(&self, handle: Arc<SessionHandle>) {
        self.sessions.lock().insert(handle.client, handle);
    }

    fn remove(&self, client: ClientId) {
        self.sessions.lock().remove(&client);
    }

    /// Number of connected clients.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether no clients are connected.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }

    /// Snapshot of every live session (for shutdown and broadcast).
    pub fn all(&self) -> Vec<Arc<SessionHandle>> {
        self.sessions.lock().values().cloned().collect()
    }

    /// Whether the registry still maps `handle.client` to exactly this
    /// handle. False once a resumed session has replaced it.
    fn is_current(&self, handle: &Arc<SessionHandle>) -> bool {
        self.sessions
            .lock()
            .get(&handle.client)
            .is_some_and(|h| Arc::ptr_eq(h, handle))
    }
}

/// Server-side record behind a resume token.
struct ResumeState {
    client: ClientId,
    epoch: u64,
}

/// The server brain, shared by all session threads.
pub struct ServerCore {
    catalog: Arc<Catalog>,
    store: ObjectStore,
    locks: LockManager,
    txns: TxnManager,
    copies: CopyTable,
    dlm: Arc<ShardedDlm>,
    sessions: SessionRegistry,
    client_gen: IdGen,
    config: ServerConfig,
    stats: ServerStats,
    catalog_bytes: Vec<u8>,
    /// Changes on every server start; lets reconnecting clients detect a
    /// restart (their resume token is from a previous incarnation).
    incarnation: u64,
    /// Commit counter per object, used to answer "did this change while
    /// the client was away?" during session resume. In-memory only: after
    /// a restart no currency can be proven and resumed manifests are
    /// reported entirely stale.
    versions: OrderedMutex<HashMap<Oid, u64>>,
    /// What the durable DLM update logs recovered at startup, one entry
    /// per shard (empty when [`ServerConfig::durable_log`] is disabled).
    dlm_recovery: Vec<DurableRecovery>,
    /// Segment-log counters for the durable spill (unused-but-present
    /// zeros when the spill is disabled).
    seglog_stats: SegLogStats,
    /// Issued resume tokens. Entries survive disconnects (that is the
    /// point); they die with the process.
    resume_tokens: OrderedMutex<HashMap<u64, ResumeState>>,
    token_gen: IdGen,
    /// Resume handshakes currently being processed (reconnect-storm
    /// admission gate; see `session_loop`).
    resumes_in_flight: std::sync::atomic::AtomicUsize,
}

impl ServerCore {
    /// Open the store and build the core.
    pub fn open(catalog: Arc<Catalog>, config: ServerConfig) -> DbResult<Arc<Self>> {
        let store = ObjectStore::open(
            &config.data_dir,
            Arc::clone(&catalog),
            config.buffer_frames,
            config.sync_commits,
        )?;
        let catalog_bytes = catalog.encode_to_bytes().to_vec();
        let incarnation = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            .max(1);
        // With a durable update log, recover the replay window and
        // cursor frontiers from `data_dir/dlmlog`, cross-checked against
        // the commit stream the main WAL held at open: a durable
        // notification stream that stops short of a committed txn is
        // missing updates for good and must not serve replays
        // (DESIGN.md § 14).
        let seglog_stats = SegLogStats::new();
        let (dlm, dlm_recovery) = if config.durable_log.is_enabled() {
            let (sharded, recs) = ShardedDlm::new_durable(
                config.dlm,
                config.data_dir.join("dlmlog"),
                config.durable_log,
                seglog_stats.clone(),
                incarnation,
                store.recovered_last_txn(),
            )?;
            (Arc::new(sharded), recs)
        } else {
            (Arc::new(ShardedDlm::new(config.dlm)), Vec::new())
        };
        let txns = TxnManager::new();
        if let Some(max_txn) = dlm_recovery.iter().map(|rec| rec.last_txn).max() {
            // Transaction ids must stay monotone across incarnations:
            // the cross-check above compares txn ids issued by different
            // processes against the durable logs.
            txns.bump_past(max_txn.max(store.recovered_last_txn()));
        }
        Ok(Arc::new(Self {
            store,
            locks: LockManager::new(config.lock),
            txns,
            copies: CopyTable::new(),
            dlm,
            sessions: SessionRegistry::default(),
            client_gen: IdGen::starting_at(1),
            config,
            stats: ServerStats::default(),
            catalog_bytes,
            catalog,
            incarnation,
            dlm_recovery,
            seglog_stats,
            versions: OrderedMutex::new(ranks::SERVER_VERSIONS, HashMap::new()),
            resume_tokens: OrderedMutex::new(ranks::SERVER_RESUME_TOKENS, HashMap::new()),
            token_gen: IdGen::starting_at(1),
            resumes_in_flight: std::sync::atomic::AtomicUsize::new(0),
        }))
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// The embedded (sharded) DLM (integrated deployment).
    pub fn dlm(&self) -> &Arc<ShardedDlm> {
        &self.dlm
    }

    /// The lock manager.
    pub fn locks(&self) -> &LockManager {
        &self.locks
    }

    /// Server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Connected sessions.
    pub fn sessions(&self) -> &SessionRegistry {
        &self.sessions
    }

    /// The nonce identifying this server process start.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Shard 0's durable update-log incarnation (0 = no durable log).
    /// Unlike [`Self::incarnation`], this survives restarts — it names
    /// the seqno space that shard's notification cursors live in
    /// (DESIGN.md § 14). The full per-shard vector is
    /// [`Self::log_incarnations`].
    pub fn log_incarnation(&self) -> u64 {
        self.dlm.update_log().incarnation().unwrap_or(0)
    }

    /// Every shard's durable update-log incarnation, index = shard
    /// (0 = that shard has no durable log).
    pub fn log_incarnations(&self) -> Vec<u64> {
        self.dlm.log_incarnations()
    }

    /// What shard 0's durable update log recovered at startup (`None`
    /// when the durable spill is disabled). Per-shard reports are in
    /// [`Self::dlm_recoveries`].
    pub fn dlm_recovery(&self) -> Option<&DurableRecovery> {
        self.dlm_recovery.first()
    }

    /// What the durable update logs recovered at startup, one entry per
    /// shard (empty when the durable spill is disabled).
    pub fn dlm_recoveries(&self) -> &[DurableRecovery] {
        &self.dlm_recovery
    }

    /// Segment-log counters for the durable update-log spill.
    pub fn seglog_stats(&self) -> &SegLogStats {
        &self.seglog_stats
    }

    /// The current commit version of an object (0 if never committed in
    /// this incarnation).
    pub fn version_of(&self, oid: Oid) -> u64 {
        self.versions.lock().get(&oid).copied().unwrap_or(0)
    }

    /// Try to admit one more concurrent *resume* handshake. After a mass
    /// disconnect (server restart, network partition heal) every client
    /// reconnects at once; bounding how many session rebuilds run
    /// concurrently keeps the storm from starving live traffic. A shed
    /// client receives a retryable `Overloaded` and backs off with
    /// jitter. Balance with [`ServerCore::finish_resume`].
    pub fn try_admit_resume(&self) -> bool {
        use std::sync::atomic::Ordering;
        let max = self.config.dlm.overload.resume_admission_max;
        let mut current = self.resumes_in_flight.load(Ordering::Relaxed);
        loop {
            if current >= max {
                return false;
            }
            match self.resumes_in_flight.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(observed) => current = observed,
            }
        }
    }

    /// Release one slot taken by [`ServerCore::try_admit_resume`].
    pub fn finish_resume(&self) {
        self.resumes_in_flight
            .fetch_sub(1, std::sync::atomic::Ordering::AcqRel);
    }

    /// Register a new connection; returns its session handle and the
    /// handshake response.
    ///
    /// With `resume`, the previous session is rebuilt: the old client id is
    /// reused, its in-flight transactions (which can never complete) are
    /// aborted, and the copy table is re-seeded from the client's cached-OID
    /// manifest. Manifest entries whose version no longer matches — or whose
    /// currency cannot be proven because the resume token belongs to a
    /// previous server incarnation — come back in `HelloAck::stale` so the
    /// client invalidates them before serving them again.
    pub fn connect(
        &self,
        _name: &str,
        resume: Option<&ResumeRequest>,
        channel: Arc<dyn Channel>,
    ) -> (Arc<SessionHandle>, Response) {
        // A resume only finds its token within the issuing incarnation; the
        // token table dies with the process.
        let prior = resume.and_then(|r| {
            let mut tokens = self.resume_tokens.lock();
            tokens
                .remove(&r.token)
                .filter(|_| r.incarnation == self.incarnation)
        });
        let resumed = prior.is_some();
        let (client, epoch) = match &prior {
            Some(state) => (state.client, state.epoch + 1),
            None => (ClientId::new(self.client_gen.next()), 0),
        };
        if resumed {
            // The old connection's transactions can never commit; abort
            // them so their locks stop blocking everyone else. Display
            // locks and copies are rebuilt below / by the DLC replay.
            for txn in self.txns.client_txns(client) {
                let _ = self.abort_txn(client, txn);
            }
            self.locks.release_all(Owner::Client(client));
            self.copies.drop_client(client);
        }
        // Normalize the token's cursor half into one slot per shard
        // (`None` = the token carries no admissible cursor for it). A
        // legacy (version-1) token maps cleanly only onto a single-shard
        // DLM; on a sharded server its one flat cursor indexes a seqno
        // space that no longer exists, so it is decoded *explicitly* as
        // legacy and mapped to a full resync — never misread as a
        // shard-0 cursor.
        let nshards = self.dlm.shards();
        let mut token_cursors: Vec<Option<(u64, u64)>> = vec![None; nshards];
        if let Some(r) = resume {
            match &r.cursors {
                ResumeCursors::Legacy {
                    cursor,
                    log_incarnation,
                } if nshards == 1 => {
                    token_cursors[0] = Some((*cursor, *log_incarnation));
                }
                ResumeCursors::Legacy { .. } => {}
                ResumeCursors::Shards(shards) => {
                    for sc in shards {
                        if (sc.shard as usize) < nshards {
                            token_cursors[sc.shard as usize] =
                                Some((sc.cursor, sc.log_incarnation));
                        }
                    }
                }
            }
        }
        // Cross-restart recovery (DESIGN.md §§ 14, 16): the in-memory
        // session (and its resume token) died with the old process, but
        // where a shard's durable update log survived under the same
        // incarnation and its window still covers the client's cursor
        // for that shard, "did this object change while the client was
        // away?" is answerable from the log — so currency can be proven
        // per shard and the catch-up can be a replay instead of a
        // blanket resync. Shards are admitted independently: one
        // truncated shard only costs its own objects' currency proofs.
        let ours = self.log_incarnations();
        let durable_changed: Vec<Option<std::collections::HashSet<Oid>>> = if resumed {
            vec![None; nshards]
        } else {
            token_cursors
                .iter()
                .enumerate()
                .map(|(s, tc)| match tc {
                    // An absent incarnation (0) is an explicit mismatch,
                    // never a wildcard: a cursor acked under no durable
                    // log proves nothing after a restart.
                    Some((cursor, inc)) if *inc != 0 && *inc == ours[s] => self
                        .dlm
                        .update_log_of(s)
                        .changed_since(*cursor)
                        .map(|oids| oids.into_iter().collect()),
                    _ => None,
                })
                .collect()
        };
        let cross_restart_proven = durable_changed.iter().any(Option::is_some);
        // Rebuild the copy table from the manifest and compute staleness.
        let map = self.dlm.map();
        let mut stale = Vec::new();
        if let Some(r) = resume {
            let versions = self.versions.lock();
            for &(oid, cached_version) in &r.manifest {
                let current = versions.get(&oid).copied().unwrap_or(0);
                let exists = self.store.exists(oid);
                let provably_current = if resumed {
                    current == cached_version
                } else {
                    // Every commit touching this oid's shard is in that
                    // shard's durable window past the cursor; absence
                    // proves the copy never changed.
                    durable_changed[map.shard_of(oid) as usize]
                        .as_ref()
                        .is_some_and(|changed| !changed.contains(&oid))
                };
                if exists && provably_current {
                    // Still current: the copy is callback-protected again.
                    self.copies.register(client, oid);
                } else {
                    // Changed, deleted, or unprovable (server restarted
                    // without a durable log, legacy token on a sharded
                    // server, or that shard's window was lost).
                    stale.push(oid);
                }
            }
        }
        // Replay is offered when at least one shard's update log still
        // holds every event past the client's cursor for it; shards
        // whose cursor fell off answer the replay itself with a
        // `ResyncRequired` over their slice of the watched set. With no
        // admissible shard at all the client falls back to a full
        // resync of its stale set.
        let replay_ok = if resumed {
            (0..nshards).any(|s| {
                token_cursors[s].is_some_and(|(c, _)| self.dlm.update_log_of(s).contains(c))
            })
        } else {
            cross_restart_proven
        };
        if cross_restart_proven {
            self.stats.sessions_recovered.inc();
        }
        let token = self.token_gen.next();
        self.resume_tokens
            .lock()
            .insert(token, ResumeState { client, epoch });
        let handle = Arc::new(SessionHandle::new(client, channel, self.stats.clone()));
        self.sessions.insert(Arc::clone(&handle));
        // The session sink is wrapped in bounded outboxes (DESIGN.md
        // § 9), one per DLM shard: commit-path fan-out only enqueues,
        // a stalled client connection is absorbed by the outbox writer
        // threads instead of blocking `commit_txn`, and one shard's
        // backlog cannot block another's. With more than one shard each
        // outbox's sink is tagged so cursor acks name their seqno space;
        // at one shard the sink stays untagged — the legacy wire form,
        // byte for byte.
        // With a durable log, every cursor an outbox acks is spilled as
        // a frontier record in *its shard's* log so this client's
        // per-shard progress survives a restart (the spill runs on the
        // outbox writer thread, outside all outbox locks).
        let session_sink = Arc::new(SessionSink {
            handle: Arc::clone(&handle),
            bytes: self.dlm.stats().overload.notify_bytes.clone(),
        });
        let mut weak_outboxes = Vec::with_capacity(nshards);
        let mut sinks: Vec<Arc<dyn EventSink>> = Vec::with_capacity(nshards);
        for s in 0..nshards {
            let recorder: Option<Arc<dyn Fn(u64) + Send + Sync>> =
                if self.dlm.update_log_of(s).is_durable() {
                    let dlm = Arc::clone(&self.dlm);
                    Some(Arc::new(move |cursor| {
                        let _ = dlm.update_log_of(s).record_frontier(client, cursor);
                    }))
                } else {
                    None
                };
            let inner: Arc<dyn EventSink> = if nshards == 1 {
                Arc::clone(&session_sink) as Arc<dyn EventSink>
            } else {
                Arc::new(ShardTagSink::new(
                    s as u32,
                    Arc::clone(&session_sink) as Arc<dyn EventSink>,
                ))
            };
            let outbox = OutboxSink::wrap_with_recorder(
                inner,
                self.config.dlm.overload,
                self.dlm.stats().overload.clone(),
                self.dlm.update_log_of(s).enabled(),
                recorder,
            );
            weak_outboxes.push(Arc::downgrade(&outbox));
            sinks.push(outbox);
        }
        *handle.outboxes.lock() = weak_outboxes;
        self.dlm.register_client_sinks(client, sinks);
        (
            Arc::clone(&handle),
            Response::HelloAck {
                client,
                catalog: self.catalog_bytes.clone(),
                session: token,
                incarnation: self.incarnation,
                epoch,
                resumed,
                stale,
                replay_ok,
                log_incarnation: self.log_incarnation(),
                shard_log_incarnations: ours,
            },
        )
    }

    /// Tear down a client's state after its connection drops.
    pub fn disconnect(&self, client: ClientId) {
        for txn in self.txns.client_txns(client) {
            let _ = self.abort_txn(client, txn);
        }
        self.dlm.unregister_client(client);
        self.copies.drop_client(client);
        self.locks.release_all(Owner::Client(client));
        if let Some(handle) = self.sessions.get(client) {
            handle.close();
        }
        self.sessions.remove(client);
    }

    /// Tear down `handle`'s client state, but only if `handle` is still the
    /// registry's current session for that client. When a dropped connection
    /// has already been replaced by a resumed one, the stale session thread
    /// must not wipe the rebuilt state; it just closes its own channel.
    pub fn disconnect_session(&self, handle: &Arc<SessionHandle>) {
        if self.sessions.is_current(handle) {
            self.disconnect(handle.client);
        } else {
            handle.close();
        }
    }

    /// Dispatch one request.
    pub fn handle(&self, client: ClientId, request: Request) -> Response {
        self.stats.requests.inc();
        let result = match request {
            Request::Hello { .. } => Err(DbError::Protocol("duplicate hello".into())),
            Request::Begin => Ok(Response::TxnStarted {
                txn: self.txns.begin(client),
            }),
            Request::Read { txn, oid } => self.read(client, txn, oid),
            Request::ReadMany { txn, oids } => self.read_many(client, txn, &oids),
            Request::Lock { txn, oid, mode } => self.lock(client, txn, oid, mode),
            Request::Create { txn, object } => self.create(client, txn, &object),
            Request::Write { txn, object } => self.write(client, txn, &object),
            Request::Delete { txn, oid } => self.delete(client, txn, oid),
            Request::Commit { txn, trace } => self.commit_txn(client, txn, trace),
            Request::Abort { txn } => self.abort_txn(client, txn),
            Request::Extent {
                class,
                include_subclasses,
            } => Ok(Response::Oids {
                oids: self.store.extent(class, include_subclasses),
            }),
            Request::DisplayLock { oids } => {
                self.dlm.lock(client, &oids);
                Ok(Response::Ok)
            }
            Request::DisplayRelease { oids } => {
                self.dlm.release(client, &oids);
                Ok(Response::Ok)
            }
            Request::DisplayLockProjected {
                oids,
                attrs,
                version,
            } => {
                self.dlm.lock_projected(client, &oids, &attrs, version);
                Ok(Response::Ok)
            }
            Request::ReplayFrom { cursor } => {
                // Streams the log suffix through the client's outbox (or
                // a ResyncRequired fallback if the cursor fell off the
                // ring); delivery is asynchronous, the request itself
                // just acknowledges. Legacy single-cursor form: shard 0.
                self.dlm.replay_for(client, cursor);
                Ok(Response::Ok)
            }
            Request::ReplayFromShards { cursors } => {
                // Shard-parallel catch-up: each listed shard streams its
                // own suffix (or a ResyncRequired over the client's
                // interests in that shard) through that shard's outbox.
                self.dlm.replay_for_shards(client, &cursors);
                Ok(Response::Ok)
            }
            Request::Checkpoint => self.store.checkpoint().map(|()| Response::Ok),
            Request::Ping => Ok(Response::Ok),
        };
        result.unwrap_or_else(|e| Response::from_error(&e))
    }

    fn read_one(
        &self,
        client: ClientId,
        txn: Option<TxnId>,
        oid: Oid,
    ) -> DbResult<Option<Vec<u8>>> {
        self.stats.reads.inc();
        // The transaction's own workspace wins.
        if let Some(txn) = txn {
            if let Some(view) = self.txns.own_view(txn, client, oid)? {
                return Ok(view.map(|o| o.encode_to_bytes().to_vec()));
            }
        }
        // Momentary shared lock: never observe a half-applied update, and
        // queue behind in-flight exclusive holders.
        let owner = txn.map(Owner::Txn).unwrap_or(Owner::Client(client));
        let reentrant = self.locks.held_mode(owner, oid).is_some();
        if !reentrant {
            self.locks.acquire(owner, oid, LockMode::Shared)?;
        }
        let result = match self.store.get_bytes(oid) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(DbError::ObjectNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        };
        if !reentrant {
            self.locks.release(owner, oid);
        }
        if result.as_ref().is_ok_and(|r| r.is_some()) {
            self.copies.register(client, oid);
        }
        result
    }

    fn read(&self, client: ClientId, txn: Option<TxnId>, oid: Oid) -> DbResult<Response> {
        match self.read_one(client, txn, oid)? {
            Some(bytes) => Ok(Response::Object { bytes }),
            None => Err(DbError::ObjectNotFound(oid)),
        }
    }

    fn read_many(&self, client: ClientId, txn: Option<TxnId>, oids: &[Oid]) -> DbResult<Response> {
        let mut objects = Vec::with_capacity(oids.len());
        for &oid in oids {
            objects.push(self.read_one(client, txn, oid)?);
        }
        Ok(Response::Objects { objects })
    }

    /// Acquire an exclusive lock with grant-time callbacks and
    /// early-notify marks. Idempotent per (txn, oid).
    fn acquire_exclusive(&self, client: ClientId, txn: TxnId, oid: Oid) -> DbResult<()> {
        let owner = Owner::Txn(txn);
        if self.locks.held_mode(owner, oid) == Some(LockMode::Exclusive) {
            return Ok(());
        }
        self.locks.acquire(owner, oid, LockMode::Exclusive)?;
        self.txns.record_x_lock(txn, client, oid)?;
        // Grant-time callbacks: invalidate other clients' cached copies.
        // Projected display-lock holders are deferred to commit time: if
        // the commit turns out to touch only attributes their projection
        // covers, the delta notification patches their copy in place and
        // no callback is needed at all (and an abort leaves their copy
        // valid anyway).
        self.invalidate_copies_filtered(
            client,
            &[oid],
            self.config.sync_callbacks,
            &|holder, oid| self.dlm.has_interest(holder, oid),
        );
        // Early-notify protocol: mark the object at display holders.
        self.dlm.notify_intent(Some(client), &[oid], txn);
        Ok(())
    }

    /// Send callbacks for `oids` to every caching client except `except`.
    /// All callbacks go out first and are awaited together: invalidating
    /// N clients costs one round-trip, not N. Holders for which `keep`
    /// returns true are skipped: their copy stays registered and no
    /// callback is sent (the caller has arranged another way to keep it
    /// consistent — a commit-time delta, or a deferred commit-time
    /// decision).
    fn invalidate_copies_filtered(
        &self,
        except: ClientId,
        oids: &[Oid],
        wait: bool,
        keep: &dyn Fn(ClientId, Oid) -> bool,
    ) {
        // Group per client to batch into one push each.
        let mut per_client: HashMap<ClientId, Vec<Oid>> = HashMap::new();
        for &oid in oids {
            for holder in self.copies.holders_except(oid, except) {
                if keep(holder, oid) {
                    continue;
                }
                per_client.entry(holder).or_default().push(oid);
            }
        }
        let mut pending = Vec::new();
        for (holder, oids) in per_client {
            for &oid in &oids {
                self.copies.drop_copy(holder, oid);
            }
            if let Some(session) = self.sessions.get(holder) {
                if let Ok(Some(waiter)) = session.callback_send(oids, wait) {
                    pending.push((session, waiter));
                }
            }
        }
        let deadline = std::time::Instant::now() + self.config.callback_timeout;
        for (session, (ack, rx)) in pending {
            let _ = session.callback_wait(ack, &rx, deadline);
        }
    }

    fn lock(
        &self,
        client: ClientId,
        txn: TxnId,
        oid: Oid,
        mode: WireLockMode,
    ) -> DbResult<Response> {
        if !self.store.exists(oid) {
            return Err(DbError::ObjectNotFound(oid));
        }
        match mode {
            WireLockMode::Update => {
                self.txns.with_txn(txn, client, |_| ())?;
                self.locks.acquire(Owner::Txn(txn), oid, LockMode::Update)?;
            }
            WireLockMode::Exclusive => {
                self.txns.with_txn(txn, client, |_| ())?;
                self.acquire_exclusive(client, txn, oid)?;
            }
        }
        Ok(Response::Ok)
    }

    fn create(&self, client: ClientId, txn: TxnId, object: &[u8]) -> DbResult<Response> {
        use displaydb_wire::Decode;
        let mut obj = DbObject::decode_from_bytes(object)?;
        obj.oid = self.store.allocate_oid();
        obj.validate(&self.catalog)?;
        let oid = obj.oid;
        // Trivially granted: nobody else can know this OID yet.
        self.locks
            .acquire(Owner::Txn(txn), oid, LockMode::Exclusive)?;
        self.txns.record_x_lock(txn, client, oid)?;
        self.txns.record_write(txn, client, WriteOp::Put(obj))?;
        Ok(Response::Created { oid })
    }

    fn write(&self, client: ClientId, txn: TxnId, object: &[u8]) -> DbResult<Response> {
        use displaydb_wire::Decode;
        let obj = DbObject::decode_from_bytes(object)?;
        if obj.oid.raw() == 0 {
            return Err(DbError::InvalidArgument(
                "write requires an assigned oid (use create)".into(),
            ));
        }
        obj.validate(&self.catalog)?;
        self.acquire_exclusive(client, txn, obj.oid)?;
        self.txns.record_write(txn, client, WriteOp::Put(obj))?;
        Ok(Response::Ok)
    }

    fn delete(&self, client: ClientId, txn: TxnId, oid: Oid) -> DbResult<Response> {
        if !self.store.exists(oid) {
            return Err(DbError::ObjectNotFound(oid));
        }
        self.acquire_exclusive(client, txn, oid)?;
        self.txns.record_write(txn, client, WriteOp::Delete(oid))?;
        Ok(Response::Ok)
    }

    fn commit_txn(
        &self,
        client: ClientId,
        txn: TxnId,
        trace: displaydb_common::TraceId,
    ) -> DbResult<Response> {
        let state = self.txns.finish(txn, client)?;
        let writes = state.final_writes();
        // Pre-images of updated objects, captured before the commit
        // applies so the DLM can diff them against registered display
        // projections. Skipped when no client registered one.
        let mut pre_images: HashMap<Oid, DbObject> = HashMap::new();
        if !writes.is_empty() && self.dlm.has_projected_interest() {
            for op in &writes {
                if let WriteOp::Put(obj) = op {
                    if let Ok(old) = self.store.get(obj.oid) {
                        pre_images.insert(obj.oid, old);
                    }
                }
            }
        }
        let outcomes = if writes.is_empty() {
            Vec::new()
        } else {
            match self.store.commit(txn, &writes) {
                Ok(o) => o,
                Err(e) => {
                    // Failed commit = abort.
                    self.locks.release_all(Owner::Txn(txn));
                    self.dlm
                        .notify_resolution(Some(client), &state.x_locked, txn, false);
                    return Err(e);
                }
            }
        };
        self.stats.commits.inc();
        displaydb_common::trace::record(trace, displaydb_common::trace::Stage::Commit);
        self.locks.release_all(Owner::Txn(txn));
        if !outcomes.is_empty() {
            // Bump commit versions so resuming clients can prove (or
            // disprove) the currency of their cached copies.
            {
                let mut versions = self.versions.lock();
                for (oid, _) in &outcomes {
                    *versions.entry(*oid).or_insert(0) += 1;
                }
            }
            // Attribute-level diffs against the captured pre-images
            // (empty when nobody registered a projection).
            let new_objects: HashMap<Oid, &DbObject> = writes
                .iter()
                .filter_map(|op| match op {
                    WriteOp::Put(obj) => Some((obj.oid, obj)),
                    WriteOp::Delete(_) => None,
                })
                .collect();
            let diffs: HashMap<Oid, Vec<(u16, displaydb_schema::Value)>> = pre_images
                .iter()
                .filter_map(|(oid, old)| {
                    new_objects
                        .get(oid)
                        .map(|new| (*oid, displaydb_schema::diff_objects(old, new)))
                })
                .collect();
            // Commit-time callbacks: copies registered during the update
            // window are now stale — except at holders whose projection
            // covers every changed attribute. Those receive a delta that
            // carries the complete change set, so their copy is patched
            // in place instead of dropped (the paper's one-message
            // refresh, extended to attribute granularity).
            let oids: Vec<Oid> = outcomes.iter().map(|(oid, _)| *oid).collect();
            self.invalidate_copies_filtered(
                client,
                &oids,
                self.config.sync_callbacks,
                &|holder, oid| {
                    diffs.get(&oid).is_some_and(|diff| {
                        let changed: Vec<u16> = diff.iter().map(|(attr, _)| *attr).collect();
                        self.dlm.interest_covers(holder, oid, &changed)
                    })
                },
            );
            // Post-commit notify protocol (+ optional eager payloads).
            // Updates with a diff additionally carry the attribute-level
            // changes, so the DLM can narrow them to each holder's
            // registered projection.
            let updates: Vec<UpdateInfo> = outcomes
                .into_iter()
                .map(|(oid, payload)| match payload {
                    Some(bytes) => {
                        let info = UpdateInfo::eager(oid, bytes).with_trace(trace);
                        match diffs.get(&oid) {
                            Some(diff) => info.with_changes(
                                diff.iter()
                                    .map(|(attr, value)| (*attr, value.encode_to_bytes().to_vec()))
                                    .collect(),
                            ),
                            None => info,
                        }
                    }
                    None => UpdateInfo::deletion(oid).with_trace(trace),
                })
                .collect();
            self.dlm
                .notify_resolution(Some(client), &state.x_locked, txn, true);
            // Stamp the committing txn into the (possibly durable)
            // update log. On a spill failure the DLM already surrendered
            // its replay window (see `notify_committed_txn`); the commit
            // itself stands — it is durable in the main WAL — so the
            // client still gets its ack.
            let _ = self
                .dlm
                .notify_committed_txn(Some(client), &updates, txn.raw());
        } else {
            self.dlm
                .notify_resolution(Some(client), &state.x_locked, txn, true);
        }
        Ok(Response::Ok)
    }

    fn abort_txn(&self, client: ClientId, txn: TxnId) -> DbResult<Response> {
        let state = self.txns.finish(txn, client)?;
        let _ = self.store.abort(txn);
        self.stats.aborts.inc();
        self.locks.release_all(Owner::Txn(txn));
        self.dlm
            .notify_resolution(Some(client), &state.x_locked, txn, false);
        Ok(Response::Ok)
    }
}

impl std::fmt::Debug for ServerCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerCore")
            .field("objects", &self.store.object_count())
            .field("sessions", &self.sessions.len())
            .finish()
    }
}
