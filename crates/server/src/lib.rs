//! The client-server object database server.
//!
//! This substrate plays the role ObjectStore played for the paper: a
//! multi-client OODBMS whose clients cache objects in main memory under an
//! **avoidance-based (callback) cache-consistency protocol** — locally
//! cached objects are guaranteed valid, because the server calls back and
//! invalidates remote copies *before* granting an exclusive lock
//! (read-one/write-all, § 3.3 of the paper; Franklin's callback-read
//! family).
//!
//! On top of that, the server integrates the paper's proposal natively:
//! the commit and exclusive-grant paths raise display-lock notifications
//! through an embedded [`displaydb_dlm::DlmCore`] (the "integrated"
//! deployment), while the same binary also works with a standalone
//! [`displaydb_dlm::DlmAgent`] (the paper's deployment, where update
//! notifications are reported by the clients themselves).
//!
//! Module map:
//! * [`proto`] — request/response/push envelope spoken with clients,
//! * [`store`] — the durable object store (heap + WAL + directory +
//!   class extents) with crash recovery,
//! * [`txn`] — server-side transaction workspaces,
//! * [`copies`] — the client copy table driving callbacks,
//! * [`core`] — the request processor tying everything together,
//! * [`server`] — accept loop, session threads, lifecycle.

pub mod copies;
pub mod core;
pub mod proto;
pub mod server;
pub mod store;
pub mod txn;

pub use crate::core::{ServerConfig, ServerCore, ServerStats};
pub use crate::server::Server;
pub use proto::{Envelope, Request, Response, ServerPush};
pub use store::ObjectStore;
