//! Server-side transaction workspaces.
//!
//! The server runs strict two-phase locking: a transaction's writes are
//! buffered in its workspace and applied atomically at commit (no-steal),
//! after which all its locks are released. Reads inside a transaction see
//! its own workspace first.

use crate::store::WriteOp;
use displaydb_common::ids::IdGen;
use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{ClientId, DbError, DbResult, Oid, TxnId};
use displaydb_schema::DbObject;
use std::collections::HashMap;

/// State of one active transaction.
#[derive(Debug, Default)]
pub struct TxnState {
    /// The owning client.
    pub client: ClientId,
    /// Buffered writes in arrival order (later writes to the same OID
    /// supersede earlier ones at commit).
    pub writes: Vec<WriteOp>,
    /// Objects this transaction exclusively locked (the early-notify
    /// resolution set).
    pub x_locked: Vec<Oid>,
}

impl TxnState {
    /// The transaction's current view of `oid`, if it wrote it.
    pub fn own_write(&self, oid: Oid) -> Option<&WriteOp> {
        self.writes.iter().rev().find(|w| w.oid() == oid)
    }

    /// Deduplicated write set (last write per OID wins, original order of
    /// last writes preserved).
    pub fn final_writes(&self) -> Vec<WriteOp> {
        let mut last: HashMap<Oid, usize> = HashMap::new();
        for (i, w) in self.writes.iter().enumerate() {
            last.insert(w.oid(), i);
        }
        self.writes
            .iter()
            .enumerate()
            .filter(|(i, w)| last[&w.oid()] == *i)
            .map(|(_, w)| w.clone())
            .collect()
    }
}

/// Tracks active transactions.
#[derive(Debug)]
pub struct TxnManager {
    active: OrderedMutex<HashMap<TxnId, TxnState>>,
    txn_gen: IdGen,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    /// Create an empty manager.
    pub fn new() -> Self {
        Self {
            active: OrderedMutex::new(ranks::SERVER_TXNS, HashMap::new()),
            txn_gen: IdGen::starting_at(1),
        }
    }

    /// Ensure future transaction ids exceed `floor`. With a durable DLM
    /// update log (DESIGN.md § 14), ids must be monotone **across
    /// restarts** — the startup cross-check compares the log's newest
    /// batch txn against the WAL's, which is only meaningful when one
    /// incarnation's ids never dip below a previous one's.
    pub fn bump_past(&self, floor: u64) {
        self.txn_gen.bump_to(floor + 1);
    }

    /// Start a transaction for `client`.
    pub fn begin(&self, client: ClientId) -> TxnId {
        let txn = TxnId::new(self.txn_gen.next());
        self.active.lock().insert(
            txn,
            TxnState {
                client,
                ..TxnState::default()
            },
        );
        txn
    }

    /// Number of active transactions.
    pub fn active_count(&self) -> usize {
        self.active.lock().len()
    }

    /// Run `f` with the transaction's state, failing if it is not active
    /// or belongs to another client.
    pub fn with_txn<T>(
        &self,
        txn: TxnId,
        client: ClientId,
        f: impl FnOnce(&mut TxnState) -> T,
    ) -> DbResult<T> {
        let mut active = self.active.lock();
        let state = active.get_mut(&txn).ok_or(DbError::TxnNotActive(txn))?;
        if state.client != client {
            return Err(DbError::Rejected(format!(
                "{txn} belongs to {}",
                state.client
            )));
        }
        Ok(f(state))
    }

    /// Record a buffered write.
    pub fn record_write(&self, txn: TxnId, client: ClientId, op: WriteOp) -> DbResult<()> {
        self.with_txn(txn, client, |s| s.writes.push(op))
    }

    /// Record an exclusive lock acquisition (for early-notify resolution).
    pub fn record_x_lock(&self, txn: TxnId, client: ClientId, oid: Oid) -> DbResult<()> {
        self.with_txn(txn, client, |s| {
            if !s.x_locked.contains(&oid) {
                s.x_locked.push(oid);
            }
        })
    }

    /// The transaction's own view of `oid`: `Some(Some(obj))` if it wrote
    /// it, `Some(None)` if it deleted it, `None` if untouched.
    pub fn own_view(
        &self,
        txn: TxnId,
        client: ClientId,
        oid: Oid,
    ) -> DbResult<Option<Option<DbObject>>> {
        self.with_txn(txn, client, |s| {
            s.own_write(oid).map(|w| match w {
                WriteOp::Put(o) => Some(o.clone()),
                WriteOp::Delete(_) => None,
            })
        })
    }

    /// Remove and return the transaction's state (commit/abort).
    pub fn finish(&self, txn: TxnId, client: ClientId) -> DbResult<TxnState> {
        let mut active = self.active.lock();
        match active.get(&txn) {
            Some(s) if s.client == client => Ok(active.remove(&txn).expect("present")),
            Some(s) => Err(DbError::Rejected(format!("{txn} belongs to {}", s.client))),
            None => Err(DbError::TxnNotActive(txn)),
        }
    }

    /// All active transactions of `client` (disconnect cleanup).
    pub fn client_txns(&self, client: ClientId) -> Vec<TxnId> {
        self.active
            .lock()
            .iter()
            .filter(|(_, s)| s.client == client)
            .map(|(t, _)| *t)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_schema::{class::ClassBuilder, AttrType, Catalog};

    fn obj(oid: u64) -> DbObject {
        let mut c = Catalog::new();
        c.define(ClassBuilder::new("T").attr("X", AttrType::Int))
            .unwrap();
        let mut o = DbObject::new_named(&c, "T").unwrap();
        o.oid = Oid::new(oid);
        o
    }

    #[test]
    fn begin_write_finish() {
        let tm = TxnManager::new();
        let client = ClientId::new(1);
        let txn = tm.begin(client);
        tm.record_write(txn, client, WriteOp::Put(obj(5))).unwrap();
        tm.record_x_lock(txn, client, Oid::new(5)).unwrap();
        let state = tm.finish(txn, client).unwrap();
        assert_eq!(state.writes.len(), 1);
        assert_eq!(state.x_locked, vec![Oid::new(5)]);
        assert!(matches!(
            tm.finish(txn, client),
            Err(DbError::TxnNotActive(_))
        ));
    }

    #[test]
    fn ownership_enforced() {
        let tm = TxnManager::new();
        let txn = tm.begin(ClientId::new(1));
        assert!(tm
            .record_write(txn, ClientId::new(2), WriteOp::Delete(Oid::new(1)))
            .is_err());
        assert!(tm.finish(txn, ClientId::new(2)).is_err());
        assert!(tm.finish(txn, ClientId::new(1)).is_ok());
    }

    #[test]
    fn final_writes_dedupe_last_wins() {
        let mut s = TxnState::default();
        let mut a1 = obj(1);
        a1.values[0] = displaydb_schema::Value::Int(1);
        let mut a2 = obj(1);
        a2.values[0] = displaydb_schema::Value::Int(2);
        s.writes.push(WriteOp::Put(a1));
        s.writes.push(WriteOp::Put(obj(2)));
        s.writes.push(WriteOp::Put(a2.clone()));
        let fw = s.final_writes();
        assert_eq!(fw.len(), 2);
        assert_eq!(fw[0].oid(), Oid::new(2));
        assert_eq!(fw[1], WriteOp::Put(a2));
    }

    #[test]
    fn own_view_reflects_workspace() {
        let tm = TxnManager::new();
        let client = ClientId::new(1);
        let txn = tm.begin(client);
        assert_eq!(tm.own_view(txn, client, Oid::new(9)).unwrap(), None);
        tm.record_write(txn, client, WriteOp::Put(obj(9))).unwrap();
        assert!(matches!(
            tm.own_view(txn, client, Oid::new(9)).unwrap(),
            Some(Some(_))
        ));
        tm.record_write(txn, client, WriteOp::Delete(Oid::new(9)))
            .unwrap();
        assert_eq!(tm.own_view(txn, client, Oid::new(9)).unwrap(), Some(None));
    }

    #[test]
    fn client_txns_lists_only_owned() {
        let tm = TxnManager::new();
        let t1 = tm.begin(ClientId::new(1));
        let _t2 = tm.begin(ClientId::new(2));
        let t3 = tm.begin(ClientId::new(1));
        let mut mine = tm.client_txns(ClientId::new(1));
        mine.sort();
        assert_eq!(mine, vec![t1, t3]);
        assert_eq!(tm.active_count(), 3);
    }
}
