//! Server lifecycle: accept loops and session threads.
//!
//! Each connection gets a *session thread* that only demultiplexes frames:
//! requests are dispatched to short-lived worker threads (so a request
//! blocked on a lock or a callback acknowledgement can never stall the
//! session's ability to route acknowledgements and pushes), and push-acks
//! are routed to their waiters.

use crate::core::{ServerConfig, ServerCore, SessionHandle};
use crate::proto::{Envelope, Request, Response};
use displaydb_common::{DbError, DbResult};
use displaydb_schema::Catalog;
use displaydb_wire::{Channel, Decode, Encode, Listener, LocalHub, TcpListenerWrapper};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running database server.
pub struct Server {
    core: Arc<ServerCore>,
    shutdown: Arc<AtomicBool>,
    accept_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server over the given listeners.
    pub fn spawn(
        catalog: Arc<Catalog>,
        config: ServerConfig,
        listeners: Vec<Box<dyn Listener>>,
    ) -> DbResult<Self> {
        let core = ServerCore::open(catalog, config)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut accept_threads = Vec::new();
        for listener in listeners {
            let core = Arc::clone(&core);
            let shutdown = Arc::clone(&shutdown);
            accept_threads.push(
                std::thread::Builder::new()
                    .name("db-accept".into())
                    .spawn(move || {
                        while !shutdown.load(Ordering::Acquire) {
                            match listener.accept_timeout(Duration::from_millis(100)) {
                                Ok(channel) => {
                                    let core = Arc::clone(&core);
                                    let channel: Arc<dyn Channel> = Arc::from(channel);
                                    std::thread::Builder::new()
                                        .name("db-session".into())
                                        .spawn(move || session_loop(core, channel))
                                        .expect("spawn session thread");
                                }
                                Err(DbError::Timeout(_)) => continue,
                                Err(_) => break,
                            }
                        }
                    })
                    .expect("spawn accept thread"),
            );
        }
        Ok(Self {
            core,
            shutdown,
            accept_threads,
        })
    }

    /// Start a server reachable through an in-process [`LocalHub`].
    pub fn spawn_local(
        catalog: Arc<Catalog>,
        config: ServerConfig,
        hub: &LocalHub,
    ) -> DbResult<Self> {
        Self::spawn(catalog, config, vec![Box::new(hub.clone())])
    }

    /// Start a server on a TCP address (`127.0.0.1:0` for an ephemeral
    /// port). Returns the server and the bound address.
    pub fn spawn_tcp(
        catalog: Arc<Catalog>,
        config: ServerConfig,
        addr: &str,
    ) -> DbResult<(Self, SocketAddr)> {
        let listener = TcpListenerWrapper::bind(addr)?;
        let bound = listener.local_addr()?;
        let server = Self::spawn(catalog, config, vec![Box::new(listener)])?;
        Ok((server, bound))
    }

    /// The shared core (stats, store, embedded DLM).
    pub fn core(&self) -> &Arc<ServerCore> {
        &self.core
    }

    /// Stop accepting connections, drain per-client notification
    /// outboxes (bounded by the configured drain timeout, so a stalled
    /// client cannot wedge shutdown), then close every live session
    /// channel so clients observe the outage immediately (rather than on
    /// their next send). Resume tokens are process-local, so sessions
    /// cannot survive this — reconnecting clients land in the
    /// restarted-server path.
    pub fn shutdown(&mut self) {
        let already_down = self.shutdown.swap(true, Ordering::AcqRel);
        for h in self.accept_threads.drain(..) {
            let _ = h.join();
        }
        // Drain phase: give healthy clients their queued notifications.
        // Sessions drain concurrently with each other only in the sense
        // that each writer thread keeps flushing while we wait; a
        // per-session timeout bounds the total at O(sessions) in the
        // worst (all-stalled) case. Skipped when a `hard_kill` (or an
        // earlier shutdown) already took the server down — the crash
        // simulation must not be softened by Drop re-draining.
        if !already_down {
            let drain_timeout = self.core.config().dlm.overload.drain_timeout;
            for session in self.core.sessions().all() {
                let _ = session.drain_outbox(drain_timeout);
            }
        }
        for session in self.core.sessions().all() {
            session.close();
        }
    }

    /// Simulated crash: stop accepting and sever every live session
    /// channel *without* draining outboxes or giving writers a flush
    /// window. In-flight notification queues die with the process
    /// image; only state already on stable storage (the WAL and, when
    /// enabled, the durable update log) survives into the next
    /// [`Server`] opened over the same data directory. Restart-recovery
    /// tests and the R5 experiment use this to model a hard kill
    /// (DESIGN.md § 14).
    pub fn hard_kill(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for h in self.accept_threads.drain(..) {
            let _ = h.join();
        }
        for session in self.core.sessions().all() {
            session.close();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn send_response(channel: &Arc<dyn Channel>, seq: u64, response: Response) {
    let _ = channel.send(Envelope::Resp(seq, response).encode_to_bytes());
}

fn session_loop(core: Arc<ServerCore>, channel: Arc<dyn Channel>) {
    // Handshake: the first envelope must be a Hello request. Resume
    // handshakes pass through the reconnect admission gate: after a mass
    // disconnect, only `resume_admission_max` session rebuilds run at a
    // time and the rest are shed with a retryable `Overloaded` (the
    // channel stays open, so the client may retry its Hello here or
    // reconnect afresh under its jittered backoff).
    let handle: Arc<SessionHandle> = loop {
        let Ok(frame) = channel.recv() else {
            return;
        };
        match Envelope::decode_from_bytes(&frame) {
            Ok(Envelope::Req(seq, Request::Hello { name, resume })) => {
                let gated = resume.is_some();
                if gated && !core.try_admit_resume() {
                    core.dlm().stats().overload.resume_sheds.inc();
                    send_response(&channel, seq, Response::from_error(&DbError::Overloaded));
                    continue;
                }
                let (handle, ack) = core.connect(&name, resume.as_ref(), Arc::clone(&channel));
                if gated {
                    core.finish_resume();
                }
                send_response(&channel, seq, ack);
                break handle;
            }
            Ok(Envelope::Req(seq, _)) => {
                send_response(
                    &channel,
                    seq,
                    Response::from_error(&DbError::Protocol("hello required first".into())),
                );
                return;
            }
            _ => return,
        }
    };

    let client = handle.client;
    let max_in_flight = core.config().dlm.overload.max_in_flight;
    while let Ok(frame) = channel.recv() {
        match Envelope::decode_from_bytes(&frame) {
            Ok(Envelope::Req(seq, request)) => {
                // Admission control: a client pipelining more concurrent
                // requests than the per-session cap is shed with a
                // retryable `Overloaded` *before* a worker is spawned,
                // so a runaway client cannot monopolize worker threads.
                if !handle.try_admit(max_in_flight) {
                    core.dlm().stats().overload.sheds.inc();
                    send_response(&channel, seq, Response::from_error(&DbError::Overloaded));
                    continue;
                }
                // Dispatch to a worker so a blocked request never stops
                // this session from routing acks.
                let core = Arc::clone(&core);
                let channel = Arc::clone(&channel);
                let handle = Arc::clone(&handle);
                std::thread::Builder::new()
                    .name("db-worker".into())
                    .spawn(move || {
                        let response = core.handle(client, request);
                        handle.finish_request();
                        send_response(&channel, seq, response);
                    })
                    .expect("spawn worker thread");
            }
            Ok(Envelope::PushAck(ack)) => handle.handle_ack(ack),
            Ok(_) => break, // protocol violation
            Err(_) => break,
        }
    }
    core.disconnect_session(&handle);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::WireLockMode;
    use displaydb_common::{Oid, TxnId};
    use displaydb_schema::class::ClassBuilder;
    use displaydb_schema::{AttrType, DbObject};
    use parking_lot::Mutex;
    use std::collections::HashMap;
    use std::path::PathBuf;

    fn catalog() -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("Node")
                .attr("Name", AttrType::Str)
                .attr("Load", AttrType::Float),
        )
        .unwrap();
        Arc::new(c)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-server-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A minimal raw test client speaking envelopes directly (the real
    /// client library lives in displaydb-client).
    struct RawClient {
        channel: Arc<dyn Channel>,
        seq: std::sync::atomic::AtomicU64,
        pushes: Arc<Mutex<Vec<crate::proto::ServerPush>>>,
        responses: Arc<Mutex<HashMap<u64, Response>>>,
    }

    impl RawClient {
        fn connect(hub: &LocalHub) -> (Self, displaydb_common::ClientId) {
            let channel: Arc<dyn Channel> = Arc::new(hub.connect().unwrap()) as _;
            let client = Self {
                channel,
                seq: std::sync::atomic::AtomicU64::new(1),
                pushes: Arc::new(Mutex::new(Vec::new())),
                responses: Arc::new(Mutex::new(HashMap::new())),
            };
            let id = match client.call(Request::Hello {
                name: "raw".into(),
                resume: None,
            }) {
                Response::HelloAck { client, .. } => client,
                other => panic!("unexpected {other:?}"),
            };
            (client, id)
        }

        fn call(&self, request: Request) -> Response {
            let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.channel
                .send(Envelope::Req(seq, request).encode_to_bytes())
                .unwrap();
            loop {
                let frame = self.channel.recv_timeout(Duration::from_secs(10)).unwrap();
                match Envelope::decode_from_bytes(&frame).unwrap() {
                    Envelope::Resp(s, resp) if s == seq => return resp,
                    Envelope::Resp(s, resp) => {
                        self.responses.lock().insert(s, resp);
                    }
                    Envelope::Push(push) => {
                        // Ack callbacks immediately like a real client.
                        if let crate::proto::ServerPush::Callback { ack, .. } = &push {
                            self.channel
                                .send(Envelope::PushAck(*ack).encode_to_bytes())
                                .unwrap();
                        }
                        self.pushes.lock().push(push);
                    }
                    Envelope::PushAck(_) | Envelope::Req(..) => panic!("unexpected envelope"),
                }
            }
        }
    }

    fn make_node(cat: &Catalog, name: &str) -> Vec<u8> {
        DbObject::new_named(cat, "Node")
            .unwrap()
            .with(cat, "Name", name)
            .unwrap()
            .encode_to_bytes()
            .to_vec()
    }

    #[test]
    fn end_to_end_create_read_update() {
        let cat = catalog();
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("e2e")), &hub).unwrap();
        let (c1, _id1) = RawClient::connect(&hub);

        // Create in a transaction.
        let txn = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            other => panic!("{other:?}"),
        };
        let oid = match c1.call(Request::Create {
            txn,
            object: make_node(&cat, "alpha"),
        }) {
            Response::Created { oid } => oid,
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            c1.call(Request::Commit { txn, trace: 0 }),
            Response::Ok
        ));

        // Read it back without a transaction.
        match c1.call(Request::Read { txn: None, oid }) {
            Response::Object { bytes } => {
                let obj = DbObject::decode_from_bytes(&bytes).unwrap();
                assert_eq!(obj.get(&cat, "Name").unwrap().as_str().unwrap(), "alpha");
            }
            other => panic!("{other:?}"),
        }

        // Update it.
        let txn2 = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            other => panic!("{other:?}"),
        };
        let mut obj = DbObject::decode_from_bytes(
            match &c1.call(Request::Read {
                txn: Some(txn2),
                oid,
            }) {
                Response::Object { bytes } => bytes,
                other => panic!("{other:?}"),
            },
        )
        .unwrap();
        obj.set(&cat, "Load", 0.9).unwrap();
        assert!(matches!(
            c1.call(Request::Write {
                txn: txn2,
                object: obj.encode_to_bytes().to_vec()
            }),
            Response::Ok
        ));
        assert!(matches!(
            c1.call(Request::Commit {
                txn: txn2,
                trace: 0
            }),
            Response::Ok
        ));

        match c1.call(Request::Read { txn: None, oid }) {
            Response::Object { bytes } => {
                let obj = DbObject::decode_from_bytes(&bytes).unwrap();
                assert_eq!(obj.get(&cat, "Load").unwrap().as_float().unwrap(), 0.9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn callback_invalidates_other_clients_copy() {
        let cat = catalog();
        let hub = LocalHub::new();
        let server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("callback")), &hub)
                .unwrap();
        let (c1, _) = RawClient::connect(&hub);
        let (c2, _) = RawClient::connect(&hub);

        // c1 creates; c2 reads (and thus caches).
        let txn = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        let oid = match c1.call(Request::Create {
            txn,
            object: make_node(&cat, "shared"),
        }) {
            Response::Created { oid } => oid,
            o => panic!("{o:?}"),
        };
        c1.call(Request::Commit { txn, trace: 0 });
        c2.call(Request::Read { txn: None, oid });

        // c1 updates: c2 must receive a callback before/at commit.
        let txn2 = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        assert!(matches!(
            c1.call(Request::Lock {
                txn: txn2,
                oid,
                mode: WireLockMode::Exclusive
            }),
            Response::Ok
        ));
        c1.call(Request::Commit {
            txn: txn2,
            trace: 0,
        });

        // The callback was pushed to c2 (it acked inside call()).
        // Poll until the push shows up (delivery is asynchronous).
        let mut seen = false;
        for _ in 0..100 {
            c2.call(Request::Ping);
            if c2
                .pushes
                .lock()
                .iter()
                .any(|p| matches!(p, crate::proto::ServerPush::Callback { oids, .. } if oids.contains(&oid)))
            {
                seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(seen, "c2 never received a callback");
        assert!(server.core().stats().callbacks.get() >= 1);
    }

    #[test]
    fn integrated_display_notification() {
        let cat = catalog();
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("display")), &hub).unwrap();
        let (viewer, _) = RawClient::connect(&hub);
        let (updater, _) = RawClient::connect(&hub);

        let txn = match updater.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        let oid = match updater.call(Request::Create {
            txn,
            object: make_node(&cat, "watched"),
        }) {
            Response::Created { oid } => oid,
            o => panic!("{o:?}"),
        };
        updater.call(Request::Commit { txn, trace: 0 });

        // Viewer display-locks the object.
        assert!(matches!(
            viewer.call(Request::DisplayLock { oids: vec![oid] }),
            Response::Ok
        ));

        // Updater modifies it.
        let txn2 = match updater.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        let mut obj = DbObject::decode_from_bytes(
            match &updater.call(Request::Read {
                txn: Some(txn2),
                oid,
            }) {
                Response::Object { bytes } => bytes,
                o => panic!("{o:?}"),
            },
        )
        .unwrap();
        obj.set(&cat, "Load", 0.8).unwrap();
        updater.call(Request::Write {
            txn: txn2,
            object: obj.encode_to_bytes().to_vec(),
        });
        updater.call(Request::Commit {
            txn: txn2,
            trace: 0,
        });

        // Viewer receives Updated for oid. The outbox may deliver it
        // batched together with the update-log cursor ack, so look
        // inside `Batch` frames as well as at bare events.
        fn mentions_update(event: &displaydb_dlm::DlmEvent, oid: displaydb_common::Oid) -> bool {
            match event {
                displaydb_dlm::DlmEvent::Updated(u) => u.oid == oid,
                displaydb_dlm::DlmEvent::Batch(events) => {
                    events.iter().any(|e| mentions_update(e, oid))
                }
                _ => false,
            }
        }
        let mut seen = false;
        for _ in 0..100 {
            viewer.call(Request::Ping);
            if viewer.pushes.lock().iter().any(|p| {
                matches!(p, crate::proto::ServerPush::Dlm(event) if mentions_update(event, oid))
            }) {
                seen = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(seen, "viewer never received the display notification");
    }

    #[test]
    fn write_conflict_blocks_second_writer() {
        let cat = catalog();
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("conflict")), &hub)
                .unwrap();
        let (c1, _) = RawClient::connect(&hub);
        let (c2, _) = RawClient::connect(&hub);

        let txn = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        let oid = match c1.call(Request::Create {
            txn,
            object: make_node(&cat, "contested"),
        }) {
            Response::Created { oid } => oid,
            o => panic!("{o:?}"),
        };
        c1.call(Request::Commit { txn, trace: 0 });

        // c1 X-locks; c2's X request blocks until c1 commits.
        let t1 = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        c1.call(Request::Lock {
            txn: t1,
            oid,
            mode: WireLockMode::Exclusive,
        });
        let t2 = match c2.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };

        let started = std::time::Instant::now();
        let done = std::thread::spawn(move || {
            let resp = c2.call(Request::Lock {
                txn: t2,
                oid,
                mode: WireLockMode::Exclusive,
            });
            (resp, started.elapsed())
        });
        std::thread::sleep(Duration::from_millis(150));
        c1.call(Request::Commit { txn: t1, trace: 0 });
        let (resp, waited) = done.join().unwrap();
        assert!(matches!(resp, Response::Ok));
        assert!(
            waited >= Duration::from_millis(100),
            "second writer did not block: {waited:?}"
        );
    }

    #[test]
    fn disconnect_aborts_transactions_and_releases_locks() {
        let cat = catalog();
        let hub = LocalHub::new();
        let server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("disconnect")), &hub)
                .unwrap();
        let oid;
        {
            let (c1, _) = RawClient::connect(&hub);
            let txn = match c1.call(Request::Begin) {
                Response::TxnStarted { txn } => txn,
                o => panic!("{o:?}"),
            };
            oid = match c1.call(Request::Create {
                txn,
                object: make_node(&cat, "orphan"),
            }) {
                Response::Created { oid } => oid,
                o => panic!("{o:?}"),
            };
            // Drop without commit: connection closes.
            c1.channel.close();
        }
        // Wait for the session to clean up.
        for _ in 0..100 {
            if server.core().sessions().is_empty() {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // The uncommitted object must not exist; a new client can lock it
        // freely (no leaked locks).
        let (c2, _) = RawClient::connect(&hub);
        assert!(matches!(
            c2.call(Request::Read { txn: None, oid }),
            Response::Error { .. }
        ));
        assert_eq!(server.core().store().object_count(), 0);
    }

    #[test]
    fn deadlock_reported_to_client() {
        let cat = catalog();
        let hub = LocalHub::new();
        let mut config = ServerConfig::new(tmp("deadlock"));
        config.lock.wait_timeout = Duration::from_secs(5);
        let _server = Server::spawn_local(Arc::clone(&cat), config, &hub).unwrap();
        let (c1, _) = RawClient::connect(&hub);
        let (c2, _) = RawClient::connect(&hub);

        let setup = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        let oid_a = match c1.call(Request::Create {
            txn: setup,
            object: make_node(&cat, "a"),
        }) {
            Response::Created { oid } => oid,
            o => panic!("{o:?}"),
        };
        let oid_b = match c1.call(Request::Create {
            txn: setup,
            object: make_node(&cat, "b"),
        }) {
            Response::Created { oid } => oid,
            o => panic!("{o:?}"),
        };
        c1.call(Request::Commit {
            txn: setup,
            trace: 0,
        });

        let t1 = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        let t2 = match c2.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        assert!(matches!(
            c1.call(Request::Lock {
                txn: t1,
                oid: oid_a,
                mode: WireLockMode::Exclusive
            }),
            Response::Ok
        ));
        assert!(matches!(
            c2.call(Request::Lock {
                txn: t2,
                oid: oid_b,
                mode: WireLockMode::Exclusive
            }),
            Response::Ok
        ));
        // t1 -> b (blocks), t2 -> a (deadlock; t2 is younger, so t2 dies
        // either on its own request or via victim wakeup on t1's path).
        let c1_thread = std::thread::spawn(move || {
            c1.call(Request::Lock {
                txn: t1,
                oid: oid_b,
                mode: WireLockMode::Exclusive,
            })
        });
        std::thread::sleep(Duration::from_millis(100));
        let r2 = c2.call(Request::Lock {
            txn: t2,
            oid: oid_a,
            mode: WireLockMode::Exclusive,
        });
        let is_deadlock = matches!(&r2, Response::Error { kind, .. } if kind == "deadlock");
        assert!(is_deadlock, "expected deadlock error, got {r2:?}");
        c2.call(Request::Abort { txn: t2 });
        let r1 = c1_thread.join().unwrap();
        assert!(matches!(r1, Response::Ok));
    }

    #[test]
    fn server_restart_recovers_data() {
        let cat = catalog();
        let dir = tmp("restart");
        let oid;
        {
            let hub = LocalHub::new();
            let mut config = ServerConfig::new(&dir);
            config.sync_commits = true;
            let _server = Server::spawn_local(Arc::clone(&cat), config, &hub).unwrap();
            let (c1, _) = RawClient::connect(&hub);
            let txn = match c1.call(Request::Begin) {
                Response::TxnStarted { txn } => txn,
                o => panic!("{o:?}"),
            };
            oid = match c1.call(Request::Create {
                txn,
                object: make_node(&cat, "persistent"),
            }) {
                Response::Created { oid } => oid,
                o => panic!("{o:?}"),
            };
            c1.call(Request::Commit { txn, trace: 0 });
        }
        // New server over the same directory.
        let hub = LocalHub::new();
        let mut config = ServerConfig::new(&dir);
        config.sync_commits = true;
        let _server = Server::spawn_local(Arc::clone(&cat), config, &hub).unwrap();
        let (c1, _) = RawClient::connect(&hub);
        match c1.call(Request::Read { txn: None, oid }) {
            Response::Object { bytes } => {
                let obj = DbObject::decode_from_bytes(&bytes).unwrap();
                assert_eq!(
                    obj.get(&cat, "Name").unwrap().as_str().unwrap(),
                    "persistent"
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn extent_lists_objects() {
        let cat = catalog();
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("extent")), &hub).unwrap();
        let (c1, _) = RawClient::connect(&hub);
        let txn = match c1.call(Request::Begin) {
            Response::TxnStarted { txn } => txn,
            o => panic!("{o:?}"),
        };
        let mut created = Vec::new();
        for i in 0..5 {
            match c1.call(Request::Create {
                txn,
                object: make_node(&cat, &format!("n{i}")),
            }) {
                Response::Created { oid } => created.push(oid),
                o => panic!("{o:?}"),
            }
        }
        c1.call(Request::Commit { txn, trace: 0 });
        match c1.call(Request::Extent {
            class: cat.id_of("Node").unwrap(),
            include_subclasses: true,
        }) {
            Response::Oids { oids } => {
                assert_eq!(oids, created);
            }
            o => panic!("{o:?}"),
        }
    }

    #[test]
    fn rejects_request_before_hello() {
        let cat = catalog();
        let hub = LocalHub::new();
        let _server =
            Server::spawn_local(Arc::clone(&cat), ServerConfig::new(tmp("nohello")), &hub).unwrap();
        let channel = hub.connect().unwrap();
        channel
            .send(Envelope::Req(1, Request::Begin).encode_to_bytes())
            .unwrap();
        let frame = channel.recv_timeout(Duration::from_secs(5)).unwrap();
        match Envelope::decode_from_bytes(&frame).unwrap() {
            Envelope::Resp(1, Response::Error { kind, .. }) => assert_eq!(kind, "protocol"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn works_over_real_tcp() {
        let cat = catalog();
        let (server, addr) = Server::spawn_tcp(
            Arc::clone(&cat),
            ServerConfig::new(tmp("tcp")),
            "127.0.0.1:0",
        )
        .unwrap();
        let channel: Arc<dyn Channel> =
            Arc::new(displaydb_wire::TcpChannel::connect(addr).unwrap());
        channel
            .send(
                Envelope::Req(
                    1,
                    Request::Hello {
                        name: "tcp-client".into(),
                        resume: None,
                    },
                )
                .encode_to_bytes(),
            )
            .unwrap();
        let frame = channel.recv_timeout(Duration::from_secs(5)).unwrap();
        match Envelope::decode_from_bytes(&frame).unwrap() {
            Envelope::Resp(1, Response::HelloAck { catalog, .. }) => {
                let decoded = Catalog::decode_from_bytes(&catalog).unwrap();
                assert!(decoded.id_of("Node").is_some());
            }
            other => panic!("{other:?}"),
        }
        drop(server);
        // TxnId imported for symmetry with other tests.
        let _ = TxnId::new(0);
        let _ = Oid::new(0);
    }
}
