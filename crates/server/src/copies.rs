//! The client copy table for avoidance-based cache consistency.
//!
//! Under the ROWA / callback discipline (paper § 3.3), the server must
//! know which clients hold cached copies of each object so it can call
//! them back (invalidate) before an exclusive lock is granted. The copy
//! table is a conservative over-approximation: clients may silently drop
//! entries from their LRU caches, in which case a callback is a harmless
//! no-op at that client.

use displaydb_common::sync::{ranks, OrderedMutex};
use displaydb_common::{ClientId, Oid};
use std::collections::{HashMap, HashSet};

/// Tracks which clients cache which objects.
#[derive(Debug)]
pub struct CopyTable {
    by_oid: OrderedMutex<HashMap<Oid, HashSet<ClientId>>>,
}

impl Default for CopyTable {
    fn default() -> Self {
        Self::new()
    }
}

impl CopyTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self {
            by_oid: OrderedMutex::new(ranks::SERVER_COPIES, HashMap::new()),
        }
    }

    /// Record that `client` received a copy of `oid`.
    pub fn register(&self, client: ClientId, oid: Oid) {
        self.by_oid.lock().entry(oid).or_default().insert(client);
    }

    /// Record copies for a batch of objects.
    pub fn register_many(&self, client: ClientId, oids: &[Oid]) {
        let mut map = self.by_oid.lock();
        for &oid in oids {
            map.entry(oid).or_default().insert(client);
        }
    }

    /// All clients (except `except`) that cache `oid` — the callback set.
    pub fn holders_except(&self, oid: Oid, except: ClientId) -> Vec<ClientId> {
        self.by_oid
            .lock()
            .get(&oid)
            .map(|s| s.iter().copied().filter(|&c| c != except).collect())
            .unwrap_or_default()
    }

    /// Drop `client`'s copy of `oid` (after a callback completes).
    pub fn drop_copy(&self, client: ClientId, oid: Oid) {
        let mut map = self.by_oid.lock();
        if let Some(set) = map.get_mut(&oid) {
            set.remove(&client);
            if set.is_empty() {
                map.remove(&oid);
            }
        }
    }

    /// Drop every copy held by `client` (disconnect).
    pub fn drop_client(&self, client: ClientId) {
        let mut map = self.by_oid.lock();
        map.retain(|_, set| {
            set.remove(&client);
            !set.is_empty()
        });
    }

    /// Number of tracked objects.
    pub fn tracked_objects(&self) -> usize {
        self.by_oid.lock().len()
    }

    /// Whether `client` is recorded as caching `oid`.
    pub fn has_copy(&self, client: ClientId, oid: Oid) -> bool {
        self.by_oid
            .lock()
            .get(&oid)
            .is_some_and(|s| s.contains(&client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u64) -> ClientId {
        ClientId::new(i)
    }

    fn o(i: u64) -> Oid {
        Oid::new(i)
    }

    #[test]
    fn register_and_holders() {
        let t = CopyTable::new();
        t.register(c(1), o(1));
        t.register(c(2), o(1));
        t.register(c(1), o(2));
        let mut holders = t.holders_except(o(1), c(2));
        holders.sort();
        assert_eq!(holders, vec![c(1)]);
        assert!(t.has_copy(c(1), o(2)));
        assert_eq!(t.tracked_objects(), 2);
    }

    #[test]
    fn holders_except_excludes_requester() {
        let t = CopyTable::new();
        t.register_many(c(1), &[o(1)]);
        assert!(t.holders_except(o(1), c(1)).is_empty());
        assert_eq!(t.holders_except(o(1), c(9)), vec![c(1)]);
    }

    #[test]
    fn drop_copy_and_client() {
        let t = CopyTable::new();
        t.register_many(c(1), &[o(1), o(2)]);
        t.register_many(c(2), &[o(1)]);
        t.drop_copy(c(1), o(1));
        assert!(!t.has_copy(c(1), o(1)));
        assert!(t.has_copy(c(2), o(1)));
        t.drop_client(c(2));
        assert_eq!(t.tracked_objects(), 1); // only o(2) remains
        assert!(t.has_copy(c(1), o(2)));
    }

    #[test]
    fn unknown_oid_has_no_holders() {
        let t = CopyTable::new();
        assert!(t.holders_except(o(42), c(1)).is_empty());
        t.drop_copy(c(1), o(42)); // no-op, no panic
    }
}
