//! Client ↔ server protocol.
//!
//! One duplex connection per client carries three kinds of traffic,
//! multiplexed by the [`Envelope`]:
//!
//! * `Req`/`Resp` — sequence-numbered RPCs issued by the client;
//! * `Push` — asynchronous server-initiated messages: cache-consistency
//!   callbacks (which the client must acknowledge) and, in the integrated
//!   deployment, display-lock notifications;
//! * `PushAck` — the client's acknowledgement of an ack-bearing push.

use displaydb_common::{ClassId, ClientId, DbError, DbResult, Oid, TxnId};
use displaydb_dlm::DlmEvent;
use displaydb_wire::{Decode, Encode, WireReader, WireWriter};

/// Lock modes requestable over the wire (transactional subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireLockMode {
    /// Update-intention lock.
    Update,
    /// Exclusive lock.
    Exclusive,
}

impl Encode for WireLockMode {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u8(match self {
            WireLockMode::Update => 1,
            WireLockMode::Exclusive => 2,
        });
    }
}

impl Decode for WireLockMode {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            1 => WireLockMode::Update,
            2 => WireLockMode::Exclusive,
            t => return Err(DbError::Protocol(format!("unknown lock mode {t}"))),
        })
    }
}

/// One shard's notification cursor inside a version-2 resume token: the
/// last update-log seqno acked for that shard, and the durable log
/// incarnation it was acked under (0 = no durable log).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCursor {
    /// The DLM shard this cursor belongs to.
    pub shard: u32,
    /// Last update-log seqno the client applied from that shard.
    pub cursor: u64,
    /// The shard's durable update-log incarnation at ack time (0 = the
    /// shard ran without a durable log).
    pub log_incarnation: u64,
}

/// The notification-cursor half of a resume token, versioned on the wire
/// so a sharded server can tell a pre-shard token apart from a
/// shard-aware one instead of silently misreading it.
#[derive(Clone, Debug, PartialEq)]
pub enum ResumeCursors {
    /// A version-1 (pre-shard) token: one flat cursor over what was then
    /// the single global seqno space. A sharded server cannot map this
    /// onto per-shard seqno spaces, so it admits the session but answers
    /// with a full resync rather than a partial replay.
    Legacy {
        /// Last update-log seqno the client applied; 0 = no cursor.
        cursor: u64,
        /// The durable update-log incarnation `cursor` was acked under.
        log_incarnation: u64,
    },
    /// A version-2 token: one cursor per DLM shard, each carrying the
    /// durable log incarnation it was acked under. Shards are admitted
    /// independently — a truncated shard resyncs while caught-up shards
    /// replay.
    Shards(Vec<ShardCursor>),
}

impl ResumeCursors {
    /// An empty shard-aware cursor set ("no cursor anywhere").
    pub fn none() -> Self {
        ResumeCursors::Shards(Vec::new())
    }
}

/// The session-resume half of a [`Request::Hello`]: presented by a client
/// that was previously connected and wants its server-side session state
/// (client id, copy-table registrations) rebuilt instead of starting fresh.
#[derive(Clone, Debug, PartialEq)]
pub struct ResumeRequest {
    /// The resume token issued in the previous [`Response::HelloAck`].
    pub token: u64,
    /// The server incarnation the token was issued by. A mismatch means the
    /// server restarted; the session is rebuilt from the manifest anyway,
    /// but every manifest entry is reported stale.
    pub incarnation: u64,
    /// `(oid, version)` pairs for every object in the client's cache at
    /// disconnect time. The server re-registers these in the copy table and
    /// reports which are out of date.
    pub manifest: Vec<(Oid, u64)>,
    /// The client's notification cursors (DESIGN.md §§ 13–14, 16),
    /// versioned on the wire: a legacy single cursor or a per-shard
    /// vector. When a shard's log still contains its cursor, the resumed
    /// session catches that shard up with a replay instead of a resync.
    pub cursors: ResumeCursors,
}

/// Resume-token wire versions. Version 1 is the pre-shard flat layout
/// (`cursor`, `log_incarnation` varints trailing the manifest); version 2
/// carries the per-shard cursor vector. Anything else is rejected as a
/// protocol error — never guessed at.
const RESUME_V1: u8 = 1;
const RESUME_V2: u8 = 2;

impl Encode for ResumeRequest {
    fn encode(&self, w: &mut WireWriter) {
        match &self.cursors {
            ResumeCursors::Legacy {
                cursor,
                log_incarnation,
            } => {
                w.put_u8(RESUME_V1);
                w.put_varint(self.token);
                w.put_varint(self.incarnation);
                w.put_varint(self.manifest.len() as u64);
                for (oid, version) in &self.manifest {
                    oid.encode(w);
                    w.put_varint(*version);
                }
                w.put_varint(*cursor);
                w.put_varint(*log_incarnation);
            }
            ResumeCursors::Shards(shards) => {
                w.put_u8(RESUME_V2);
                w.put_varint(self.token);
                w.put_varint(self.incarnation);
                w.put_varint(self.manifest.len() as u64);
                for (oid, version) in &self.manifest {
                    oid.encode(w);
                    w.put_varint(*version);
                }
                w.put_varint(shards.len() as u64);
                for sc in shards {
                    w.put_varint(u64::from(sc.shard));
                    w.put_varint(sc.cursor);
                    w.put_varint(sc.log_incarnation);
                }
            }
        }
    }
}

impl Decode for ResumeRequest {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        let version = r.get_u8()?;
        if version != RESUME_V1 && version != RESUME_V2 {
            return Err(DbError::Protocol(format!(
                "unknown resume token version {version}"
            )));
        }
        let token = r.get_varint()?;
        let incarnation = r.get_varint()?;
        let n = r.get_varint()? as usize;
        let mut manifest = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            manifest.push((Oid::decode(r)?, r.get_varint()?));
        }
        let cursors = if version == RESUME_V1 {
            ResumeCursors::Legacy {
                cursor: r.get_varint()?,
                log_incarnation: r.get_varint()?,
            }
        } else {
            let n = r.get_varint()? as usize;
            let mut shards = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                shards.push(ShardCursor {
                    shard: r.get_varint()? as u32,
                    cursor: r.get_varint()?,
                    log_incarnation: r.get_varint()?,
                });
            }
            ResumeCursors::Shards(shards)
        };
        Ok(ResumeRequest {
            token,
            incarnation,
            manifest,
            cursors,
        })
    }
}

/// Client-issued requests.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Handshake; must be the first request on a connection.
    Hello {
        /// Human-readable client name (for diagnostics).
        name: String,
        /// Present when reconnecting: asks the server to rebuild the
        /// previous session instead of allocating a fresh one.
        resume: Option<ResumeRequest>,
    },
    /// Start a transaction.
    Begin,
    /// Read an object (registers the client in the copy table, making the
    /// cached copy callback-protected).
    Read {
        /// Reading transaction, if any (sees its own uncommitted writes).
        txn: Option<TxnId>,
        /// The object.
        oid: Oid,
    },
    /// Read several objects at once (one round-trip).
    ReadMany {
        /// Reading transaction, if any.
        txn: Option<TxnId>,
        /// The objects.
        oids: Vec<Oid>,
    },
    /// Acquire a transactional lock. Exclusive grants trigger callbacks to
    /// other caching clients and early-notify marks to display holders.
    Lock {
        /// The locking transaction.
        txn: TxnId,
        /// The object.
        oid: Oid,
        /// Requested mode.
        mode: WireLockMode,
    },
    /// Create a new object (server assigns the OID).
    Create {
        /// The creating transaction.
        txn: TxnId,
        /// Encoded [`displaydb_schema::DbObject`] with OID 0.
        object: Vec<u8>,
    },
    /// Write an object (implicitly acquires an exclusive lock).
    Write {
        /// The writing transaction.
        txn: TxnId,
        /// Encoded object with its real OID.
        object: Vec<u8>,
    },
    /// Delete an object (implicitly acquires an exclusive lock).
    Delete {
        /// The deleting transaction.
        txn: TxnId,
        /// The object.
        oid: Oid,
    },
    /// Commit: make writes durable, release locks, notify display holders.
    Commit {
        /// The transaction.
        txn: TxnId,
        /// End-to-end trace id minted by the committing client
        /// (DESIGN.md § 12); `0` when the client is not tracing. The
        /// server stamps it onto every notification this commit
        /// produces.
        trace: displaydb_common::TraceId,
    },
    /// Abort: discard writes, release locks.
    Abort {
        /// The transaction.
        txn: TxnId,
    },
    /// List all objects of a class.
    Extent {
        /// The class.
        class: ClassId,
        /// Include objects of subclasses.
        include_subclasses: bool,
    },
    /// Acquire display locks (integrated deployment). Fire-and-forget
    /// semantics but carried as an RPC so tests can fence on it.
    DisplayLock {
        /// Objects to watch.
        oids: Vec<Oid>,
    },
    /// Release display locks (integrated deployment).
    DisplayRelease {
        /// Objects to stop watching.
        oids: Vec<Oid>,
    },
    /// Acquire display locks with a registered attribute projection
    /// (integrated deployment): the client only wants notifications for
    /// changes touching `attrs` (attribute layout indices), delivered as
    /// attribute-level deltas tagged with `version`.
    DisplayLockProjected {
        /// Objects to watch.
        oids: Vec<Oid>,
        /// Projected attribute layout indices.
        attrs: Vec<u16>,
        /// The client's projection-registry version, echoed in deltas.
        version: u32,
    },
    /// Ask the DLM to replay every logged notification after `cursor`
    /// that intersects this client's display-lock interests (integrated
    /// deployment). The suffix — or a `ResyncRequired` fallback when the
    /// cursor was truncated out of the log — arrives as DLM pushes; the
    /// RPC response only confirms the replay was scheduled.
    ReplayFrom {
        /// Last update-log seqno the client has applied.
        cursor: u64,
    },
    /// Shard-aware replay (integrated deployment, sharded DLM): one
    /// cursor per shard whose suffix the client wants replayed. Shards
    /// answer independently — a shard whose log no longer covers its
    /// cursor pushes `ResyncRequired` for the client's interests on that
    /// shard while the others replay normally.
    ReplayFromShards {
        /// `(shard, cursor)` pairs; shards not listed are untouched.
        cursors: Vec<(u32, u64)>,
    },
    /// Force a checkpoint (flush heap, truncate WAL).
    Checkpoint,
    /// Liveness probe.
    Ping,
}

/// Server responses.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake reply.
    HelloAck {
        /// The id assigned to this client.
        client: ClientId,
        /// Encoded [`displaydb_schema::Catalog`].
        catalog: Vec<u8>,
        /// Resume token to present on reconnect.
        session: u64,
        /// Server incarnation (changes when the server restarts).
        incarnation: u64,
        /// Session epoch: 0 for a fresh session, incremented on each
        /// successful resume. Pushes from earlier epochs are obsolete.
        epoch: u64,
        /// Whether the previous session was found and rebuilt.
        resumed: bool,
        /// Manifest entries whose cached version is out of date (or whose
        /// currency could not be proven, e.g. after a server restart). The
        /// client must invalidate these before serving them again.
        stale: Vec<Oid>,
        /// Whether the resumed client's notification cursor is still in
        /// the DLM update log: the client should catch up with
        /// `ReplayFrom{cursor}` instead of resyncing `stale`. With a
        /// durable log this can hold even across a server restart
        /// (DESIGN.md § 14). Always false for fresh sessions and
        /// truncated cursors.
        replay_ok: bool,
        /// The durable update-log incarnation behind this server (0 =
        /// none). With a sharded DLM this is shard 0's incarnation, kept
        /// for diagnostics; the authoritative per-shard values are in
        /// `shard_log_incarnations`.
        log_incarnation: u64,
        /// Per-shard durable update-log incarnations (index = shard id,
        /// 0 = that shard has no durable log). The client persists these
        /// alongside its per-shard cursors and echoes them in the next
        /// resume's cursor vector. A single-shard server reports one
        /// entry.
        shard_log_incarnations: Vec<u64>,
    },
    /// Transaction started.
    TxnStarted {
        /// Its id.
        txn: TxnId,
    },
    /// One object's encoded state.
    Object {
        /// Encoded object.
        bytes: Vec<u8>,
    },
    /// Several objects' encoded states (order matches the request; missing
    /// objects are `None`).
    Objects {
        /// Encoded objects.
        objects: Vec<Option<Vec<u8>>>,
    },
    /// Object created.
    Created {
        /// The assigned OID.
        oid: Oid,
    },
    /// A list of OIDs.
    Oids {
        /// The OIDs.
        oids: Vec<Oid>,
    },
    /// Generic success.
    Ok,
    /// Failure.
    Error {
        /// Machine-readable error category (see
        /// [`displaydb_common::DbError::kind`]).
        kind: String,
        /// Human-readable message.
        message: String,
    },
}

impl Response {
    /// Convert an error into its wire form.
    pub fn from_error(e: &DbError) -> Self {
        Response::Error {
            kind: e.kind().to_string(),
            message: e.to_string(),
        }
    }

    /// Convert a wire error back into a [`DbError`].
    pub fn into_result(self) -> DbResult<Response> {
        match self {
            Response::Error { kind, message } => Err(match kind.as_str() {
                "deadlock" => DbError::Deadlock {
                    victim: TxnId::new(0),
                },
                "lock_timeout" => DbError::LockTimeout { oid: Oid::new(0) },
                "disconnected" => DbError::Disconnected,
                "timeout" => DbError::Timeout(message),
                "overloaded" => DbError::Overloaded,
                "object_not_found" => DbError::Rejected(message),
                _ => DbError::Rejected(message),
            }),
            other => Ok(other),
        }
    }
}

/// Server-initiated pushes.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerPush {
    /// Avoidance-protocol callback: drop these objects from the client
    /// database cache and acknowledge with the given id.
    Callback {
        /// Ack id to echo in [`Envelope::PushAck`].
        ack: u64,
        /// Objects to invalidate.
        oids: Vec<Oid>,
    },
    /// A display-lock notification (integrated deployment).
    Dlm(DlmEvent),
}

/// The connection multiplexing envelope.
#[derive(Clone, Debug, PartialEq)]
pub enum Envelope {
    /// A client request with its sequence number.
    Req(u64, Request),
    /// The server's response to the request with that sequence number.
    Resp(u64, Response),
    /// A server push.
    Push(ServerPush),
    /// Client acknowledgement of an ack-bearing push.
    PushAck(u64),
}

// --- encoding -------------------------------------------------------------

const REQ_HELLO: u8 = 1;
const REQ_BEGIN: u8 = 2;
const REQ_READ: u8 = 3;
const REQ_READ_MANY: u8 = 4;
const REQ_LOCK: u8 = 5;
const REQ_CREATE: u8 = 6;
const REQ_WRITE: u8 = 7;
const REQ_DELETE: u8 = 8;
const REQ_COMMIT: u8 = 9;
const REQ_ABORT: u8 = 10;
const REQ_EXTENT: u8 = 11;
const REQ_DLOCK: u8 = 12;
const REQ_DRELEASE: u8 = 13;
const REQ_CHECKPOINT: u8 = 14;
const REQ_PING: u8 = 15;
const REQ_DLOCK_PROJECTED: u8 = 16;
const REQ_REPLAY_FROM: u8 = 17;
const REQ_REPLAY_FROM_SHARDS: u8 = 18;

impl Encode for Request {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Request::Hello { name, resume } => {
                w.put_u8(REQ_HELLO);
                name.encode(w);
                resume.encode(w);
            }
            Request::Begin => w.put_u8(REQ_BEGIN),
            Request::Read { txn, oid } => {
                w.put_u8(REQ_READ);
                txn.encode(w);
                oid.encode(w);
            }
            Request::ReadMany { txn, oids } => {
                w.put_u8(REQ_READ_MANY);
                txn.encode(w);
                oids.encode(w);
            }
            Request::Lock { txn, oid, mode } => {
                w.put_u8(REQ_LOCK);
                txn.encode(w);
                oid.encode(w);
                mode.encode(w);
            }
            Request::Create { txn, object } => {
                w.put_u8(REQ_CREATE);
                txn.encode(w);
                object.encode(w);
            }
            Request::Write { txn, object } => {
                w.put_u8(REQ_WRITE);
                txn.encode(w);
                object.encode(w);
            }
            Request::Delete { txn, oid } => {
                w.put_u8(REQ_DELETE);
                txn.encode(w);
                oid.encode(w);
            }
            Request::Commit { txn, trace } => {
                w.put_u8(REQ_COMMIT);
                txn.encode(w);
                w.put_varint(*trace);
            }
            Request::Abort { txn } => {
                w.put_u8(REQ_ABORT);
                txn.encode(w);
            }
            Request::Extent {
                class,
                include_subclasses,
            } => {
                w.put_u8(REQ_EXTENT);
                class.encode(w);
                include_subclasses.encode(w);
            }
            Request::DisplayLock { oids } => {
                w.put_u8(REQ_DLOCK);
                oids.encode(w);
            }
            Request::DisplayRelease { oids } => {
                w.put_u8(REQ_DRELEASE);
                oids.encode(w);
            }
            Request::DisplayLockProjected {
                oids,
                attrs,
                version,
            } => {
                w.put_u8(REQ_DLOCK_PROJECTED);
                oids.encode(w);
                w.put_varint(attrs.len() as u64);
                for a in attrs {
                    w.put_varint(u64::from(*a));
                }
                w.put_varint(u64::from(*version));
            }
            Request::ReplayFrom { cursor } => {
                w.put_u8(REQ_REPLAY_FROM);
                w.put_varint(*cursor);
            }
            Request::ReplayFromShards { cursors } => {
                w.put_u8(REQ_REPLAY_FROM_SHARDS);
                w.put_varint(cursors.len() as u64);
                for (shard, cursor) in cursors {
                    w.put_varint(u64::from(*shard));
                    w.put_varint(*cursor);
                }
            }
            Request::Checkpoint => w.put_u8(REQ_CHECKPOINT),
            Request::Ping => w.put_u8(REQ_PING),
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            REQ_HELLO => Request::Hello {
                name: String::decode(r)?,
                resume: Option::<ResumeRequest>::decode(r)?,
            },
            REQ_BEGIN => Request::Begin,
            REQ_READ => Request::Read {
                txn: Option::<TxnId>::decode(r)?,
                oid: Oid::decode(r)?,
            },
            REQ_READ_MANY => Request::ReadMany {
                txn: Option::<TxnId>::decode(r)?,
                oids: Vec::<Oid>::decode(r)?,
            },
            REQ_LOCK => Request::Lock {
                txn: TxnId::decode(r)?,
                oid: Oid::decode(r)?,
                mode: WireLockMode::decode(r)?,
            },
            REQ_CREATE => Request::Create {
                txn: TxnId::decode(r)?,
                object: Vec::<u8>::decode(r)?,
            },
            REQ_WRITE => Request::Write {
                txn: TxnId::decode(r)?,
                object: Vec::<u8>::decode(r)?,
            },
            REQ_DELETE => Request::Delete {
                txn: TxnId::decode(r)?,
                oid: Oid::decode(r)?,
            },
            REQ_COMMIT => Request::Commit {
                txn: TxnId::decode(r)?,
                trace: r.get_varint()?,
            },
            REQ_ABORT => Request::Abort {
                txn: TxnId::decode(r)?,
            },
            REQ_EXTENT => Request::Extent {
                class: ClassId::decode(r)?,
                include_subclasses: bool::decode(r)?,
            },
            REQ_DLOCK => Request::DisplayLock {
                oids: Vec::<Oid>::decode(r)?,
            },
            REQ_DRELEASE => Request::DisplayRelease {
                oids: Vec::<Oid>::decode(r)?,
            },
            REQ_CHECKPOINT => Request::Checkpoint,
            REQ_PING => Request::Ping,
            REQ_REPLAY_FROM => Request::ReplayFrom {
                cursor: r.get_varint()?,
            },
            REQ_REPLAY_FROM_SHARDS => {
                let n = r.get_varint()? as usize;
                let mut cursors = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    cursors.push((r.get_varint()? as u32, r.get_varint()?));
                }
                Request::ReplayFromShards { cursors }
            }
            REQ_DLOCK_PROJECTED => {
                let oids = Vec::<Oid>::decode(r)?;
                let n = r.get_varint()? as usize;
                let mut attrs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    attrs.push(r.get_varint()? as u16);
                }
                let version = r.get_varint()? as u32;
                Request::DisplayLockProjected {
                    oids,
                    attrs,
                    version,
                }
            }
            t => return Err(DbError::Protocol(format!("unknown request tag {t}"))),
        })
    }
}

const RESP_HELLO_ACK: u8 = 1;
const RESP_TXN: u8 = 2;
const RESP_OBJECT: u8 = 3;
const RESP_OBJECTS: u8 = 4;
const RESP_CREATED: u8 = 5;
const RESP_OIDS: u8 = 6;
const RESP_OK: u8 = 7;
const RESP_ERROR: u8 = 8;

impl Encode for Response {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Response::HelloAck {
                client,
                catalog,
                session,
                incarnation,
                epoch,
                resumed,
                stale,
                replay_ok,
                log_incarnation,
                shard_log_incarnations,
            } => {
                w.put_u8(RESP_HELLO_ACK);
                client.encode(w);
                catalog.encode(w);
                w.put_varint(*session);
                w.put_varint(*incarnation);
                w.put_varint(*epoch);
                resumed.encode(w);
                stale.encode(w);
                replay_ok.encode(w);
                w.put_varint(*log_incarnation);
                w.put_varint(shard_log_incarnations.len() as u64);
                for inc in shard_log_incarnations {
                    w.put_varint(*inc);
                }
            }
            Response::TxnStarted { txn } => {
                w.put_u8(RESP_TXN);
                txn.encode(w);
            }
            Response::Object { bytes } => {
                w.put_u8(RESP_OBJECT);
                bytes.encode(w);
            }
            Response::Objects { objects } => {
                w.put_u8(RESP_OBJECTS);
                w.put_varint(objects.len() as u64);
                for o in objects {
                    o.encode(w);
                }
            }
            Response::Created { oid } => {
                w.put_u8(RESP_CREATED);
                oid.encode(w);
            }
            Response::Oids { oids } => {
                w.put_u8(RESP_OIDS);
                oids.encode(w);
            }
            Response::Ok => w.put_u8(RESP_OK),
            Response::Error { kind, message } => {
                w.put_u8(RESP_ERROR);
                kind.encode(w);
                message.encode(w);
            }
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            RESP_HELLO_ACK => Response::HelloAck {
                client: ClientId::decode(r)?,
                catalog: Vec::<u8>::decode(r)?,
                session: r.get_varint()?,
                incarnation: r.get_varint()?,
                epoch: r.get_varint()?,
                resumed: bool::decode(r)?,
                stale: Vec::<Oid>::decode(r)?,
                replay_ok: bool::decode(r)?,
                log_incarnation: r.get_varint()?,
                shard_log_incarnations: {
                    let n = r.get_varint()? as usize;
                    let mut incs = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        incs.push(r.get_varint()?);
                    }
                    incs
                },
            },
            RESP_TXN => Response::TxnStarted {
                txn: TxnId::decode(r)?,
            },
            RESP_OBJECT => Response::Object {
                bytes: Vec::<u8>::decode(r)?,
            },
            RESP_OBJECTS => {
                let n = r.get_varint()? as usize;
                let mut objects = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    objects.push(Option::<Vec<u8>>::decode(r)?);
                }
                Response::Objects { objects }
            }
            RESP_CREATED => Response::Created {
                oid: Oid::decode(r)?,
            },
            RESP_OIDS => Response::Oids {
                oids: Vec::<Oid>::decode(r)?,
            },
            RESP_OK => Response::Ok,
            RESP_ERROR => Response::Error {
                kind: String::decode(r)?,
                message: String::decode(r)?,
            },
            t => return Err(DbError::Protocol(format!("unknown response tag {t}"))),
        })
    }
}

const PUSH_CALLBACK: u8 = 1;
const PUSH_DLM: u8 = 2;

impl Encode for ServerPush {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ServerPush::Callback { ack, oids } => {
                w.put_u8(PUSH_CALLBACK);
                w.put_varint(*ack);
                oids.encode(w);
            }
            ServerPush::Dlm(event) => {
                w.put_u8(PUSH_DLM);
                event.encode(w);
            }
        }
    }
}

impl Decode for ServerPush {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            PUSH_CALLBACK => ServerPush::Callback {
                ack: r.get_varint()?,
                oids: Vec::<Oid>::decode(r)?,
            },
            PUSH_DLM => ServerPush::Dlm(DlmEvent::decode(r)?),
            t => return Err(DbError::Protocol(format!("unknown push tag {t}"))),
        })
    }
}

const ENV_REQ: u8 = 1;
const ENV_RESP: u8 = 2;
const ENV_PUSH: u8 = 3;
const ENV_PUSH_ACK: u8 = 4;

impl Encode for Envelope {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            Envelope::Req(seq, req) => {
                w.put_u8(ENV_REQ);
                w.put_varint(*seq);
                req.encode(w);
            }
            Envelope::Resp(seq, resp) => {
                w.put_u8(ENV_RESP);
                w.put_varint(*seq);
                resp.encode(w);
            }
            Envelope::Push(push) => {
                w.put_u8(ENV_PUSH);
                push.encode(w);
            }
            Envelope::PushAck(ack) => {
                w.put_u8(ENV_PUSH_ACK);
                w.put_varint(*ack);
            }
        }
    }
}

impl Decode for Envelope {
    fn decode(r: &mut WireReader<'_>) -> DbResult<Self> {
        Ok(match r.get_u8()? {
            ENV_REQ => Envelope::Req(r.get_varint()?, Request::decode(r)?),
            ENV_RESP => Envelope::Resp(r.get_varint()?, Response::decode(r)?),
            ENV_PUSH => Envelope::Push(ServerPush::decode(r)?),
            ENV_PUSH_ACK => Envelope::PushAck(r.get_varint()?),
            t => return Err(DbError::Protocol(format!("unknown envelope tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_dlm::UpdateInfo;

    fn rt(e: Envelope) {
        let bytes = e.encode_to_bytes();
        assert_eq!(Envelope::decode_from_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn envelope_roundtrips() {
        rt(Envelope::Req(
            7,
            Request::Hello {
                name: "nms-console".into(),
                resume: None,
            },
        ));
        rt(Envelope::Req(
            7,
            Request::Hello {
                name: "nms-console".into(),
                resume: Some(ResumeRequest {
                    token: 0xdead_beef,
                    incarnation: 42,
                    manifest: vec![(Oid::new(1), 3), (Oid::new(9), 0)],
                    cursors: ResumeCursors::Legacy {
                        cursor: 1234,
                        log_incarnation: 0xfeed,
                    },
                }),
            },
        ));
        rt(Envelope::Req(
            7,
            Request::Hello {
                name: "nms-console".into(),
                resume: Some(ResumeRequest {
                    token: 0xdead_beef,
                    incarnation: 42,
                    manifest: vec![(Oid::new(1), 3)],
                    cursors: ResumeCursors::Shards(vec![
                        ShardCursor {
                            shard: 0,
                            cursor: 1234,
                            log_incarnation: 0xfeed,
                        },
                        ShardCursor {
                            shard: 3,
                            cursor: 0,
                            log_incarnation: 0,
                        },
                        ShardCursor {
                            shard: 7,
                            cursor: u64::MAX,
                            log_incarnation: u64::MAX,
                        },
                    ]),
                }),
            },
        ));
        rt(Envelope::Req(
            7,
            Request::Hello {
                name: "nms-console".into(),
                resume: Some(ResumeRequest {
                    token: 1,
                    incarnation: 1,
                    manifest: vec![],
                    cursors: ResumeCursors::none(),
                }),
            },
        ));
        rt(Envelope::Req(8, Request::Begin));
        rt(Envelope::Req(
            9,
            Request::Read {
                txn: Some(TxnId::new(3)),
                oid: Oid::new(4),
            },
        ));
        rt(Envelope::Req(
            10,
            Request::ReadMany {
                txn: None,
                oids: vec![Oid::new(1), Oid::new(2)],
            },
        ));
        rt(Envelope::Req(
            11,
            Request::Lock {
                txn: TxnId::new(3),
                oid: Oid::new(4),
                mode: WireLockMode::Exclusive,
            },
        ));
        rt(Envelope::Req(
            12,
            Request::Write {
                txn: TxnId::new(3),
                object: vec![1, 2, 3],
            },
        ));
        rt(Envelope::Req(
            13,
            Request::Commit {
                txn: TxnId::new(3),
                trace: 0,
            },
        ));
        rt(Envelope::Req(
            17,
            Request::Commit {
                txn: TxnId::new(4),
                trace: u64::MAX,
            },
        ));
        rt(Envelope::Req(
            14,
            Request::Extent {
                class: ClassId::new(2),
                include_subclasses: true,
            },
        ));
        rt(Envelope::Req(
            15,
            Request::DisplayLock {
                oids: vec![Oid::new(9)],
            },
        ));
        rt(Envelope::Req(
            16,
            Request::DisplayLockProjected {
                oids: vec![Oid::new(9), Oid::new(10)],
                attrs: vec![1, 3, 500],
                version: 6,
            },
        ));
        rt(Envelope::Req(18, Request::ReplayFrom { cursor: 0 }));
        rt(Envelope::Req(19, Request::ReplayFrom { cursor: u64::MAX }));
        rt(Envelope::Req(
            20,
            Request::ReplayFromShards { cursors: vec![] },
        ));
        rt(Envelope::Req(
            21,
            Request::ReplayFromShards {
                cursors: vec![(0, 17), (2, 0), (7, u64::MAX)],
            },
        ));
        rt(Envelope::Push(ServerPush::Dlm(DlmEvent::CursorAck {
            seqno: 912,
        })));
        rt(Envelope::Push(ServerPush::Dlm(DlmEvent::ReplayNeeded {
            from: 907,
        })));
        rt(Envelope::Push(ServerPush::Dlm(DlmEvent::Delta {
            oid: Oid::new(5),
            version: 2,
            changed: vec![(1, vec![7, 8])],
            trace: 41,
        })));
        rt(Envelope::Push(ServerPush::Dlm(DlmEvent::Batch(vec![
            DlmEvent::Updated(UpdateInfo::lazy(Oid::new(5))),
            DlmEvent::Delta {
                oid: Oid::new(6),
                version: 1,
                changed: vec![(0, vec![1])],
                trace: 0,
            },
        ]))));
        rt(Envelope::Resp(
            7,
            Response::HelloAck {
                client: ClientId::new(1),
                catalog: vec![0, 1],
                session: 99,
                incarnation: 7,
                epoch: 2,
                resumed: true,
                stale: vec![Oid::new(9)],
                replay_ok: true,
                log_incarnation: 4242,
                shard_log_incarnations: vec![4242, 0, 977],
            },
        ));
        rt(Envelope::Resp(
            9,
            Response::Objects {
                objects: vec![Some(vec![1]), None],
            },
        ));
        rt(Envelope::Resp(
            10,
            Response::Error {
                kind: "deadlock".into(),
                message: "boom".into(),
            },
        ));
        rt(Envelope::Push(ServerPush::Callback {
            ack: 77,
            oids: vec![Oid::new(5)],
        }));
        rt(Envelope::Push(ServerPush::Dlm(DlmEvent::Updated(
            UpdateInfo::lazy(Oid::new(5)),
        ))));
        rt(Envelope::PushAck(77));
    }

    #[test]
    fn error_response_into_result() {
        let e = Response::Error {
            kind: "deadlock".into(),
            message: "x".into(),
        };
        assert!(matches!(e.into_result(), Err(DbError::Deadlock { .. })));
        let d = Response::Error {
            kind: "disconnected".into(),
            message: "gone".into(),
        };
        assert!(matches!(d.into_result(), Err(DbError::Disconnected)));
        let o = Response::Error {
            kind: "overloaded".into(),
            message: "shed".into(),
        };
        assert!(matches!(o.into_result(), Err(DbError::Overloaded)));
        assert!(Response::Ok.into_result().is_ok());
    }

    #[test]
    fn junk_envelope_rejected() {
        assert!(Envelope::decode_from_bytes(&[99, 1, 2]).is_err());
        assert!(Envelope::decode_from_bytes(&[]).is_err());
    }

    #[test]
    fn resume_token_versions_discriminate() {
        // A legacy token decodes back as Legacy, never as a misread
        // shard vector, and vice versa.
        let legacy = ResumeRequest {
            token: 9,
            incarnation: 3,
            manifest: vec![(Oid::new(4), 1)],
            cursors: ResumeCursors::Legacy {
                cursor: 55,
                log_incarnation: 7,
            },
        };
        let bytes = legacy.encode_to_bytes();
        assert_eq!(bytes[0], RESUME_V1);
        let back = ResumeRequest::decode_from_bytes(&bytes).unwrap();
        assert!(matches!(back.cursors, ResumeCursors::Legacy { .. }));
        assert_eq!(back, legacy);

        let sharded = ResumeRequest {
            token: 9,
            incarnation: 3,
            manifest: vec![(Oid::new(4), 1)],
            cursors: ResumeCursors::Shards(vec![ShardCursor {
                shard: 1,
                cursor: 55,
                log_incarnation: 7,
            }]),
        };
        let bytes = sharded.encode_to_bytes();
        assert_eq!(bytes[0], RESUME_V2);
        let back = ResumeRequest::decode_from_bytes(&bytes).unwrap();
        assert!(matches!(back.cursors, ResumeCursors::Shards(_)));
        assert_eq!(back, sharded);
    }

    #[test]
    fn unknown_resume_token_version_rejected() {
        let ok = ResumeRequest {
            token: 1,
            incarnation: 1,
            manifest: vec![],
            cursors: ResumeCursors::none(),
        };
        let mut bytes = ok.encode_to_bytes().to_vec();
        bytes[0] = 3; // a version this build does not know
        let err = ResumeRequest::decode_from_bytes(&bytes).unwrap_err();
        assert!(matches!(err, DbError::Protocol(ref m) if m.contains("resume token version")));
        bytes[0] = 0;
        assert!(ResumeRequest::decode_from_bytes(&bytes).is_err());
    }
}
