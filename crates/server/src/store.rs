//! The durable object store: heap + WAL + object directory + class
//! extents, with crash recovery.
//!
//! Objects are stored as encoded [`DbObject`] records in a heap file. An
//! in-memory directory maps OID → record address and is rebuilt on open by
//! scanning the heap; committed WAL effects after the last checkpoint are
//! then replayed on top (redo-only recovery, see
//! [`displaydb_storage::wal`]).

use displaydb_common::ids::IdGen;
use displaydb_common::sync::{ranks, OrderedRwLock};
use displaydb_common::{ClassId, DbError, DbResult, Oid, RecordId, TxnId};
use displaydb_schema::{Catalog, DbObject};
use displaydb_storage::{BufferPool, DiskManager, HeapFile, Wal, WalRecord};
use displaydb_wire::{Decode, Encode};
use std::collections::{HashMap, HashSet};
use std::path::Path;
use std::sync::Arc;

/// One write in a transaction's commit set.
#[derive(Clone, Debug, PartialEq)]
pub enum WriteOp {
    /// Insert or overwrite the full object state.
    Put(DbObject),
    /// Remove the object.
    Delete(Oid),
}

impl WriteOp {
    /// The object this op touches.
    pub fn oid(&self) -> Oid {
        match self {
            WriteOp::Put(o) => o.oid,
            WriteOp::Delete(oid) => *oid,
        }
    }
}

/// The server-side persistent object store.
pub struct ObjectStore {
    catalog: Arc<Catalog>,
    heap: HeapFile,
    wal: Wal,
    directory: OrderedRwLock<HashMap<Oid, RecordId>>,
    extents: OrderedRwLock<HashMap<ClassId, HashSet<Oid>>>,
    oid_gen: IdGen,
    sync_commits: bool,
    /// Highest committed transaction id found in the WAL at open (0 =
    /// none). Snapshot of the commit stream the durable DLM update log
    /// must not trail (DESIGN.md § 14).
    recovered_last_txn: u64,
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("objects", &self.directory.read().len())
            .finish()
    }
}

impl ObjectStore {
    /// Open (or create) the store in `dir`, recovering committed WAL
    /// effects. `frames` sizes the server buffer pool.
    pub fn open(
        dir: impl AsRef<Path>,
        catalog: Arc<Catalog>,
        frames: usize,
        sync_commits: bool,
    ) -> DbResult<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let disk = Arc::new(DiskManager::open(dir.join("data.db"))?);
        let pool = BufferPool::new(disk, frames);
        let heap = HeapFile::open(Arc::clone(&pool))?;
        let wal_path = dir.join("wal.log");
        let records = Wal::read_all(&wal_path)?;
        let wal = Wal::open(&wal_path)?;

        let recovered_last_txn = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit(t) => Some(t.raw()),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        let store = Self {
            catalog,
            heap,
            wal,
            directory: OrderedRwLock::new(ranks::STORE_DIRECTORY, HashMap::new()),
            extents: OrderedRwLock::new(ranks::STORE_EXTENTS, HashMap::new()),
            oid_gen: IdGen::starting_at(1),
            sync_commits,
            recovered_last_txn,
        };

        // Rebuild the directory and extents from the heap.
        let mut max_oid = 0u64;
        {
            let mut dir_map = store.directory.write();
            let mut ext_map = store.extents.write();
            store.heap.for_each(|rid, payload| {
                if let Ok(obj) = DbObject::decode_from_bytes(payload) {
                    max_oid = max_oid.max(obj.oid.raw());
                    dir_map.insert(obj.oid, rid);
                    ext_map.entry(obj.class).or_default().insert(obj.oid);
                }
            })?;
        }

        // Replay committed WAL effects on top.
        let fx = displaydb_storage::wal::redo_effects(&records);
        max_oid = max_oid.max(fx.max_oid);
        for (oid, state) in &fx.objects {
            match state {
                Some(bytes) => {
                    let obj = DbObject::decode_from_bytes(bytes)?;
                    store.apply_put(obj, bytes)?;
                }
                None => store.apply_delete(*oid)?,
            }
        }
        store.oid_gen.bump_to(max_oid + 1);

        // Make the replayed state durable and truncate the log.
        if !fx.objects.is_empty() {
            store.checkpoint()?;
        }
        Ok(store)
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Highest committed transaction id the WAL held when the store was
    /// opened (0 = clean/empty log). Feeds the durable update log's
    /// startup cross-check (DESIGN.md § 14).
    pub fn recovered_last_txn(&self) -> u64 {
        self.recovered_last_txn
    }

    /// The buffer pool (for stats and the memory-hierarchy bench).
    pub fn pool(&self) -> &Arc<BufferPool> {
        self.heap.pool()
    }

    /// Allocate a fresh OID.
    pub fn allocate_oid(&self) -> Oid {
        Oid::new(self.oid_gen.next())
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.directory.read().len()
    }

    /// Whether `oid` exists.
    pub fn exists(&self, oid: Oid) -> bool {
        self.directory.read().contains_key(&oid)
    }

    /// Read an object's encoded state.
    pub fn get_bytes(&self, oid: Oid) -> DbResult<Vec<u8>> {
        let rid = *self
            .directory
            .read()
            .get(&oid)
            .ok_or(DbError::ObjectNotFound(oid))?;
        self.heap.get(rid)
    }

    /// Read and decode an object.
    pub fn get(&self, oid: Oid) -> DbResult<DbObject> {
        DbObject::decode_from_bytes(&self.get_bytes(oid)?)
    }

    /// OIDs of all objects of `class` (optionally including subclasses).
    pub fn extent(&self, class: ClassId, include_subclasses: bool) -> Vec<Oid> {
        let extents = self.extents.read();
        let mut out: Vec<Oid> = Vec::new();
        if include_subclasses {
            for sub in self.catalog.family_of(class) {
                if let Some(set) = extents.get(&sub) {
                    out.extend(set.iter().copied());
                }
            }
        } else if let Some(set) = extents.get(&class) {
            out.extend(set.iter().copied());
        }
        out.sort_unstable();
        out
    }

    fn apply_put(&self, obj: DbObject, bytes: &[u8]) -> DbResult<()> {
        let oid = obj.oid;
        let existing = self.directory.read().get(&oid).copied();
        let rid = match existing {
            Some(rid) => self.heap.update(rid, bytes)?,
            None => self.heap.insert(bytes)?,
        };
        self.directory.write().insert(oid, rid);
        self.extents
            .write()
            .entry(obj.class)
            .or_default()
            .insert(oid);
        Ok(())
    }

    fn apply_delete(&self, oid: Oid) -> DbResult<()> {
        let rid = self.directory.write().remove(&oid);
        if let Some(rid) = rid {
            // Class membership: find and remove from whichever extent.
            let class = self
                .heap
                .get(rid)
                .ok()
                .and_then(|b| DbObject::decode_from_bytes(&b).ok())
                .map(|o| o.class);
            self.heap.delete(rid)?;
            if let Some(class) = class {
                if let Some(set) = self.extents.write().get_mut(&class) {
                    set.remove(&oid);
                }
            } else {
                // Fallback: purge from all extents.
                for set in self.extents.write().values_mut() {
                    set.remove(&oid);
                }
            }
        }
        Ok(())
    }

    /// Durably apply a transaction's write set: WAL (force), then heap.
    ///
    /// Returns the encoded post-states, in write order, for the display
    /// notification fan-out (eager shipping needs the bytes).
    pub fn commit(&self, txn: TxnId, writes: &[WriteOp]) -> DbResult<Vec<(Oid, Option<Vec<u8>>)>> {
        // Validate first: all puts must be well-formed.
        for w in writes {
            if let WriteOp::Put(obj) = w {
                obj.validate(&self.catalog)?;
                if obj.oid.raw() == 0 {
                    return Err(DbError::InvalidArgument(
                        "cannot commit object with unassigned oid".into(),
                    ));
                }
            }
        }
        // Log phase (redo information + commit record, forced).
        self.wal.append(&WalRecord::Begin(txn))?;
        let mut outcomes = Vec::with_capacity(writes.len());
        let mut encoded: Vec<(Oid, Option<Vec<u8>>)> = Vec::with_capacity(writes.len());
        for w in writes {
            match w {
                WriteOp::Put(obj) => {
                    let bytes = obj.encode_to_bytes().to_vec();
                    self.wal.append(&WalRecord::Put {
                        txn,
                        oid: obj.oid,
                        bytes: bytes.clone(),
                    })?;
                    encoded.push((obj.oid, Some(bytes)));
                }
                WriteOp::Delete(oid) => {
                    self.wal.append(&WalRecord::Delete { txn, oid: *oid })?;
                    encoded.push((*oid, None));
                }
            }
        }
        self.wal.append(&WalRecord::Commit(txn))?;
        if self.sync_commits {
            self.wal.sync()?;
        }
        // Apply phase.
        for (w, (oid, bytes)) in writes.iter().zip(&encoded) {
            match w {
                WriteOp::Put(obj) => {
                    self.apply_put(obj.clone(), bytes.as_ref().expect("put has bytes"))?
                }
                WriteOp::Delete(_) => self.apply_delete(*oid)?,
            }
            outcomes.push((*oid, bytes.clone()));
        }
        Ok(outcomes)
    }

    /// Record an abort (for log completeness; nothing was applied).
    pub fn abort(&self, txn: TxnId) -> DbResult<()> {
        self.wal.append(&WalRecord::Abort(txn))?;
        Ok(())
    }

    /// Flush all heap pages, then truncate the WAL behind a checkpoint
    /// record.
    pub fn checkpoint(&self) -> DbResult<()> {
        self.heap.pool().flush_all()?;
        self.wal.reset()?;
        self.wal.append(&WalRecord::Checkpoint)?;
        self.wal.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use displaydb_schema::class::ClassBuilder;
    use displaydb_schema::AttrType;
    use std::path::PathBuf;

    fn catalog() -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.define(
            ClassBuilder::new("Node")
                .attr("Name", AttrType::Str)
                .attr_default("Status", AttrType::Str, "up"),
        )
        .unwrap();
        c.define(
            ClassBuilder::new("Router")
                .extends("Node")
                .attr("Ports", AttrType::Int),
        )
        .unwrap();
        Arc::new(c)
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("displaydb-store-tests")
            .join(format!("{}-{}", name, std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn node(cat: &Catalog, store: &ObjectStore, name: &str) -> DbObject {
        let mut o = DbObject::new_named(cat, "Node").unwrap();
        o.oid = store.allocate_oid();
        o.set(cat, "Name", name).unwrap();
        o
    }

    #[test]
    fn commit_and_read_back() {
        let cat = catalog();
        let dir = tmp("basic");
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, false).unwrap();
        let obj = node(&cat, &store, "alpha");
        let oid = obj.oid;
        store
            .commit(TxnId::new(1), &[WriteOp::Put(obj.clone())])
            .unwrap();
        assert_eq!(store.get(oid).unwrap(), obj);
        assert_eq!(store.object_count(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn extent_with_subclasses() {
        let cat = catalog();
        let dir = tmp("extent");
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, false).unwrap();
        let n = node(&cat, &store, "plain");
        let mut r = DbObject::new_named(&cat, "Router").unwrap();
        r.oid = store.allocate_oid();
        store
            .commit(
                TxnId::new(1),
                &[WriteOp::Put(n.clone()), WriteOp::Put(r.clone())],
            )
            .unwrap();
        let node_class = cat.id_of("Node").unwrap();
        assert_eq!(store.extent(node_class, false), vec![n.oid]);
        let with_subs = store.extent(node_class, true);
        assert_eq!(with_subs.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_replays_committed_wal() {
        let cat = catalog();
        let dir = tmp("recovery");
        let oid;
        {
            let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, true).unwrap();
            let obj = node(&cat, &store, "durable");
            oid = obj.oid;
            store.commit(TxnId::new(1), &[WriteOp::Put(obj)]).unwrap();
            // Simulate a crash: drop without flushing heap pages.
        }
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, true).unwrap();
        let back = store.get(oid).unwrap();
        assert_eq!(back.get(&cat, "Name").unwrap().as_str().unwrap(), "durable");
        // OID allocator resumed past recovered ids.
        assert!(store.allocate_oid() > oid);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_ignores_unfinished_txn() {
        let cat = catalog();
        let dir = tmp("unfinished");
        {
            let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, true).unwrap();
            let obj = node(&cat, &store, "ghost");
            // Write WAL records without a commit by calling abort path.
            store.abort(TxnId::new(9)).unwrap();
            drop(obj);
        }
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, true).unwrap();
        assert_eq!(store.object_count(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_then_recovery() {
        let cat = catalog();
        let dir = tmp("checkpoint");
        let (a, b);
        {
            let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, true).unwrap();
            let oa = node(&cat, &store, "before");
            a = oa.oid;
            store.commit(TxnId::new(1), &[WriteOp::Put(oa)]).unwrap();
            store.checkpoint().unwrap();
            let ob = node(&cat, &store, "after");
            b = ob.oid;
            store.commit(TxnId::new(2), &[WriteOp::Put(ob)]).unwrap();
        }
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, true).unwrap();
        assert!(store.exists(a));
        assert!(store.exists(b));
        assert_eq!(store.object_count(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn delete_removes_from_extent_and_directory() {
        let cat = catalog();
        let dir = tmp("delete");
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, false).unwrap();
        let obj = node(&cat, &store, "bye");
        let oid = obj.oid;
        store.commit(TxnId::new(1), &[WriteOp::Put(obj)]).unwrap();
        store
            .commit(TxnId::new(2), &[WriteOp::Delete(oid)])
            .unwrap();
        assert!(!store.exists(oid));
        assert!(store.get(oid).is_err());
        assert!(store.extent(cat.id_of("Node").unwrap(), true).is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn commit_rejects_invalid_objects() {
        let cat = catalog();
        let dir = tmp("invalid");
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 16, false).unwrap();
        let mut obj = node(&cat, &store, "bad");
        obj.values.pop(); // corrupt
        assert!(store.commit(TxnId::new(1), &[WriteOp::Put(obj)]).is_err());
        let mut obj2 = DbObject::new_named(&cat, "Node").unwrap();
        obj2.set(&cat, "Name", "no oid").unwrap();
        assert!(store.commit(TxnId::new(2), &[WriteOp::Put(obj2)]).is_err());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn many_objects_and_updates_survive_reopen() {
        let cat = catalog();
        let dir = tmp("many");
        let mut oids = Vec::new();
        {
            let store = ObjectStore::open(&dir, Arc::clone(&cat), 8, true).unwrap();
            for i in 0..200 {
                let obj = node(&cat, &store, &format!("n{i}"));
                oids.push(obj.oid);
                store
                    .commit(TxnId::new(i as u64 + 1), &[WriteOp::Put(obj)])
                    .unwrap();
            }
            // Update half of them.
            for (i, &oid) in oids.iter().enumerate().filter(|(i, _)| i % 2 == 0) {
                let mut obj = store.get(oid).unwrap();
                obj.set(&cat, "Status", "down").unwrap();
                store
                    .commit(TxnId::new(1000 + i as u64), &[WriteOp::Put(obj)])
                    .unwrap();
            }
        }
        let store = ObjectStore::open(&dir, Arc::clone(&cat), 8, true).unwrap();
        assert_eq!(store.object_count(), 200);
        for (i, &oid) in oids.iter().enumerate() {
            let obj = store.get(oid).unwrap();
            let status = obj
                .get(&cat, "Status")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string();
            assert_eq!(status, if i % 2 == 0 { "down" } else { "up" }, "object {i}");
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
