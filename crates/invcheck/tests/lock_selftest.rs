//! Self-test for the lock rule family: seeded violations must flag,
//! tricky-but-clean code must not, and the parsed registry must match
//! the compiled-in `displaydb_common::sync::ranks` table.

use displaydb_common::sync::ranks;
use invcheck::report::rules;
use invcheck::{check_sources, Allowlist, Finding, Registry, ScanOptions};

const SYNC_SOURCE: &str = include_str!("../../common/src/sync.rs");

fn run(path: &str, fixture: &str) -> Vec<Finding> {
    check_sources(
        SYNC_SOURCE,
        &[(path.to_string(), fixture.to_string())],
        &ScanOptions::default(),
    )
    .findings
}

#[test]
fn registry_parse_matches_compiled_ranks() {
    let registry = Registry::parse(SYNC_SOURCE);
    let compiled: Vec<_> = ranks::ALL
        .iter()
        .filter(|r| !r.name().starts_with("test."))
        .collect();
    assert_eq!(
        registry.entries.len(),
        compiled.len(),
        "parsed registry and ranks::ALL disagree on lock count"
    );
    for lr in &compiled {
        let entry = registry
            .entries
            .iter()
            .find(|e| e.name == lr.name())
            .unwrap_or_else(|| panic!("rank '{}' missing from parsed registry", lr.name()));
        assert_eq!(entry.rank, lr.rank(), "rank mismatch for '{}'", lr.name());
        assert_eq!(
            entry.multi,
            lr.is_multi(),
            "multi mismatch for '{}'",
            lr.name()
        );
    }
    // The reverse direction, explicitly: every constant parsed out of
    // sync.rs must be registered in ranks::ALL. (The count equality
    // above implies it, but a missing+extra pair would cancel out —
    // this names the drifted lock.)
    for entry in &registry.entries {
        assert!(
            ranks::ALL.iter().any(|lr| lr.name() == entry.name),
            "lock '{}' is declared in sync.rs but missing from ranks::ALL",
            entry.name
        );
    }
}

#[test]
fn registry_covers_post_pr5_and_pr7_ranks() {
    // Drift guard for the ranks added by the stats/trace (PR 5) and
    // seglog (PR 7) work: the parser must see them at their declared
    // positions, not silently skip them.
    let registry = Registry::parse(SYNC_SOURCE);
    for (name, rank) in [
        ("stats.registry", 50u16),
        ("storage.seglog", 515),
        ("trace.sink", 700),
    ] {
        let entry = registry
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("parsed registry is missing '{name}'"));
        assert_eq!(entry.rank, rank, "unexpected rank for '{name}'");
    }
}

#[test]
fn registry_covers_dlm_shard_ranks() {
    // The per-shard DLM ranks (DESIGN.md § 16). Checked in both
    // directions by name: the parser must see them in sync.rs with
    // their multi-instance marking (every shard holds its own copy),
    // and the compiled ranks::ALL must register them — a drift on
    // either side names the lock here instead of failing the blanket
    // count assertion.
    let registry = Registry::parse(SYNC_SOURCE);
    for (name, rank) in [("dlm.shard_table", 381u16), ("dlm.shard_log", 386)] {
        let entry = registry
            .entries
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("parsed registry is missing '{name}'"));
        assert_eq!(entry.rank, rank, "unexpected rank for '{name}'");
        assert!(
            entry.multi,
            "'{name}' must be multi-instance: one per shard"
        );
        let compiled = ranks::ALL
            .iter()
            .find(|lr| lr.name() == name)
            .unwrap_or_else(|| panic!("ranks::ALL is missing '{name}'"));
        assert_eq!(compiled.rank(), rank);
        assert!(compiled.is_multi());
    }
    // Shard ranks sit strictly between their singleton namesakes and
    // the next family so shard-table → shard-log → outbox ordering
    // stays provable: dlm.table (380) < dlm.shard_table (381) <
    // dlm.update_log (385) < dlm.shard_log (386) < dlm.agent_sessions.
    let rank_of = |name: &str| {
        ranks::ALL
            .iter()
            .find(|lr| lr.name() == name)
            .unwrap_or_else(|| panic!("ranks::ALL is missing '{name}'"))
            .rank()
    };
    assert!(rank_of("dlm.table") < rank_of("dlm.shard_table"));
    assert!(rank_of("dlm.shard_table") < rank_of("dlm.update_log"));
    assert!(rank_of("dlm.update_log") < rank_of("dlm.shard_log"));
    assert!(rank_of("dlm.shard_log") < rank_of("dlm.agent_sessions"));
}

#[test]
fn seeded_inversion_is_flagged_once() {
    let findings = run(
        "crates/storage/src/seeded_inversion.rs",
        include_str!("fixtures/seeded_inversion.rs"),
    );
    let orders: Vec<_> = findings.iter().filter(|f| f.rule == rules::ORDER).collect();
    assert_eq!(
        orders.len(),
        1,
        "expected exactly the seeded inversion, got: {findings:?}"
    );
    assert_eq!(orders[0].lock, "buffer.pool");
    assert_eq!(orders[0].detail, "server.txns");
    // correct() acquires the same pair in declared order — the single
    // finding above proves it did not flag.
}

#[test]
fn seeded_blocking_is_flagged() {
    let findings = run(
        "crates/server/src/seeded_blocking.rs",
        include_str!("fixtures/seeded_blocking.rs"),
    );
    let blocking: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::BLOCKING)
        .collect();
    assert_eq!(
        blocking.len(),
        3,
        "expected send, sleep, and scrutinee-send, got: {findings:?}"
    );
    assert!(
        blocking.iter().all(|f| f.lock == "session.outbox"),
        "wrong lock: {blocking:?}"
    );
    assert!(blocking.iter().any(|f| f.detail == "tx.send"));
    assert!(blocking.iter().any(|f| f.detail == "sleep"));
    // Two sends flagged: the let-bound guard and the if-let scrutinee.
    assert_eq!(
        blocking.iter().filter(|f| f.detail == "tx.send").count(),
        2,
        "scrutinee-extension send not flagged: {blocking:?}"
    );
    // take_then_send releases before sending: exactly 3, not 4.
}

#[test]
fn seeded_poison_is_flagged_on_request_paths_only() {
    let fixture = include_str!("fixtures/seeded_poison.rs");
    let on_server = run("crates/server/src/seeded_poison.rs", fixture);
    let poisons: Vec<_> = on_server
        .iter()
        .filter(|f| f.rule == rules::POISON)
        .collect();
    assert_eq!(
        poisons.len(),
        2,
        "expected unwrap + expect findings, got: {on_server:?}"
    );
    assert!(poisons.iter().any(|f| f.detail.contains("unwrap")));
    assert!(poisons.iter().any(|f| f.detail.contains("expect")));

    // The same source outside server/dlm/lockmgr is not a request path.
    let on_display = run("crates/display/src/seeded_poison.rs", fixture);
    assert!(
        on_display.iter().all(|f| f.rule != rules::POISON),
        "poison rule must not apply outside request paths: {on_display:?}"
    );
}

#[test]
fn seeded_cycle_is_flagged() {
    let findings = run(
        "crates/display/src/seeded_cycle.rs",
        include_str!("fixtures/seeded_cycle.rs"),
    );
    let cycles: Vec<_> = findings.iter().filter(|f| f.rule == rules::CYCLE).collect();
    assert_eq!(cycles.len(), 1, "expected one cycle, got: {findings:?}");
    assert!(cycles[0].detail.contains("seeded_cycle.alpha"));
    assert!(cycles[0].detail.contains("seeded_cycle.beta"));
}

#[test]
fn clean_tricky_code_is_not_flagged() {
    let findings = run(
        "crates/server/src/clean_tricky.rs",
        include_str!("fixtures/clean_tricky.rs"),
    );
    assert!(
        findings.is_empty(),
        "clean fixture produced findings: {findings:?}"
    );
}

#[test]
fn allowlist_matches_and_reports_stale() {
    let allow = Allowlist::parse(
        "# comment\n\
         blocking-under-guard:crates/wire/src/transport.rs:wire.writer\n\
         poison-unwrap:crates/nowhere/:\n",
    );
    assert_eq!(allow.entries.len(), 2);
    let hit = Finding {
        rule: rules::BLOCKING,
        file: "crates/wire/src/transport.rs".into(),
        line: 90,
        lock: "wire.writer".into(),
        detail: "write_frame".into(),
    };
    assert_eq!(allow.matches(&hit), Some(0));
    let miss = Finding {
        rule: rules::BLOCKING,
        file: "crates/dlm/src/outbox.rs".into(),
        line: 1,
        lock: "outbox.state".into(),
        detail: "send".into(),
    };
    assert_eq!(allow.matches(&miss), None);
}

#[test]
fn design_doc_lists_every_rank() {
    let design = include_str!("../../../DESIGN.md");
    for lr in ranks::ALL {
        if lr.name().starts_with("test.") {
            continue;
        }
        assert!(
            design.contains(lr.name()),
            "DESIGN.md §11 is missing lock '{}'",
            lr.name()
        );
    }
}
