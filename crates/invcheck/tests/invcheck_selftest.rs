//! Self-test for the durability, protocol, and trace rule families:
//! every seeded-violation fixture must flag, every tricky negative must
//! pass, and the registries invcheck parses out of source text must
//! match the compiled enums (so the linter can never drift from the
//! code it guards).

use invcheck::report::rules;
use invcheck::{check_workspace, Allowlist, Finding, Registry, ScanOptions};

const SYNC_SOURCE: &str = include_str!("../../common/src/sync.rs");

fn run(files: &[(&str, &str)], families: &[&str]) -> Vec<Finding> {
    let files: Vec<(String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    check_workspace(SYNC_SOURCE, &files, families, &ScanOptions::default()).findings
}

// ---- durability: append/sync/escape ordering -------------------------

#[test]
fn seeded_append_without_sync_and_ack_before_sync_are_flagged() {
    let findings = run(
        &[(
            "crates/dlm/src/log.rs",
            include_str!("fixtures/seeded_durability.rs"),
        )],
        &["durability"],
    );
    let nosync: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::APPEND_NO_SYNC)
        .collect();
    assert_eq!(
        nosync.len(),
        1,
        "expected one append-without-sync: {findings:?}"
    );
    assert_eq!(nosync[0].lock, "commit_unsynced");
    assert_eq!(nosync[0].detail, "append");

    let early: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::ACK_BEFORE_SYNC)
        .collect();
    assert_eq!(early.len(), 1, "expected one ack-before-sync: {findings:?}");
    assert_eq!(early[0].lock, "commit_acked_early");
    assert_eq!(early[0].detail, "advance_frontier");
}

#[test]
fn sync_in_a_helper_fn_is_clean() {
    let findings = run(
        &[(
            "crates/server/src/store.rs",
            include_str!("fixtures/clean_durability.rs"),
        )],
        &["durability"],
    );
    assert!(
        findings.is_empty(),
        "clean durability fixture produced findings: {findings:?}"
    );
}

// ---- durability: crash-point probes and coverage ---------------------

#[test]
fn seeded_missing_crashpoint_is_flagged_probe_carrier_is_not() {
    let findings = run(
        &[(
            "crates/storage/src/seglog.rs",
            include_str!("fixtures/seeded_crashpoint.rs"),
        )],
        &["durability"],
    );
    let missing: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::MISSING_CRASHPOINT)
        .collect();
    assert_eq!(missing.len(), 1, "expected one missing probe: {findings:?}");
    assert_eq!(missing[0].lock, "rewrite_header");
}

const CP_PROD: &str = r#"
impl SegLog {
    pub fn append(&mut self) {
        if crashpoint::hit(CrashPoint::MidAppend) {
            return;
        }
        self.file.write_all(b"x");
    }
}
"#;

#[test]
fn crashpoint_coverage_flags_unexercised_variant() {
    // MidRotation is declared but neither produced nor tested.
    let findings = run(
        &[
            (
                "crates/common/src/crashpoint.rs",
                include_str!("fixtures/crashpoint_decl.rs"),
            ),
            ("crates/storage/src/seglog.rs", CP_PROD),
            (
                "tests/crash_points.rs",
                "fn restart_mid_append() { arm(CrashPoint::MidAppend); }",
            ),
        ],
        &["durability"],
    );
    let cov: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::CRASHPOINT_COVERAGE)
        .collect();
    assert_eq!(
        cov.len(),
        2,
        "expected prod+test coverage gaps: {findings:?}"
    );
    assert!(cov.iter().all(|f| f.lock == "MidRotation"));
    assert!(cov.iter().any(|f| f.detail == "production code"));
    assert!(cov.iter().any(|f| f.detail == "the restart-test matrix"));
}

#[test]
fn crashpoint_all_loop_in_tests_covers_every_variant() {
    // The restart matrix iterates CrashPoint::ALL — test coverage is
    // satisfied for all variants; only the production gap remains.
    let findings = run(
        &[
            (
                "crates/common/src/crashpoint.rs",
                include_str!("fixtures/crashpoint_decl.rs"),
            ),
            ("crates/storage/src/seglog.rs", CP_PROD),
            (
                "tests/crash_points.rs",
                "fn restart_matrix() { for point in CrashPoint::ALL { exercise(point); } }",
            ),
        ],
        &["durability"],
    );
    let cov: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::CRASHPOINT_COVERAGE)
        .collect();
    assert_eq!(
        cov.len(),
        1,
        "expected only the production gap: {findings:?}"
    );
    assert_eq!(cov[0].lock, "MidRotation");
    assert_eq!(cov[0].detail, "production code");
}

// ---- protocol: handler exhaustiveness --------------------------------

#[test]
fn unhandled_variant_is_flagged_and_wildcard_does_not_count() {
    let findings = run(
        &[
            (
                "crates/dlm/src/proto.rs",
                include_str!("fixtures/seeded_proto.rs"),
            ),
            (
                "crates/client/src/dlc.rs",
                include_str!("fixtures/wildcard_handler.rs"),
            ),
        ],
        &["protocol"],
    );
    let unhandled: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::UNHANDLED_VARIANT)
        .collect();
    assert_eq!(
        unhandled.len(),
        1,
        "expected one unhandled variant: {findings:?}"
    );
    assert_eq!(unhandled[0].lock, "DlmEvent::Dropped");
    assert!(unhandled[0].detail.contains("client/src/dlc.rs"));

    // The deliberate-ignore path is the allowlist, which pins the exact
    // variant — a new variant behind the same wildcard still fails.
    let allow = Allowlist::parse("unhandled-variant:crates/dlm/src/proto.rs:Dropped\n");
    assert!(allow.matches(unhandled[0]).is_some());
    let other = Finding {
        rule: rules::UNHANDLED_VARIANT,
        file: "crates/dlm/src/proto.rs".into(),
        line: 1,
        lock: "DlmEvent::Evicted".into(),
        detail: "crates/client/src/dlc.rs".into(),
    };
    assert!(allow.matches(&other).is_none());
}

#[test]
fn seeded_encode_without_decode_is_flagged() {
    let findings = run(
        &[(
            "crates/wire/src/frames.rs",
            include_str!("fixtures/seeded_codec.rs"),
        )],
        &["protocol"],
    );
    let parity: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::ENCODE_NO_DECODE || f.rule == rules::DECODE_NO_ENCODE)
        .collect();
    assert_eq!(parity.len(), 1, "expected one parity gap: {findings:?}");
    assert_eq!(parity[0].rule, rules::ENCODE_NO_DECODE);
    assert_eq!(parity[0].lock, "Frame::Ping");
}

// ---- trace: stage coverage -------------------------------------------

#[test]
fn duplicate_and_missing_stage_are_flagged_per_arm_recording_is_not() {
    let findings = run(
        &[
            (
                "crates/common/src/trace.rs",
                include_str!("fixtures/trace_decl.rs"),
            ),
            (
                "crates/server/src/core.rs",
                include_str!("fixtures/seeded_trace.rs"),
            ),
        ],
        &["trace"],
    );
    let dup: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::DUPLICATE_STAGE)
        .collect();
    assert_eq!(dup.len(), 1, "expected one duplicate: {findings:?}");
    assert_eq!(dup[0].lock, "Commit");

    let missing: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == rules::MISSING_STAGE)
        .collect();
    assert_eq!(missing.len(), 1, "expected one missing stage: {findings:?}");
    assert_eq!(missing[0].lock, "DlcApply");
    // WireSend is recorded once per match arm — one per path — and must
    // appear in neither list (the single dup/missing assertions above
    // prove it).
}

// ---- parsed registries match the compiled enums ----------------------

#[test]
fn parsed_crashpoint_registry_matches_compiled_enum() {
    let source = include_str!("../../common/src/crashpoint.rs");
    let files = [(
        "crates/common/src/crashpoint.rs".to_string(),
        source.to_string(),
    )];
    let sources: Vec<invcheck::SourceFile> = files
        .iter()
        .map(|(p, t)| invcheck::SourceFile::new(p.clone(), t))
        .collect();
    let ws = invcheck::Workspace::new(SYNC_SOURCE, sources, ScanOptions::default());
    let parsed = ws.crash_points.expect("CrashPoint declaration not parsed");
    let compiled: Vec<String> = displaydb_common::crashpoint::CrashPoint::ALL
        .iter()
        .map(|p| format!("{p:?}"))
        .collect();
    let names: Vec<&String> = parsed.variants.iter().map(|(v, _)| v).collect();
    assert_eq!(
        names,
        compiled.iter().collect::<Vec<_>>(),
        "parsed CrashPoint variants diverge from the compiled enum"
    );
}

#[test]
fn parsed_stage_registry_matches_compiled_enum() {
    let source = include_str!("../../common/src/trace.rs");
    let files = [("crates/common/src/trace.rs".to_string(), source.to_string())];
    let sources: Vec<invcheck::SourceFile> = files
        .iter()
        .map(|(p, t)| invcheck::SourceFile::new(p.clone(), t))
        .collect();
    let ws = invcheck::Workspace::new(SYNC_SOURCE, sources, ScanOptions::default());
    let parsed = ws.stages.expect("Stage declaration not parsed");
    let compiled: Vec<String> = displaydb_common::trace::Stage::ALL
        .iter()
        .map(|s| format!("{s:?}"))
        .collect();
    let names: Vec<&String> = parsed.variants.iter().map(|(v, _)| v).collect();
    assert_eq!(
        names,
        compiled.iter().collect::<Vec<_>>(),
        "parsed Stage variants diverge from the compiled enum"
    );
}

// The compiled-enum anchors below are wildcard-free matches: adding a
// protocol variant breaks compilation here, forcing the name list (and
// therefore the parser assertion) to be updated in the same change.

const REQUEST_VARIANTS: &[&str] = &[
    "Hello",
    "Begin",
    "Read",
    "ReadMany",
    "Lock",
    "Create",
    "Write",
    "Delete",
    "Commit",
    "Abort",
    "Extent",
    "DisplayLock",
    "DisplayRelease",
    "DisplayLockProjected",
    "ReplayFrom",
    "ReplayFromShards",
    "Checkpoint",
    "Ping",
];

fn _request_anchor(r: &displaydb_server::proto::Request) -> &'static str {
    use displaydb_server::proto::Request as R;
    match r {
        R::Hello { .. } => "Hello",
        R::Begin => "Begin",
        R::Read { .. } => "Read",
        R::ReadMany { .. } => "ReadMany",
        R::Lock { .. } => "Lock",
        R::Create { .. } => "Create",
        R::Write { .. } => "Write",
        R::Delete { .. } => "Delete",
        R::Commit { .. } => "Commit",
        R::Abort { .. } => "Abort",
        R::Extent { .. } => "Extent",
        R::DisplayLock { .. } => "DisplayLock",
        R::DisplayRelease { .. } => "DisplayRelease",
        R::DisplayLockProjected { .. } => "DisplayLockProjected",
        R::ReplayFrom { .. } => "ReplayFrom",
        R::ReplayFromShards { .. } => "ReplayFromShards",
        R::Checkpoint => "Checkpoint",
        R::Ping => "Ping",
    }
}

const DLM_REQUEST_VARIANTS: &[&str] = &[
    "Hello",
    "Lock",
    "LockProjected",
    "Release",
    "UpdateCommitted",
    "WriteIntent",
    "Resolution",
    "Bye",
    "ReplayFrom",
];

fn _dlm_request_anchor(r: &displaydb_dlm::proto::DlmRequest) -> &'static str {
    use displaydb_dlm::proto::DlmRequest as R;
    match r {
        R::Hello { .. } => "Hello",
        R::Lock { .. } => "Lock",
        R::LockProjected { .. } => "LockProjected",
        R::Release { .. } => "Release",
        R::UpdateCommitted { .. } => "UpdateCommitted",
        R::WriteIntent { .. } => "WriteIntent",
        R::Resolution { .. } => "Resolution",
        R::Bye => "Bye",
        R::ReplayFrom { .. } => "ReplayFrom",
    }
}

const DLM_EVENT_VARIANTS: &[&str] = &[
    "Updated",
    "Marked",
    "Resolved",
    "Ready",
    "ResyncRequired",
    "Lagging",
    "Delta",
    "Batch",
    "CursorAck",
    "ReplayNeeded",
    "ShardCursorAck",
    "ShardReplayNeeded",
];

fn _dlm_event_anchor(e: &displaydb_dlm::proto::DlmEvent) -> &'static str {
    use displaydb_dlm::proto::DlmEvent as E;
    match e {
        E::Updated { .. } => "Updated",
        E::Marked { .. } => "Marked",
        E::Resolved { .. } => "Resolved",
        E::Ready { .. } => "Ready",
        E::ResyncRequired { .. } => "ResyncRequired",
        E::Lagging => "Lagging",
        E::Delta { .. } => "Delta",
        E::Batch { .. } => "Batch",
        E::CursorAck { .. } => "CursorAck",
        E::ReplayNeeded { .. } => "ReplayNeeded",
        E::ShardCursorAck { .. } => "ShardCursorAck",
        E::ShardReplayNeeded { .. } => "ShardReplayNeeded",
    }
}

const DLC_EVENT_VARIANTS: &[&str] = &["Dlm", "Degraded", "Restored", "Lagging"];

fn _dlc_event_anchor(e: &displaydb_client::dlc::DlcEvent) -> &'static str {
    use displaydb_client::dlc::DlcEvent as E;
    match e {
        E::Dlm { .. } => "Dlm",
        E::Degraded => "Degraded",
        E::Restored => "Restored",
        E::Lagging => "Lagging",
    }
}

fn parsed_variants(path: &str, source: &str, enum_name: &str) -> Vec<String> {
    let file = invcheck::SourceFile::new(path.to_string(), source);
    let close = invcheck::source::match_brackets(&file.tokens);
    let decl = invcheck::source::enum_decl(&file.tokens, &close, enum_name)
        .unwrap_or_else(|| panic!("could not parse enum {enum_name} out of {path}"));
    decl.variants.into_iter().map(|(v, _)| v).collect()
}

#[test]
fn parsed_protocol_enums_match_compiled_enums() {
    let cases: [(&str, &str, &str, &[&str]); 4] = [
        (
            "crates/server/src/proto.rs",
            include_str!("../../server/src/proto.rs"),
            "Request",
            REQUEST_VARIANTS,
        ),
        (
            "crates/dlm/src/proto.rs",
            include_str!("../../dlm/src/proto.rs"),
            "DlmRequest",
            DLM_REQUEST_VARIANTS,
        ),
        (
            "crates/dlm/src/proto.rs",
            include_str!("../../dlm/src/proto.rs"),
            "DlmEvent",
            DLM_EVENT_VARIANTS,
        ),
        (
            "crates/client/src/dlc.rs",
            include_str!("../../client/src/dlc.rs"),
            "DlcEvent",
            DLC_EVENT_VARIANTS,
        ),
    ];
    for (path, source, enum_name, expected) in cases {
        let parsed = parsed_variants(path, source, enum_name);
        assert_eq!(
            parsed, *expected,
            "parsed {enum_name} variants diverge from the compiled enum"
        );
    }
}

// ---- the real workspace must be invariant-clean ----------------------

#[test]
fn real_protocol_and_trace_sources_are_clean() {
    // The actual proto/handler/trace files, linted in place: handler
    // exhaustiveness and codec parity must hold on the real tree (the
    // CLI checks this too, but here it runs under plain `cargo test`).
    let findings = run(
        &[
            (
                "crates/server/src/proto.rs",
                include_str!("../../server/src/proto.rs"),
            ),
            (
                "crates/server/src/core.rs",
                include_str!("../../server/src/core.rs"),
            ),
            (
                "crates/dlm/src/proto.rs",
                include_str!("../../dlm/src/proto.rs"),
            ),
            (
                "crates/dlm/src/agent.rs",
                include_str!("../../dlm/src/agent.rs"),
            ),
            (
                "crates/client/src/dlc.rs",
                include_str!("../../client/src/dlc.rs"),
            ),
            (
                "crates/display/src/view.rs",
                include_str!("../../display/src/view.rs"),
            ),
            (
                "crates/storage/src/seglog.rs",
                include_str!("../../storage/src/seglog.rs"),
            ),
            (
                "crates/storage/src/wal.rs",
                include_str!("../../storage/src/wal.rs"),
            ),
        ],
        &["protocol"],
    );
    assert!(
        findings.is_empty(),
        "real protocol sources produced findings: {findings:?}"
    );
}

#[test]
fn registry_parser_is_reexported_for_shim_users() {
    // The lockcheck shim re-exports the whole surface; spot-check that
    // the historical paths still resolve to the same types.
    let via_invcheck = Registry::parse(SYNC_SOURCE);
    assert!(!via_invcheck.entries.is_empty());
}
