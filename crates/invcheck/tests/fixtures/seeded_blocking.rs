//! Seeded fixture: blocking operations under a live guard. Never
//! compiled — fed to the scanner as text by lockcheck_selftest.

use displaydb_common::sync::{ranks, OrderedMutex};
use std::sync::mpsc::Sender;

struct Blocky {
    queue: OrderedMutex<Vec<u32>>,
    tx: Sender<u32>,
}

impl Blocky {
    fn new(tx: Sender<u32>) -> Self {
        Self {
            queue: OrderedMutex::new(ranks::SESSION_OUTBOX, Vec::new()),
            tx,
        }
    }

    fn send_under_guard(&self) {
        let mut q = self.queue.lock();
        // Channel send while session.outbox is held: MUST flag.
        self.tx.send(q.pop().unwrap_or(0)).unwrap();
        q.clear();
    }

    fn sleep_under_guard(&self) {
        let q = self.queue.lock();
        // Sleep while the guard is live: MUST flag.
        std::thread::sleep(std::time::Duration::from_millis(q.len() as u64));
    }

    fn scrutinee_extension(&self) {
        // The guard is a temporary of the `if let` scrutinee, so Rust
        // keeps it alive through the whole block: the send MUST flag.
        if let Some(v) = self.queue.lock().pop() {
            self.tx.send(v).unwrap();
        }
    }

    fn take_then_send(&self) {
        // The fixed idiom: bind outside, send after the guard dies.
        let v = self.queue.lock().pop();
        if let Some(v) = v {
            self.tx.send(v).unwrap();
        }
    }
}
