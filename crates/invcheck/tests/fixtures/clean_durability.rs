//! Tricky-but-clean durability fixture (scanned as `server/src/store.rs`):
//! the sync is delegated to a helper, but the helper's name says so —
//! the storage layer's naming convention is exactly what the
//! call-name-based rule keys on.

pub struct Store {
    wal: Wal,
}

impl Store {
    /// Clean: append, helper sync, then the frontier escape.
    pub fn commit(&mut self, rec: &[u8]) {
        self.wal.append(rec);
        self.ensure_synced();
        self.record_frontier(1);
    }

    /// Clean: an append that never lets anything escape needs no sync
    /// here (the caller syncs before acknowledging).
    pub fn stage(&mut self, rec: &[u8]) {
        self.wal.append(rec);
    }

    fn ensure_synced(&mut self) {
        self.wal.sync();
    }

    fn record_frontier(&mut self, _n: u64) {}
}
