//! Seeded fixture: poison-propagating unwraps on a request path. Never
//! compiled — fed to the scanner as text by lockcheck_selftest, which
//! presents it under a crates/server/ path (rule applies) and a
//! crates/display/ path (rule does not).

use std::collections::HashMap;
use std::sync::Mutex;

struct Poisoned {
    sessions: Mutex<HashMap<u64, String>>,
}

impl Poisoned {
    fn handle_request(&self, id: u64) -> Option<String> {
        // A panic in any other holder poisons this lock and wedges every
        // later request: MUST flag on server/dlm/lockmgr paths.
        self.sessions.lock().unwrap().get(&id).cloned()
    }

    fn handle_other(&self, id: u64) -> bool {
        self.sessions.lock().expect("sessions").contains_key(&id)
    }
}
