//! Seeded fixture: a ranked lock-order inversion the linter MUST flag.
//! Never compiled — fed to the scanner as text by lockcheck_selftest.

use displaydb_common::sync::{ranks, OrderedMutex};

struct Inverted {
    pool: OrderedMutex<Vec<u32>>,
    txns: OrderedMutex<u32>,
}

impl Inverted {
    fn new() -> Self {
        Self {
            pool: OrderedMutex::new(ranks::BUFFER_POOL, Vec::new()),
            txns: OrderedMutex::new(ranks::SERVER_TXNS, 0),
        }
    }

    fn inverted(&self) -> u32 {
        let pool = self.pool.lock();
        // server.txns (350) acquired under buffer.pool (530): inversion.
        let txns = self.txns.lock();
        let n = *txns + pool.len() as u32;
        drop(txns);
        drop(pool);
        n
    }

    fn correct(&self) -> u32 {
        // The same pair in declared order must NOT flag.
        let txns = self.txns.lock();
        let pool = self.pool.lock();
        *txns + pool.len() as u32
    }
}
