//! Seeded encode/decode parity violation (scanned as
//! `wire/src/frames.rs`): `Ping` is encoded but the decoder's wildcard
//! arm rejects its tag — deployment skew would drop it on the floor.

pub enum Frame {
    Data(u64),
    Ping,
}

impl Encode for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Data(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_be_bytes());
            }
            Frame::Ping => out.push(2),
        }
    }
}

impl Decode for Frame {
    fn decode(buf: &[u8]) -> Result<Frame, DecodeError> {
        match buf[0] {
            1 => Ok(Frame::Data(read_u64(&buf[1..])?)),
            other => Err(DecodeError::Tag(other)),
        }
    }
}
