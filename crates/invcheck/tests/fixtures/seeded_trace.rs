//! Seeded trace-coverage violations (scanned as `server/src/core.rs`):
//! `Commit` recorded twice on one path, `DlcApply` never recorded
//! anywhere, and — the tricky negative — `WireSend` recorded once per
//! match arm, which is one-per-path and must NOT flag.

pub fn commit_path(id: u64) {
    trace::record(id, Stage::Commit);
    trace::record(id, Stage::Commit);
}

pub fn send_path(ev: &Event, fast: bool) {
    match fast {
        true => ev.record_stage(Stage::WireSend),
        false => ev.record_stage(Stage::WireSend),
    }
}
