//! Clean fixture: lock-shaped text and tight guard scopes that the
//! scanner must NOT flag. Never compiled — fed to the scanner as text by
//! lockcheck_selftest, which asserts zero findings here.

use displaydb_common::sync::{ranks, OrderedMutex};
use std::sync::mpsc::Sender;

struct Tricky {
    pool: OrderedMutex<Vec<usize>>,
    tx: Sender<usize>,
}

impl Tricky {
    fn new(tx: Sender<usize>) -> Self {
        Self {
            pool: OrderedMutex::new(ranks::BUFFER_POOL, Vec::new()),
            tx,
        }
    }

    fn commented_out(&self) {
        // let g = self.pool.lock();
        /* let g = self.pool.lock(); self.tx.send(1).unwrap(); */
        self.tx.send(1).unwrap();
    }

    fn lock_text_in_strings(&self) {
        let raw = r#"let g = self.pool.lock(); std::thread::sleep(d);"#;
        let plain = "self.pool.lock().unwrap()";
        let nested = r##"raw with hashes: "lock()" inside"##;
        self.tx.send(raw.len() + plain.len() + nested.len()).unwrap();
    }

    fn block_scoped_guard(&self) {
        {
            let g = self.pool.lock();
            let _ = g.len();
        }
        // Guard died with its block: no finding.
        self.tx.send(2).unwrap();
    }

    fn closure_scoped_guard(&self) {
        let items = [1usize, 2, 3];
        let total: usize = items
            .iter()
            .map(|i| {
                let g = self.pool.lock();
                g.len() + i
            })
            .sum();
        // Each closure call released its guard: no finding.
        self.tx.send(total).unwrap();
    }

    fn plain_if_condition(&self) {
        // A plain `if` drops condition temporaries before the block
        // (unlike `if let`): the send must NOT flag.
        if self.pool.lock().is_empty() {
            self.tx.send(3).unwrap();
        }
    }

    fn temp_dies_at_semicolon(&self) {
        let n = self.pool.lock().len();
        self.tx.send(n).unwrap();
    }

    fn explicit_drop(&self) {
        let g = self.pool.lock();
        let n = g.len();
        drop(g);
        self.tx.send(n).unwrap();
    }
}

#[cfg(test)]
mod tests {
    // Test-only code is out of scope for the linter: even a seeded
    // violation here must not flag.
    use super::*;

    #[test]
    fn seeded_in_tests_is_skipped(t: &Tricky) {
        let g = t.pool.lock();
        t.tx.send(g.len()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
