//! Handler fixture (scanned as `client/src/dlc.rs`): matches `Updated`
//! and swallows everything else behind a wildcard arm. The wildcard
//! does NOT satisfy the exhaustiveness rule — a deliberately ignored
//! variant must be allowlisted instead, so adding a variant always
//! forces a decision.

pub fn apply(ev: DlmEvent) {
    match ev {
        DlmEvent::Updated(seq) => handle(seq),
        _ => {}
    }
}
