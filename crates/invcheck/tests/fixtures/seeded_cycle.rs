//! Seeded fixture: an acquisition cycle between two locks the registry
//! cannot rank (plain parking_lot-style mutexes). Never compiled — fed
//! to the scanner as text by lockcheck_selftest.

use parking_lot::Mutex;

struct Cycle {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
}

impl Cycle {
    fn forward(&self) -> u32 {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        *a + *b
    }

    fn backward(&self) -> u32 {
        // Opposite order to forward(): alpha <-> beta cycle. MUST flag.
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }
}
