//! Synthetic `Stage` declaration (scanned as `common/src/trace.rs`) for
//! the trace-coverage fixtures.

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    Commit,
    WireSend,
    DlcApply,
}
