//! Synthetic `CrashPoint` declaration (scanned as
//! `common/src/crashpoint.rs`) for the coverage-rule fixtures.

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashPoint {
    MidAppend,
    MidRotation,
}

impl CrashPoint {
    pub const ALL: &'static [CrashPoint] = &[CrashPoint::MidAppend, CrashPoint::MidRotation];
}
