//! Seeded missing-crashpoint fixture (scanned as `storage/src/seglog.rs`):
//! one fsync-adjacent mutation with no probe, one with.

impl SegLog {
    /// Violation: mutates and syncs with no crash probe.
    pub fn rewrite_header(&mut self, hdr: &[u8]) {
        self.file.write_all(hdr);
        self.file.sync_data();
    }

    /// Clean: the probe precedes the mutation.
    pub fn append_record(&mut self, rec: &[u8]) {
        if crashpoint::hit(CrashPoint::MidAppend) {
            return;
        }
        self.file.write_all(rec);
        self.file.sync_data();
    }
}
