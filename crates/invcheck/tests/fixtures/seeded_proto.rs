//! Synthetic `DlmEvent` declaration (scanned as `dlm/src/proto.rs`) for
//! the unhandled-variant fixture: `Dropped` has no handler arm.

pub enum DlmEvent {
    Updated(u64),
    Dropped(u64),
}
