//! Seeded durability-ordering violations (scanned as `dlm/src/log.rs`):
//! an append whose frontier escapes with no sync anywhere, and an ack
//! that escapes before the sync lands.

pub struct Log {
    seg: Seg,
}

impl Log {
    /// Violation: the frontier escapes and nothing ever syncs.
    pub fn commit_unsynced(&mut self, rec: &[u8]) {
        self.seg.append(rec);
        self.seg.record_frontier(rec.len() as u64);
    }

    /// Violation: the frontier escapes first, the sync lands after it.
    pub fn commit_acked_early(&mut self, rec: &[u8]) {
        self.seg.append_batch(rec);
        self.advance_frontier(1);
        self.seg.sync();
    }

    fn advance_frontier(&mut self, _n: u64) {}
}
